#!/usr/bin/env bash
# Offline CI: build, test, lint. The workspace has no network dependencies
# (external crates are vendored under vendor/), so this runs anywhere the
# Rust toolchain is installed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# Frontend perf smoke: re-measure the parse+CPG pass and fail on a >20%
# throughput regression against the last `interned` point recorded in
# BENCH_trajectory.json. Measures only (no append), so CI runs do not
# rewrite the committed trajectory.
FRONTEND_GATE=1 FRONTEND_APPEND=0 cargo bench -p bench --bench frontend

# Telemetry smoke: run the 17 detectors (table1) and the CCD sweep
# (table9) in one process with telemetry on, then validate the emitted
# JSON report — it must parse and contain a span for every CCC detector
# plus the CCD score-cache and edit-distance pruning counters.
./target/release/tables table1 table9 --telemetry --out /tmp/t.txt \
  --telemetry-out /tmp/BENCH_ci_run.json >/dev/null
./target/release/validate_telemetry /tmp/BENCH_ci_run.json

# Service smoke: start the analysis daemon on an ephemeral port, run the
# loadgen smoke burst against it over real sockets (health + typed scan /
# clone-check checks), then SIGTERM it and require a graceful drain.
PORT_FILE=$(mktemp)
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  >/tmp/serve_ci.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "serve never wrote its port"; cat /tmp/serve_ci.log; exit 1; }
./target/release/loadgen --smoke --no-append --addr "127.0.0.1:$(cat "$PORT_FILE")"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained and stopped" /tmp/serve_ci.log
rm -f "$PORT_FILE"

# Observability smoke: restart the daemon with tracing on and an access
# log, validate the full /metrics Prometheus exposition, send a traced
# request with a caller-chosen X-Trace-Id, and require the echoed id, the
# buffered span tree (parse/cpg-build/query spans, plain and Chrome
# formats) and the access-log line for the request.
PORT_FILE=$(mktemp)
ACCESS_LOG=$(mktemp)
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  --access-log "$ACCESS_LOG" >/tmp/serve_obs.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "obs serve never wrote its port"; cat /tmp/serve_obs.log; exit 1; }
OBS_ADDR="127.0.0.1:$(cat "$PORT_FILE")"
./target/release/loadgen --observability --no-append --addr "$OBS_ADDR"
# Independent curl-level check of the same contract: exposition content
# type, a counter for the traced scan, and the trace id echo. (Bodies are
# saved to files before grepping: `grep -q` closing the pipe early would
# otherwise make curl fail with a write error under pipefail.)
curl -sf "http://$OBS_ADDR/metrics" -o /tmp/obs_metrics.txt
grep -q '^http_requests_total{' /tmp/obs_metrics.txt \
  || { echo "metrics missing http_requests_total"; exit 1; }
curl -sfD /tmp/obs_headers.txt -o /dev/null -X POST \
  -H "X-Trace-Id: 00000000c1c1c1c1" \
  --data '{"v":1,"kind":"scan","source":"function g(address a) public { a.send(3); }"}' \
  "http://$OBS_ADDR/v1/scan" 2>/dev/null || true
grep -qi "x-trace-id: 00000000c1c1c1c1" /tmp/obs_headers.txt \
  || { echo "daemon did not echo X-Trace-Id"; cat /tmp/obs_headers.txt; exit 1; }
curl -sf "http://$OBS_ADDR/debug/trace/00000000c1c1c1c1" -o /tmp/obs_trace.txt
grep -q '"trace_id":"00000000c1c1c1c1"' /tmp/obs_trace.txt \
  || { echo "trace not fetchable by id"; exit 1; }
# Keep-alive over the new transport: two requests in one curl invocation
# must reuse the connection (the daemon no longer closes after each
# response) and both succeed.
curl -sfv "http://$OBS_ADDR/health" "http://$OBS_ADDR/health" \
  -o /dev/null -o /dev/null 2>/tmp/obs_keepalive.txt
grep -qi "re-using existing connection" /tmp/obs_keepalive.txt \
  || { echo "daemon did not keep the connection alive"; cat /tmp/obs_keepalive.txt; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained and stopped" /tmp/serve_obs.log
grep -q '"outcome":"ok"' "$ACCESS_LOG" || { echo "access log empty"; cat "$ACCESS_LOG"; exit 1; }
rm -f "$PORT_FILE" "$ACCESS_LOG"

# Tracing-overhead gate: measure the serve/loadgen burst with tracing off
# and on against one warm in-process daemon; tracing on must keep at
# least 95% of the untraced throughput. Measures only (no append), so CI
# runs do not rewrite the committed trajectory.
./target/release/loadgen --trace-overhead --no-append --requests 192 --concurrency 8

# Serve-throughput gate: a warm keep-alive burst against an in-process
# daemon must stay within 20% of the last keep-alive serve_loadgen point
# in BENCH_trajectory.json (one internal re-measure on a miss — single
# bursts are noisy). Measures only, never appends.
./target/release/loadgen --serve-gate --requests 2048 --concurrency 8

# Chaos smoke: restart the daemon under an armed fault plan (every
# in-process injection point at 1-5% rates plus request-level errors),
# drive it with the retrying chaos loadgen, and require (a) zero requests
# breaking through fault isolation, (b) the daemon process still alive
# and healthy after the burst, (c) a graceful drain — i.e. injected
# faults never kill the process.
PORT_FILE=$(mktemp)
FAULT_SPEC="parse:err:0.02,cpg:panic:0.01,query:delay:5ms,ccc:panic:0.01,ccd:err:0.01,server:err:0.05" \
FAULT_SEED=42 \
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  --breaker-threshold 5 --breaker-open-ms 200 \
  >/tmp/serve_chaos.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "chaos serve never wrote its port"; cat /tmp/serve_chaos.log; exit 1; }
grep -q "fault injection armed" /tmp/serve_chaos.log
./target/release/loadgen --chaos --smoke --addr "127.0.0.1:$(cat "$PORT_FILE")"
kill -0 "$SERVE_PID" || { echo "daemon died under chaos"; cat /tmp/serve_chaos.log; exit 1; }
# (Breaker open/half-open/recovery is asserted deterministically by the
# chaos integration suite run under `cargo test` above.)
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained and stopped" /tmp/serve_chaos.log
rm -f "$PORT_FILE"

# Warm-start smoke: a cold boot with --snapshot-dir must commit
# generation 1; a restart must warm-load it (no rebuild) and serve the
# same corpus through /v1/index/status.
SNAP_DIR=$(mktemp -d)
PORT_FILE=$(mktemp)
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  --snapshot-dir "$SNAP_DIR" >/tmp/serve_snap_cold.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "cold snapshot serve never wrote its port"; cat /tmp/serve_snap_cold.log; exit 1; }
grep -q "committed as snapshot generation 1" /tmp/serve_snap_cold.log \
  || { echo "cold boot did not commit a snapshot"; cat /tmp/serve_snap_cold.log; exit 1; }
curl -sf "http://127.0.0.1:$(cat "$PORT_FILE")/v1/index/status" -o /tmp/snap_status.txt
grep -q '"generation":1' /tmp/snap_status.txt \
  || { echo "unexpected index status after cold boot"; cat /tmp/snap_status.txt; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"

# Crash-during-compaction: restart warm under a fault plan that holds
# the snapshot commit in its most adversarial window (gen-2 data file
# written, CURRENT pointer not yet flipped), kill -9 the daemon inside
# that window, and require the next start to load generation 1 as if the
# torn commit never happened.
: > "$PORT_FILE"
FAULT_SPEC="index:delay:1500ms" FAULT_SEED=1 \
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  --snapshot-dir "$SNAP_DIR" >/tmp/serve_snap_kill.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "warm serve never wrote its port"; cat /tmp/serve_snap_kill.log; exit 1; }
grep -q "warm start: generation 1" /tmp/serve_snap_kill.log \
  || { echo "second boot was not a warm start"; cat /tmp/serve_snap_kill.log; exit 1; }
SNAP_ADDR="127.0.0.1:$(cat "$PORT_FILE")"
curl -sf -X POST "http://$SNAP_ADDR/v1/index/insert" \
  --data '{"v":1,"source":"contract CiDelta { function f() public { msg.sender.transfer(1); } }"}' \
  -o /dev/null
curl -s -X POST "http://$SNAP_ADDR/v1/index/compact" -o /dev/null 2>/dev/null &
sleep 0.6
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
: > "$PORT_FILE"
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  --snapshot-dir "$SNAP_DIR" >/tmp/serve_snap_recover.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "recovery serve never wrote its port"; cat /tmp/serve_snap_recover.log; exit 1; }
grep -q "warm start: generation 1" /tmp/serve_snap_recover.log \
  || { echo "torn commit broke the warm start"; cat /tmp/serve_snap_recover.log; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
rm -rf "$SNAP_DIR"
rm -f "$PORT_FILE"

# Warm-start ratio gate: snapshot load must be at least 10x faster than
# the cold rebuild (a floor a debug build clears; the committed
# index_warmstart trajectory point records the release-build margin).
# Measures only, never appends. The timed load includes replaying a
# 24-insert WAL tail, the real post-crash boot shape.
./target/release/loadgen --warmstart --no-append --requests 128 --concurrency 8

# WAL torture loop: acknowledged inserts must survive kill -9 and replay
# byte-identically, under three crash windows. A reference daemon is
# never killed; its /v1/clone-check responses after one insert (REF1)
# and after two (REF2) are the ground truth every recovery is compared
# against with cmp.
WAL_X1='{"v":1,"source":"contract WalA { uint total; function add(uint v) public { total += v; } }","id":9001}'
WAL_X2='{"v":1,"source":"contract WalB { uint sum; function bump(uint n) public { sum += n; } }","id":9002}'
WAL_PROBE='{"v":1,"kind":"clone_check","source":"contract WalC { uint acc; function grow(uint k) public { acc += k; } }"}'
wal_boot() { # wal_boot <snap_dir> <log> [extra serve args...]
  local snap_dir=$1 log=$2; shift 2
  : > "$PORT_FILE"
  ./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
    --snapshot-dir "$snap_dir" "$@" >"$log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    sleep 0.1
  done
  [ -s "$PORT_FILE" ] || { echo "torture serve never wrote its port"; cat "$log"; exit 1; }
  WAL_ADDR="127.0.0.1:$(cat "$PORT_FILE")"
}
wal_insert() { # wal_insert <body>
  curl -sf -X POST "http://$WAL_ADDR/v1/index/insert" --data "$1" -o /dev/null
}
PORT_FILE=$(mktemp)

# Reference: uninterrupted daemon, both inserts acknowledged.
WAL_REF_DIR=$(mktemp -d)
wal_boot "$WAL_REF_DIR" /tmp/serve_wal_ref.log
wal_insert "$WAL_X1"
curl -sf -X POST "http://$WAL_ADDR/v1/clone-check" --data "$WAL_PROBE" -o /tmp/wal_ref1.json
wal_insert "$WAL_X2"
curl -sf -X POST "http://$WAL_ADDR/v1/clone-check" --data "$WAL_PROBE" -o /tmp/wal_ref2.json
if cmp -s /tmp/wal_ref1.json /tmp/wal_ref2.json; then
  echo "torture probe does not distinguish the inserts"; exit 1
fi
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
rm -rf "$WAL_REF_DIR"

# Scenario 1: kill -9 with both acknowledged deltas only in the WAL
# (default batch fsync). The restart must replay both.
WAL_DIR=$(mktemp -d)
wal_boot "$WAL_DIR" /tmp/serve_wal_kill.log
wal_insert "$WAL_X1"
wal_insert "$WAL_X2"
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
wal_boot "$WAL_DIR" /tmp/serve_wal_recover.log
grep -q "warm start: generation 1 (18 docs, 2 replayed from WAL)" /tmp/serve_wal_recover.log \
  || { echo "kill -9 lost acknowledged WAL deltas"; cat /tmp/serve_wal_recover.log; exit 1; }
curl -sf -X POST "http://$WAL_ADDR/v1/clone-check" --data "$WAL_PROBE" -o /tmp/wal_got.json
cmp /tmp/wal_ref2.json /tmp/wal_got.json \
  || { echo "recovered responses diverged from the uninterrupted run"; exit 1; }
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
rm -rf "$WAL_DIR"

# Scenario 2: kill -9 inside a fault-delayed wal/append — the second
# insert is neither acknowledged nor on disk (the delay fires before the
# write), so recovery must serve exactly the REF1 state.
WAL_DIR=$(mktemp -d)
wal_boot "$WAL_DIR" /tmp/serve_wal_append.log
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"   # commit generation 1 cleanly
export FAULT_SPEC="wal/append:delay:1500ms" FAULT_SEED=1
wal_boot "$WAL_DIR" /tmp/serve_wal_append2.log
unset FAULT_SPEC FAULT_SEED
wal_insert "$WAL_X1"                          # delayed, but acknowledged
curl -s -X POST "http://$WAL_ADDR/v1/index/insert" --data "$WAL_X2" -o /dev/null &
sleep 0.5                                     # inside X2's append delay
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
wal_boot "$WAL_DIR" /tmp/serve_wal_append3.log
grep -q "warm start: generation 1 (17 docs, 1 replayed from WAL)" /tmp/serve_wal_append3.log \
  || { echo "append-window crash recovered the wrong state"; cat /tmp/serve_wal_append3.log; exit 1; }
curl -sf -X POST "http://$WAL_ADDR/v1/clone-check" --data "$WAL_PROBE" -o /tmp/wal_got.json
cmp /tmp/wal_ref1.json /tmp/wal_got.json \
  || { echo "append-window recovery diverged from REF1"; exit 1; }
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
rm -rf "$WAL_DIR"

# Scenario 3: kill -9 inside a fault-delayed wal/fsync under
# --wal-fsync always. The record is in the page cache before the fsync
# starts, and kill -9 (unlike power loss) does not drop the page cache:
# both inserts must replay.
WAL_DIR=$(mktemp -d)
wal_boot "$WAL_DIR" /tmp/serve_wal_fsync.log
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
export FAULT_SPEC="wal/fsync:delay:1500ms" FAULT_SEED=1
wal_boot "$WAL_DIR" /tmp/serve_wal_fsync2.log --wal-fsync always
unset FAULT_SPEC FAULT_SEED
wal_insert "$WAL_X1"
curl -s -X POST "http://$WAL_ADDR/v1/index/insert" --data "$WAL_X2" -o /dev/null &
sleep 0.5                                     # written, fsync still held
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
wal_boot "$WAL_DIR" /tmp/serve_wal_fsync3.log
grep -q "warm start: generation 1 (18 docs, 2 replayed from WAL)" /tmp/serve_wal_fsync3.log \
  || { echo "fsync-window crash lost a written record"; cat /tmp/serve_wal_fsync3.log; exit 1; }
curl -sf -X POST "http://$WAL_ADDR/v1/clone-check" --data "$WAL_PROBE" -o /tmp/wal_got.json
cmp /tmp/wal_ref2.json /tmp/wal_got.json \
  || { echo "fsync-window recovery diverged from REF2"; exit 1; }
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
rm -rf "$WAL_DIR"
rm -f "$PORT_FILE"

# Durability gate: group commit (batch:5, the serve default) must keep
# at least half the fsync-never insert throughput and stay above the
# floor recorded by the committed wal_durability trajectory point.
# Measures only, never appends.
./target/release/loadgen --durability --no-append --requests 192 --concurrency 8

# Kill-and-resume smoke: start a checkpointed batch run, SIGKILL it once
# its first shard is journaled, resume it, and require the resumed output
# to be byte-identical to an uninterrupted run.
CKPT=/tmp/ci_ckpt_$$.json
./target/release/tables figure2 table4 --scale 0.02 >/tmp/tables_ref.txt
./target/release/tables figure2 table4 --scale 0.02 --checkpoint "$CKPT" \
  >/dev/null 2>/dev/null &
TABLES_PID=$!
for _ in $(seq 1 600); do
  grep -q '"name":"figure2"' "$CKPT" 2>/dev/null && break
  kill -0 "$TABLES_PID" 2>/dev/null || break
  sleep 0.1
done
kill -9 "$TABLES_PID" 2>/dev/null || true
wait "$TABLES_PID" 2>/dev/null || true
./target/release/tables figure2 table4 --scale 0.02 --checkpoint "$CKPT" --resume \
  >/tmp/tables_resumed.txt 2>/tmp/tables_resume.log
cmp /tmp/tables_ref.txt /tmp/tables_resumed.txt \
  || { echo "resumed batch output diverged"; exit 1; }
grep -q "\[resume\] replaying" /tmp/tables_resume.log
rm -f "$CKPT" "${CKPT%.json}.tmp"
