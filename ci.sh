#!/usr/bin/env bash
# Offline CI: build, test, lint. The workspace has no network dependencies
# (external crates are vendored under vendor/), so this runs anywhere the
# Rust toolchain is installed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
