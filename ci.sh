#!/usr/bin/env bash
# Offline CI: build, test, lint. The workspace has no network dependencies
# (external crates are vendored under vendor/), so this runs anywhere the
# Rust toolchain is installed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# Telemetry smoke: run the 17 detectors (table1) and the CCD sweep
# (table9) in one process with telemetry on, then validate the emitted
# JSON report — it must parse and contain a span for every CCC detector
# plus the CCD score-cache and edit-distance pruning counters.
./target/release/tables table1 table9 --telemetry --out /tmp/t.txt \
  --telemetry-out /tmp/BENCH_ci_run.json >/dev/null
./target/release/validate_telemetry /tmp/BENCH_ci_run.json
