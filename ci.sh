#!/usr/bin/env bash
# Offline CI: build, test, lint. The workspace has no network dependencies
# (external crates are vendored under vendor/), so this runs anywhere the
# Rust toolchain is installed.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# Telemetry smoke: run the 17 detectors (table1) and the CCD sweep
# (table9) in one process with telemetry on, then validate the emitted
# JSON report — it must parse and contain a span for every CCC detector
# plus the CCD score-cache and edit-distance pruning counters.
./target/release/tables table1 table9 --telemetry --out /tmp/t.txt \
  --telemetry-out /tmp/BENCH_ci_run.json >/dev/null
./target/release/validate_telemetry /tmp/BENCH_ci_run.json

# Service smoke: start the analysis daemon on an ephemeral port, run the
# loadgen smoke burst against it over real sockets (health + typed scan /
# clone-check checks), then SIGTERM it and require a graceful drain.
PORT_FILE=$(mktemp)
./target/release/serve --port 0 --port-file "$PORT_FILE" --corpus 16 \
  >/tmp/serve_ci.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "serve never wrote its port"; cat /tmp/serve_ci.log; exit 1; }
./target/release/loadgen --smoke --no-append --addr "127.0.0.1:$(cat "$PORT_FILE")"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained and stopped" /tmp/serve_ci.log
rm -f "$PORT_FILE"
