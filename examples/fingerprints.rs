//! Figure 5 reproduction: two similar snippets and their fuzzy
//! fingerprints — a local code change only perturbs part of the digest.
//!
//! Run with: `cargo run --example fingerprints`

use ccd::{order_independent_similarity, CloneDetector};

const UNSAFE: &str = r#"
contract Unsafe {
    function unsafeWithdraw(uint value) {
        msg.sender.transfer(value);
    }
    address deployer;
    constructor() {
        deployer = msg.sender;
    }
}
"#;

const SAFE: &str = r#"
contract Safe {
    address owner;
    constructor() {
        owner = msg.sender;
    }
    function safeWithdraw(uint amount) {
        require(msg.sender == owner);
        msg.sender.transfer(amount);
    }
}
"#;

fn main() {
    let fp_unsafe = CloneDetector::fingerprint_source(UNSAFE).expect("parses");
    let fp_safe = CloneDetector::fingerprint_source(SAFE).expect("parses");

    println!("Unsafe contract:{UNSAFE}");
    println!("fingerprint: {fp_unsafe}\n");
    println!("Safe contract (adds a require, renames identifiers):{SAFE}");
    println!("fingerprint: {fp_safe}\n");

    println!("sub-fingerprints (.-separated per function, :-separated per contract):");
    println!("  unsafe: {:?}", fp_unsafe.sub_fingerprints());
    println!("  safe:   {:?}", fp_safe.sub_fingerprints());

    let shared: Vec<&str> = fp_unsafe
        .sub_fingerprints()
        .into_iter()
        .filter(|s| fp_safe.sub_fingerprints().contains(s))
        .collect();
    println!("\nshared sub-fingerprints (the unchanged pieces): {shared:?}");
    println!(
        "order-independent similarity ε = {:.1}",
        order_independent_similarity(&fp_unsafe, &fp_safe)
    );
    println!();
    println!("As in Figure 5 of the paper: the added require line and the");
    println!("renamed identifiers only modify the affected function's piece");
    println!("of the fingerprint; the rest of the digest is preserved.");
}
