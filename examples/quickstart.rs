//! Quickstart: check a Q&A snippet for vulnerabilities and hunt for its
//! clones — the two halves of the paper in thirty lines.
//!
//! Run with: `cargo run --example quickstart`

use sodd::prelude::*;

fn main() {
    // A snippet as it might appear in a Stack Overflow answer: incomplete
    // (no contract wrapper), missing a semicolon, and reentrant.
    let snippet = r#"
        function withdrawBalance() public {
            uint amountToWithdraw = userBalances[msg.sender]
            msg.sender.call{value: amountToWithdraw}("");
            userBalances[msg.sender] = 0;
        }
    "#;

    // --- CCC: vulnerability detection on the incomplete snippet ---------
    let findings = Checker::new().check_snippet(snippet).expect("snippet parses");
    println!("CCC findings on the snippet:");
    for finding in &findings {
        println!(
            "  line {:>2}  [{}]  {}  (Listing {})",
            finding.line,
            finding.category(),
            finding.query.description(),
            finding.query.listing(),
        );
    }

    // --- CCD: find the snippet inside a deployed contract ----------------
    let deployed = r#"
        pragma solidity ^0.4.24;
        contract Piggybank {
            mapping(address => uint) userBalances;

            function deposit() public payable {
                userBalances[msg.sender] += msg.value;
            }

            // Copied from a Q&A site, identifiers renamed:
            function withdrawBalance() public {
                uint amount = userBalances[msg.sender];
                msg.sender.call{value: amount}("");
                userBalances[msg.sender] = 0;
            }
        }
    "#;

    let mut detector = CloneDetector::new(CcdParams::best());
    detector.insert_source(1, deployed);
    let query = CloneDetector::fingerprint_source(snippet).expect("fingerprintable");
    println!("\nCCD clone matches of the snippet:");
    for m in detector.matches(&query) {
        println!("  contract #{}  similarity {:.1}", m.doc, m.score);
    }

    println!("\nThe vulnerable snippet was found in a deployed contract —");
    println!("exactly the copy-paste pathway the paper measures at scale.");
}
