//! `snippet-lint` — the mitigation the paper proposes in §6.7: providers
//! of Q&A websites can flag code snippets that are considered problematic
//! by tools like CCC, or that show high similarity with code reported as
//! part of a vulnerability.
//!
//! Reads a snippet from the path given as the first argument (or uses a
//! built-in demo snippet), then:
//!
//! 1. runs all 17 CCC queries on it (snippet-tolerant — no compiler
//!    needed), and
//! 2. matches it against a library of known-vulnerable snippet shapes
//!    with CCD, reporting the closest vulnerable relative.
//!
//! Run with: `cargo run --example snippet_lint [path/to/snippet.sol]`

use ccc::Checker;
use ccd::{CcdParams, CloneDetector};
use corpus::templates::{vulnerable_templates, Level};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEMO: &str = r#"
function withdraw() public {
    uint amount = credit[msg.sender]
    msg.sender.call{value: amount}("");
    credit[msg.sender] = 0;
}
"#;

fn main() {
    let (name, snippet) = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => (path, text),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => ("<demo snippet>".to_string(), DEMO.to_string()),
    };

    println!("linting {name}\n");

    // --- 1. direct vulnerability analysis -------------------------------
    let findings = match Checker::new().check_snippet(&snippet) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("snippet is not parsable Solidity (even with the snippet grammar): {e}");
            std::process::exit(2);
        }
    };
    if findings.is_empty() {
        println!("CCC: no findings.");
    } else {
        println!("CCC findings:");
        for finding in &findings {
            println!(
                "  line {:>3}  [{}]  {}",
                finding.line,
                finding.category(),
                finding.query.description()
            );
        }
    }

    // --- 2. similarity to known-vulnerable shapes ------------------------
    let mut library = CloneDetector::new(CcdParams::best());
    let mut names: Vec<(u64, String)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);
    for (i, template) in vulnerable_templates().iter().enumerate() {
        let instance = template.render(&mut rng, Level::Contract);
        let id = i as u64;
        if library.insert_source(id, &instance.text) {
            names.push((id, template.name.to_string()));
        }
    }
    let Some(fp) = CloneDetector::fingerprint_source(&snippet) else {
        println!("\n(snippet too small to fingerprint — no similarity check)");
        return;
    };
    let matches = library.matches(&fp);
    if matches.is_empty() {
        println!("\nCCD: no similarity to known-vulnerable snippet shapes.");
    } else {
        println!("\nCCD similarity to known-vulnerable shapes:");
        for m in matches.iter().take(3) {
            let family = names
                .iter()
                .find(|(id, _)| *id == m.doc)
                .map(|(_, n)| n.as_str())
                .unwrap_or("?");
            println!("  {:>5.1}  {family}", m.score);
        }
    }

    let exit = if findings.is_empty() { 0 } else { 1 };
    println!(
        "\nverdict: {}",
        if exit == 0 { "ok to post" } else { "flag this snippet before it spreads" }
    );
    std::process::exit(exit);
}
