//! A miniature end-to-end run of the paper's §6 study: generate a Q&A
//! corpus and a deployed-contract corpus, run the funnel, map snippets to
//! contracts with CCD, identify vulnerable snippets with CCC, and validate
//! the vulnerability inside the deployed contracts.
//!
//! Run with: `cargo run --release --example qa_study [scale]`
//! (scale defaults to 0.03 ≈ 1,200 snippets / 9,700 contracts)

use sodd::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);

    println!("generating Q&A corpus (scale {scale})...");
    let qa = generate_qa(QaConfig { seed: 0x50DD, scale });
    println!(
        "  {} posts, {} snippets",
        qa.posts.len(),
        qa.snippets.len()
    );

    println!("generating deployed-contract corpus...");
    let contracts = generate_contracts(
        SanctuaryConfig { seed: 0xC0DE, scale: scale / 4.0, ..SanctuaryConfig::default() },
        &qa,
    );
    println!("  {} contracts", contracts.contracts.len());

    println!("running the collection funnel (Table 4)...");
    let funnel = run_funnel(&qa);
    let total = funnel.stats.rows.last().unwrap();
    println!(
        "  {} snippets -> {} Solidity -> {} parsable -> {} unique",
        total.snippets, total.solidity, total.parsable, total.unique
    );

    println!("running the experiment pipeline (CCD mapping + CCC validation)...");
    let result = run_study(&qa, &contracts, &funnel.unique, StudyConfig::default());

    println!("\n=== study result (Table 7 shape) ===");
    println!("unique snippets:                   {}", result.unique_snippets);
    println!("vulnerable snippets (CCC):         {}", result.vulnerable_snippets);
    println!("  contained in contracts (CCD):    {}", result.contained_in_contracts);
    println!("  posted before deployment:        {} ({} source)",
        result.posted_before_deployment, result.source_snippets);
    println!("contracts containing vuln snippets: {}", result.contracts_containing);
    println!("  unique contract codes:           {}", result.unique_contracts);
    println!("  analyzed (phase 1 / total):      {} / {}",
        result.analyzed_phase1, result.analyzed_total);
    println!("  validated vulnerable:            {}", result.vulnerable_contracts);
    println!("  vuln snippets in vuln contracts: {}", result.snippets_in_vulnerable_contracts);

    println!("\n=== DASP distribution (Table 6 shape) ===");
    for (category, (snippets, contracts)) in &result.dasp_distribution {
        println!("{:<28} {:>5} snippets {:>6} contracts", category.name(), snippets, contracts);
    }

    println!("\nmanual-validation audit (Table 8 shape, oracle ground truth):");
    let grid = sodd::pipeline::run_audit(&result, &qa, &contracts, 10, 7);
    println!("  sample size:        {}", grid.sample_size);
    println!("  fully confirmed:    {}", grid.fully_confirmed());
    println!("  (true clone, vulnerable snippet, vulnerable contract)");
}
