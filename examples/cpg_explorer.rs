//! Figure 2 reproduction: the code property graph of
//! `if (msg.sender == owner) {}` — syntax (AST), evaluation order (EOG)
//! and data flow (DFG) — printed as edge lists and as Graphviz DOT.
//!
//! Run with: `cargo run --example cpg_explorer [snippet]`
//! Pipe the DOT block into `dot -Tpng` to render the figure.

use cpg::{dot, Cpg, EdgeKind, NodeKind};

fn main() {
    let snippet = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "if (msg.sender == owner) {}".to_string());

    let cpg = match Cpg::from_snippet(&snippet) {
        Ok(cpg) => cpg,
        Err(e) => {
            eprintln!("snippet does not parse: {e}");
            std::process::exit(1);
        }
    };

    println!("snippet: {snippet}");
    println!(
        "graph: {} nodes, {} edges\n",
        cpg.graph.node_count(),
        cpg.graph.edge_count()
    );

    println!("nodes:");
    for id in cpg.graph.node_ids() {
        let node = cpg.graph.node(id);
        if node.kind == NodeKind::TranslationUnit {
            continue;
        }
        let inferred = if node.props.is_inferred { "  (inferred)" } else { "" };
        println!(
            "  n{:<3} {:<28} {}{}",
            id.0,
            node.kind.label(),
            node.props.code,
            inferred
        );
    }

    for (kind, label) in [
        (EdgeKind::Eog, "evaluation order (EOG, green in Fig. 2)"),
        (EdgeKind::Dfg, "data flow (DFG, blue in Fig. 2)"),
    ] {
        println!("\n{label}:");
        for id in cpg.graph.node_ids() {
            for edge in cpg.graph.out_edges(id) {
                if edge.kind == kind {
                    println!(
                        "  {} --> {}",
                        cpg.graph.node(edge.from).props.code,
                        cpg.graph.node(edge.to).props.code
                    );
                }
            }
        }
    }

    println!("\nsyntax roles (dashed gray in Fig. 2):");
    for id in cpg.graph.node_ids() {
        for edge in cpg.graph.out_edges(id) {
            if let EdgeKind::Ast(role) = edge.kind {
                let from = cpg.graph.node(edge.from);
                let to = cpg.graph.node(edge.to);
                if from.kind == NodeKind::TranslationUnit {
                    continue;
                }
                println!(
                    "  {} -[{}]-> {}",
                    from.props.code,
                    role.label(),
                    to.props.code
                );
            }
        }
    }

    println!("\n--- Graphviz DOT ---");
    println!(
        "{}",
        dot::to_dot_filtered(&cpg.graph, |k| k != NodeKind::TranslationUnit)
    );
}
