//! # sodd — Stack Overflow Driven Development, measured
//!
//! Umbrella crate of the reproduction of *"Analyzing the Impact of
//! Copying-and-Pasting Vulnerable Solidity Code Snippets from
//! Question-and-Answer Websites"* (IMC 2024).
//!
//! The workspace implements the paper's two tools and every substrate
//! they depend on:
//!
//! * [`solidity`] — snippet-tolerant Solidity lexer/parser/AST (§4.1),
//! * [`cpg`] — code property graphs with EOG/DFG semantics (§2.3, §4.2),
//! * [`graphquery`] — in-process declarative pattern queries (§4.3),
//! * [`ccc`] — the CPG Contract Checker: 17 vulnerability queries over
//!   the DASP Top-10 (§4.4, Appendix B),
//! * [`fuzzyhash`] — ssdeep-style context-triggered piecewise hashing
//!   (§5.4),
//! * [`ngram_index`] — η-threshold N-gram candidate retrieval (§5.5),
//! * [`ccd`] — the Contract Clone Detector (§5),
//! * [`corpus`] — deterministic synthetic datasets standing in for the
//!   crawls and benchmark corpora (§4.6.1, §5.7.1, §6.1),
//! * [`baselines`] — the comparison tools of Tables 1 and 3,
//! * [`stats`] — Spearman correlations and confusion metrics,
//! * [`pipeline`] — the end-to-end study (§6).
//!
//! ```
//! use sodd::prelude::*;
//!
//! // Check a Q&A snippet the way the study does:
//! let findings = Checker::new()
//!     .check_snippet("function() {lib.delegatecall(msg.data);}")
//!     .unwrap();
//! assert!(!findings.is_empty());
//! ```


#![warn(missing_docs)]

pub use baselines;
pub use ccc;
pub use ccd;
pub use corpus;
pub use cpg;
pub use fuzzyhash;
pub use graphquery;
pub use ngram_index;
pub use pipeline;
pub use solidity;
pub use stats;

/// Common imports for studies and examples.
pub mod prelude {
    pub use ccc::{Checker, Dasp, Finding, QueryId};
    pub use ccd::{CcdParams, CloneDetector, Fingerprint};
    pub use corpus::contracts::{generate_contracts, SanctuaryConfig};
    pub use corpus::qa::{generate_qa, QaConfig};
    pub use cpg::Cpg;
    pub use pipeline::{run_funnel, run_study, StudyConfig};
}
