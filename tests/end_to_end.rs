//! Cross-crate integration tests: the full snippet → CPG → CCC pathway
//! and the snippet → fingerprint → CCD pathway on the paper's running
//! examples.

use sodd::prelude::*;

/// The paper's §4.4 example: the Parity-style default proxy delegate.
#[test]
fn paper_proxy_snippet_end_to_end() {
    let findings = Checker::new()
        .check_snippet("function() {lib.delegatecall(msg.data);}")
        .expect("the paper's snippet parses");
    assert!(
        findings
            .iter()
            .any(|f| f.query == QueryId::AcDefaultProxyDelegate),
        "{findings:?}"
    );
    assert_eq!(findings[0].category(), Dasp::AccessControl);
}

/// The paper's Figure 7/8 pathway: a reentrancy snippet from the Ethereum
/// Stack Exchange is found, by clone detection, inside a deployed contract
/// — and the vulnerability is still validated there.
#[test]
fn figure_7_8_snippet_to_contract() {
    let snippet = r#"
        function withdrawBalance() public {
            uint amountToWithdraw = userBalances[msg.sender];
            if (!(msg.sender.call.value(amountToWithdraw)())) { throw; }
            userBalances[msg.sender] = 0;
        }
    "#;
    let contract = r#"
        pragma solidity ^0.4.19;
        contract HODLWallet {
            mapping(address => uint) userBalances;

            function deposit() public payable {
                userBalances[msg.sender] += msg.value;
            }

            function withdrawBalance() public {
                uint amountToWithdraw = userBalances[msg.sender];
                if (!(msg.sender.call.value(amountToWithdraw)())) { throw; }
                userBalances[msg.sender] = 0;
            }
        }
    "#;

    // 1. CCC flags the snippet.
    let checker = Checker::new();
    let snippet_findings = checker.check_snippet(snippet).unwrap();
    let queries: Vec<QueryId> = snippet_findings.iter().map(|f| f.query).collect();
    assert!(queries.contains(&QueryId::Reentrancy), "{queries:?}");

    // 2. CCD maps the snippet into the deployed contract at the study's
    //    conservative parameters.
    let mut detector = CloneDetector::new(CcdParams::conservative());
    detector.insert_source(1, contract);
    let fp = CloneDetector::fingerprint_source(snippet).unwrap();
    let matches = detector.matches(&fp);
    assert_eq!(matches.len(), 1, "{matches:?}");

    // 3. Validation re-checks only the snippet's queries on the contract.
    let validation = ccc::Checker::with_queries(&queries).check_source(contract).unwrap();
    assert!(
        validation.iter().any(|f| f.query == QueryId::Reentrancy),
        "{validation:?}"
    );
}

/// Queries also run through the declarative engine (the Cypher substitute),
/// agreeing with the programmatic helper on the §4.3 example.
#[test]
fn query_engine_agrees_with_example() {
    let cpg = Cpg::from_snippet(
        "contract C { uint total; function add(uint amount) public { total += amount; } \
         function noop(uint x) public { uint y = x; } }",
    )
    .unwrap();
    let hits = sodd::graphquery::query_cpg(
        &cpg.graph,
        "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p",
        "p",
    )
    .unwrap();
    // Only `amount` is persisted to a field; `x` is not.
    assert_eq!(hits.len(), 1);
    assert_eq!(cpg.graph.node(hits[0]).props.local_name, "amount");
}

/// The three grammar modifications of §4.1, end to end.
#[test]
fn snippet_grammar_modifications() {
    // Unnested hierarchy.
    assert!(sodd::solidity::parse_snippet("owner = msg.sender;").is_ok());
    // Newline termination.
    assert!(sodd::solidity::parse_snippet("uint a = 1\nuint b = a + 2").is_ok());
    // Placeholders.
    assert!(sodd::solidity::parse_snippet("contract C { ... }").is_ok());
    // The standard grammar rejects all three.
    assert!(sodd::solidity::parse_source("owner = msg.sender;").is_err());
    assert!(sodd::solidity::parse_source("contract C { function f() public { uint a = 1 uint b = 2; } }").is_err());
    assert!(sodd::solidity::parse_source("contract C { ... }").is_err());
}

/// A miniature study run is internally consistent and finds reuse.
#[test]
fn mini_study_is_consistent() {
    let qa = generate_qa(QaConfig { seed: 7, scale: 0.02 });
    let contracts = generate_contracts(
        SanctuaryConfig { seed: 8, scale: 0.004, ..SanctuaryConfig::default() },
        &qa,
    );
    let funnel = run_funnel(&qa);
    let result = run_study(&qa, &contracts, &funnel.unique, StudyConfig::default());
    assert!(result.vulnerable_snippets > 0);
    assert!(result.vulnerable_contracts <= result.unique_contracts);
    assert!(result.snippets_in_vulnerable_contracts <= result.vulnerable_snippets);
}
