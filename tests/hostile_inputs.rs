//! Hostile-input suite: malformed, truncated, and adversarial Solidity
//! fed through the full `pipeline::api` facade must come back as typed
//! errors (or clean results) — never a panic, never an unknown code.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};

const KNOWN_CODES: &[&str] =
    &["parse", "graph_build", "query", "timeout", "invalid_request", "internal"];

fn hostile_sources() -> Vec<(&'static str, String)> {
    let mut nested = String::from("function f() public { ");
    for _ in 0..200 {
        nested.push_str("if (true) { ");
    }
    for _ in 0..200 {
        nested.push('}');
    }
    nested.push_str(" }");

    vec![
        ("empty", String::new()),
        ("whitespace", "   \n\t  \r\n ".to_string()),
        ("truncated contract", "contract C { function f() public {".to_string()),
        ("truncated string", "contract C { string s = \"unterminated".to_string()),
        ("garbage symbols", "%$@@@!!~~ ؆ ((((((((".to_string()),
        ("binary noise", "\u{0}\u{1}\u{7f}\u{fffd}contract\u{0}".to_string()),
        ("deeply nested", nested),
        ("unbalanced braces", "}}}}}}{{{{{{".to_string()),
        ("huge identifier", format!("contract C {{ uint {}; }}", "a".repeat(100_000))),
        ("pragma soup", "pragma pragma pragma ;;; contract".to_string()),
        ("only comments", "// nothing\n/* here */".to_string()),
        ("stray unicode op", "contract C { function f() public { x ≈ y; } }".to_string()),
    ]
}

#[test]
fn hostile_sources_yield_typed_outcomes_on_scan() {
    let engine = AnalysisEngine::new(AnalysisConfig::default());
    for (label, source) in hostile_sources() {
        match engine.analyze(&AnalysisRequest::scan(source)) {
            Ok(_) => {}
            Err(error) => assert!(
                KNOWN_CODES.contains(&error.code()),
                "{label}: unknown error code {} ({error})",
                error.code()
            ),
        }
    }
}

#[test]
fn hostile_sources_yield_typed_outcomes_on_clone_check() {
    let engine = AnalysisEngine::with_corpus(
        AnalysisConfig::default(),
        [(1u64, "contract Wallet { function w(uint v) public { msg.sender.transfer(v); } }")],
    );
    for (label, source) in hostile_sources() {
        match engine.analyze(&AnalysisRequest::clone_check(source)) {
            Ok(_) => {}
            Err(error) => assert!(
                KNOWN_CODES.contains(&error.code()),
                "{label}: unknown error code {} ({error})",
                error.code()
            ),
        }
    }
}

#[test]
fn hostile_request_documents_decode_to_typed_errors() {
    let garbage = [
        "",
        "{",
        "not json at all",
        "{\"v\":1}",
        "{\"v\":99,\"kind\":\"scan\",\"source\":\"contract C {}\"}",
        "{\"v\":1,\"kind\":\"launch_missiles\",\"source\":\"x\"}",
        "{\"v\":1,\"kind\":\"scan\"}",
        "[1,2,3]",
        "{\"v\":1,\"kind\":\"scan\",\"source\":12}",
    ];
    for text in garbage {
        let error = AnalysisRequest::from_json(text)
            .expect_err(&format!("garbage request must not decode: {text:?}"));
        assert!(
            KNOWN_CODES.contains(&error.code()),
            "{text:?}: unknown error code {}",
            error.code()
        );
    }
}
