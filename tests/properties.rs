//! Cross-crate property-based tests: invariants that must hold for *any*
//! generated program, not just the hand-picked samples.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sodd::corpus::mutate::{mutate, CloneType};
use sodd::corpus::templates::{benign_templates, vulnerable_templates, Level};
use sodd::cpg::{Cpg, EdgeKind, NodeKind};

/// Render an arbitrary template instance from a seed.
fn arbitrary_source(template_idx: usize, level_idx: usize, seed: u64) -> String {
    let vulnerable = vulnerable_templates();
    let benign = benign_templates();
    let all: Vec<_> = vulnerable.iter().chain(benign.iter()).collect();
    let template = all[template_idx % all.len()];
    let level = [Level::Contract, Level::Function, Level::Statements][level_idx % 3];
    let mut rng = StdRng::seed_from_u64(seed);
    template.render(&mut rng, level).text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printer is a fixpoint: print(parse(print(parse(x)))) == print(parse(x)).
    #[test]
    fn printer_fixpoint(t in 0usize..40, l in 0usize..3, seed in 0u64..1000) {
        let source = arbitrary_source(t, l, seed);
        let unit = sodd::solidity::parse_snippet(&source).expect("template parses");
        let printed = sodd::solidity::printer::print_unit(&unit);
        let reparsed = sodd::solidity::parse_snippet(&printed).expect("printed parses");
        let reprinted = sodd::solidity::printer::print_unit(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// Every mutation type preserves parseability.
    #[test]
    fn mutations_preserve_parseability(
        t in 0usize..40, seed in 0u64..500, m in 0usize..3,
    ) {
        let source = arbitrary_source(t, 0, seed);
        let clone_type = [CloneType::TypeI, CloneType::TypeII, CloneType::TypeIII][m];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mutated = mutate(&source, clone_type, &mut rng);
        prop_assert!(
            sodd::solidity::parse_snippet(&mutated).is_ok(),
            "{clone_type:?} broke parseability:\n{mutated}"
        );
    }

    /// CPG structural invariants on arbitrary programs:
    /// every non-root node has an AST parent path to the translation unit,
    /// EOG edges connect nodes of the same function, and rollback nodes
    /// never have outgoing EOG edges.
    #[test]
    fn cpg_invariants(t in 0usize..40, l in 0usize..3, seed in 0u64..500) {
        let source = arbitrary_source(t, l, seed);
        let cpg = Cpg::from_snippet(&source).expect("template parses");
        let g = &cpg.graph;

        for id in g.node_ids() {
            let node = g.node(id);
            // Rollback terminates a path (§4.2.1).
            if node.kind == NodeKind::Rollback {
                prop_assert!(
                    g.out_kind(id, EdgeKind::Eog).next().is_none(),
                    "rollback with outgoing EOG in\n{source}"
                );
            }
            // AST reachability from the unit root.
            if id != cpg.unit {
                let mut current = id;
                let mut hops = 0;
                loop {
                    match g.ast_parent(current) {
                        Some(parent) => {
                            current = parent;
                            hops += 1;
                            if current == cpg.unit {
                                break;
                            }
                            prop_assert!(hops < 10_000, "AST parent cycle");
                        }
                        None => {
                            prop_assert_eq!(
                                current, cpg.unit,
                                "orphan node {:?} ({})",
                                g.node(id).kind, g.node(id).props.code
                            );
                            break;
                        }
                    }
                }
            }
        }

        // EOG edges stay within one function.
        for id in g.node_ids() {
            for edge in g.out_edges(id) {
                if edge.kind == EdgeKind::Eog {
                    let from_fn = g.enclosing_function(edge.from);
                    let to_fn = g.enclosing_function(edge.to);
                    if let (Some(a), Some(b)) = (from_fn, to_fn) {
                        prop_assert_eq!(a, b, "EOG edge crosses functions in\n{}", source);
                    }
                }
            }
        }
    }

    /// Checking is deterministic and findings point at real lines.
    #[test]
    fn checking_is_deterministic(t in 0usize..40, seed in 0u64..300) {
        let source = arbitrary_source(t, 0, seed);
        let checker = sodd::ccc::Checker::new();
        let a = checker.check_snippet(&source).unwrap();
        let b = checker.check_snippet(&source).unwrap();
        prop_assert_eq!(&a, &b);
        let line_count = source.lines().count() as u32;
        for finding in &a {
            prop_assert!(finding.line >= 1 && finding.line <= line_count.max(1));
        }
    }

    /// Fingerprinting is total on parsable template output and reflexively
    /// 100-similar.
    #[test]
    fn fingerprint_reflexivity(t in 0usize..40, l in 0usize..2, seed in 0u64..300) {
        use sodd::ccd::{order_independent_similarity, CloneDetector};
        let source = arbitrary_source(t, l, seed);
        let fp = CloneDetector::fingerprint_source(&source).expect("fingerprintable");
        prop_assert_eq!(order_independent_similarity(&fp, &fp), 100.0);
    }

    /// Type I mutations never change the fingerprint at all (comments and
    /// layout are invisible to the pipeline).
    #[test]
    fn type_i_is_fingerprint_invisible(t in 0usize..40, seed in 0u64..300) {
        use sodd::ccd::CloneDetector;
        let source = arbitrary_source(t, 0, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mutated = mutate(&source, CloneType::TypeI, &mut rng);
        let a = CloneDetector::fingerprint_source(&source).expect("original");
        let b = CloneDetector::fingerprint_source(&mutated).expect("mutated");
        prop_assert_eq!(a, b);
    }
}
