//! Snapshot-backed vs in-memory equivalence on the honeypot corpus, and
//! the corpus-handle lifecycle under faults.

use ccd::CcdParams;
use pipeline::corpus_index::CorpusBuilder;
use corpus::honeypots::honeypot_dataset;
use std::path::PathBuf;

/// Seed of the recorded honeypot run (`bench::HONEYPOT_SEED`).
const HONEYPOT_SEED: u64 = 1;
/// Subset size: enough lineages for real clone structure, small enough
/// for debug-profile CI.
const TAKE: usize = 48;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodd_handle_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn snapshot_backed_matches_are_byte_identical_on_honeypots() {
    let dataset = honeypot_dataset(HONEYPOT_SEED);
    let docs: Vec<(u64, &str)> =
        dataset.contracts.iter().take(TAKE).map(|c| (c.id, c.source.as_str())).collect();
    let in_memory = CorpusBuilder::new(CcdParams::best()).from_sources(docs.iter().copied());

    let dir = temp_dir("honeypot");
    CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources(docs.iter().copied())
        .compact()
        .expect("commit");
    // Different shard count on load: the canonical merge order must make
    // the results independent of sharding and backing store.
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .shards(4)
        .load_snapshot()
        .expect("snapshot loads")
        .expect("snapshot exists");
    assert_eq!(warm.len(), in_memory.len());

    // Every corpus document as a query: scores AND order must agree
    // exactly (f64 bit pattern included — same inputs, same arithmetic).
    for (doc, fp) in in_memory.fingerprints() {
        let a = in_memory.matches(&fp);
        let b = warm.matches(&fp);
        assert_eq!(a.len(), b.len(), "doc {doc}: match count diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc, "doc {doc}: order diverged");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "doc {doc} vs {}: score diverged",
                x.doc
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_lifecycle_advances_generations() {
    let dir = temp_dir("lifecycle");
    let handle = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources([(
            0u64,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        )]);
    assert_eq!((handle.generation(), handle.deltas()), (0, 0));
    assert_eq!(handle.compact().unwrap(), 1);
    handle
        .insert_source(None, "contract B { uint t; function a(uint v) public { t += v; } }")
        .unwrap();
    assert_eq!((handle.generation(), handle.deltas()), (1, 1));
    assert_eq!(handle.compact().unwrap(), 2);
    assert_eq!((handle.generation(), handle.deltas()), (2, 0));

    // Reload: generation 2 carries both documents.
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .load_snapshot()
        .unwrap()
        .unwrap();
    assert_eq!(warm.generation(), 2);
    assert_eq!(warm.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_commit_leaves_previous_generation_loadable() {
    let dir = temp_dir("failedcommit");
    let handle = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources([(
            0u64,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        )]);
    handle.compact().unwrap();
    handle
        .insert_source(None, "contract B { uint t; function a(uint v) public { t += v; } }")
        .unwrap();
    // Inject an error exactly in the commit window (snapshot written,
    // CURRENT not yet flipped).
    faultinject::install(Some(faultinject::FaultPlan::parse("index:err:1.0", 1).unwrap()));
    let err = handle.compact().unwrap_err();
    assert_eq!(err.code(), "internal", "{err}");
    faultinject::install(None);
    // The handle still serves, the delta is still pending, and a reload
    // sees the old committed generation — plus the delta, replayed from
    // the write-ahead log (the uncommitted *snapshot* must not be
    // visible, but the acknowledged insert must survive).
    assert_eq!((handle.generation(), handle.deltas()), (1, 1));
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .load_snapshot()
        .unwrap()
        .unwrap();
    assert_eq!(warm.generation(), 1);
    assert_eq!(warm.len(), 2, "the acknowledged insert must replay from the WAL");
    assert_eq!((warm.deltas(), warm.replayed_on_boot()), (1, 1));
    // A retry after the fault clears succeeds and advances.
    assert_eq!(handle.compact().unwrap(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

const DOC_A: &str = "contract A { function w(uint v) public { msg.sender.transfer(v); } }";
const DOC_B: &str = "contract B { uint t; function a(uint v) public { t += v; } }";
const DOC_C: &str = "contract C { mapping(address=>uint) m; function s(uint v) public { m[msg.sender] = v; } }";

/// The tentpole invariant: inserts acknowledged after the last
/// compaction survive a crash (modeled by simply never compacting and
/// loading the directory fresh) and answer byte-identically.
#[test]
fn uncompacted_inserts_survive_a_reload_byte_identically() {
    let dir = temp_dir("walreplay");
    let handle =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).from_sources([(0u64, DOC_A)]);
    handle.compact().unwrap();
    handle.insert_source(None, DOC_B).unwrap();
    handle.insert_source(None, DOC_C).unwrap();
    assert_eq!((handle.generation(), handle.deltas()), (1, 2));

    // A fresh handle on the same directory — the kill -9 shape: nothing
    // was compacted, the deltas exist only in snapshot + WAL.
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .shards(3)
        .load_snapshot()
        .unwrap()
        .unwrap();
    assert_eq!((warm.generation(), warm.len()), (1, 3));
    assert_eq!((warm.deltas(), warm.replayed_on_boot()), (2, 2));
    for (doc, fp) in handle.fingerprints() {
        let a = handle.matches(&fp);
        let b = warm.matches(&fp);
        assert_eq!(a.len(), b.len(), "doc {doc}: match count diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.doc, x.score.to_bits()), (y.doc, y.score.to_bits()), "doc {doc}");
        }
    }
    // Replayed deltas compact like live ones.
    assert_eq!(warm.compact().unwrap(), 2);
    assert_eq!(warm.deltas(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn WAL tail (half-written record at the moment of the kill) is
/// truncated, and everything before it replays.
#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let dir = temp_dir("waltorn");
    let handle =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).from_sources([(0u64, DOC_A)]);
    handle.compact().unwrap();
    handle.insert_source(None, DOC_B).unwrap();
    drop(handle);
    // Tear the tail: a record header that promises more bytes than exist.
    let wal_path = dir.join("wal-1.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let warm =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).load_snapshot().unwrap().unwrap();
    assert_eq!((warm.len(), warm.replayed_on_boot()), (2, 1));
    // The resumed segment truncated the garbage; further inserts append
    // cleanly after the valid prefix.
    warm.insert_source(None, DOC_C).unwrap();
    drop(warm);
    let again =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).load_snapshot().unwrap().unwrap();
    assert_eq!((again.len(), again.replayed_on_boot()), (3, 2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed WAL append rejects the insert outright: nothing applied,
/// nothing to resurrect at the next boot.
#[test]
fn failed_wal_append_rejects_the_insert() {
    let dir = temp_dir("walappendfail");
    let handle =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).from_sources([(0u64, DOC_A)]);
    handle.compact().unwrap();
    faultinject::install(Some(faultinject::FaultPlan::parse("wal/append:err:1.0", 1).unwrap()));
    let result = handle.insert_source(None, DOC_B);
    faultinject::install(None);
    assert_eq!(result.unwrap_err().code(), "internal");
    assert_eq!((handle.len(), handle.deltas()), (1, 0));
    // The id was released and the corpus still accepts inserts.
    handle.insert_source(None, DOC_B).unwrap();
    assert_eq!((handle.len(), handle.deltas()), (2, 1));
    let warm =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).load_snapshot().unwrap().unwrap();
    assert_eq!(warm.len(), 2, "only the acknowledged insert replays");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `maybe_auto_compact` folds deltas once the threshold is crossed and
/// stays quiet below it.
#[test]
fn auto_compaction_triggers_at_the_threshold() {
    let dir = temp_dir("autocompact");
    let handle =
        CorpusBuilder::new(CcdParams::best()).snapshot_dir(&dir).from_sources([(0u64, DOC_A)]);
    handle.compact().unwrap();
    handle.insert_source(None, DOC_B).unwrap();
    assert!(!handle.maybe_auto_compact(2), "below the threshold");
    handle.insert_source(None, DOC_C).unwrap();
    assert!(handle.maybe_auto_compact(2));
    // The compaction runs on a background thread; poll for its commit.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while handle.generation() != 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!((handle.generation(), handle.deltas()), (2, 0));
    assert_eq!(handle.auto_compactions(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
