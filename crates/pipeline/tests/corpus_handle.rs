//! Snapshot-backed vs in-memory equivalence on the honeypot corpus, and
//! the corpus-handle lifecycle under faults.

use ccd::CcdParams;
use pipeline::corpus_index::CorpusBuilder;
use corpus::honeypots::honeypot_dataset;
use std::path::PathBuf;

/// Seed of the recorded honeypot run (`bench::HONEYPOT_SEED`).
const HONEYPOT_SEED: u64 = 1;
/// Subset size: enough lineages for real clone structure, small enough
/// for debug-profile CI.
const TAKE: usize = 48;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodd_handle_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn snapshot_backed_matches_are_byte_identical_on_honeypots() {
    let dataset = honeypot_dataset(HONEYPOT_SEED);
    let docs: Vec<(u64, &str)> =
        dataset.contracts.iter().take(TAKE).map(|c| (c.id, c.source.as_str())).collect();
    let in_memory = CorpusBuilder::new(CcdParams::best()).from_sources(docs.iter().copied());

    let dir = temp_dir("honeypot");
    CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources(docs.iter().copied())
        .compact()
        .expect("commit");
    // Different shard count on load: the canonical merge order must make
    // the results independent of sharding and backing store.
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .shards(4)
        .load_snapshot()
        .expect("snapshot loads")
        .expect("snapshot exists");
    assert_eq!(warm.len(), in_memory.len());

    // Every corpus document as a query: scores AND order must agree
    // exactly (f64 bit pattern included — same inputs, same arithmetic).
    for (doc, fp) in in_memory.fingerprints() {
        let a = in_memory.matches(&fp);
        let b = warm.matches(&fp);
        assert_eq!(a.len(), b.len(), "doc {doc}: match count diverged");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc, "doc {doc}: order diverged");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "doc {doc} vs {}: score diverged",
                x.doc
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_lifecycle_advances_generations() {
    let dir = temp_dir("lifecycle");
    let handle = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources([(
            0u64,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        )]);
    assert_eq!((handle.generation(), handle.deltas()), (0, 0));
    assert_eq!(handle.compact().unwrap(), 1);
    handle
        .insert_source(None, "contract B { uint t; function a(uint v) public { t += v; } }")
        .unwrap();
    assert_eq!((handle.generation(), handle.deltas()), (1, 1));
    assert_eq!(handle.compact().unwrap(), 2);
    assert_eq!((handle.generation(), handle.deltas()), (2, 0));

    // Reload: generation 2 carries both documents.
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .load_snapshot()
        .unwrap()
        .unwrap();
    assert_eq!(warm.generation(), 2);
    assert_eq!(warm.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_commit_leaves_previous_generation_loadable() {
    let dir = temp_dir("failedcommit");
    let handle = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .from_sources([(
            0u64,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        )]);
    handle.compact().unwrap();
    handle
        .insert_source(None, "contract B { uint t; function a(uint v) public { t += v; } }")
        .unwrap();
    // Inject an error exactly in the commit window (snapshot written,
    // CURRENT not yet flipped).
    faultinject::install(Some(faultinject::FaultPlan::parse("index:err:1.0", 1).unwrap()));
    let err = handle.compact().unwrap_err();
    assert_eq!(err.code(), "internal", "{err}");
    faultinject::install(None);
    // The handle still serves, the delta is still pending, and a reload
    // sees the old committed generation.
    assert_eq!((handle.generation(), handle.deltas()), (1, 1));
    let warm = CorpusBuilder::new(CcdParams::best())
        .snapshot_dir(&dir)
        .load_snapshot()
        .unwrap()
        .unwrap();
    assert_eq!(warm.generation(), 1);
    assert_eq!(warm.len(), 1, "uncommitted generation must not be visible");
    // A retry after the fault clears succeeds and advances.
    assert_eq!(handle.compact().unwrap(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
