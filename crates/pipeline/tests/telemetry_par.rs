//! Concurrency test: metrics hammered from `par_map` workers must add up
//! exactly (atomic hot paths, no lost updates).

use pipeline::par::par_map;

#[test]
fn par_map_workers_record_exact_totals() {
    telemetry::enable();
    static HAMMERED: telemetry::Counter = telemetry::Counter::new("test.par.hammer");
    static OBSERVED: telemetry::Histogram = telemetry::Histogram::new("test.par.hammer.hist");

    let before = telemetry::snapshot();
    let base_count = before.counter("test.par.hammer").unwrap_or(0);
    let items: Vec<u64> = (0..10_000).collect();
    let out = par_map(&items, |_, v| {
        HAMMERED.incr();
        OBSERVED.observe(*v % 17);
        *v * 2
    });
    assert_eq!(out.len(), items.len());

    let snapshot = telemetry::snapshot();
    assert_eq!(
        snapshot.counter("test.par.hammer").expect("counter recorded") - base_count,
        items.len() as u64,
        "every worker increment must land"
    );
    let histogram = snapshot.histogram("test.par.hammer.hist").expect("histogram recorded");
    assert_eq!(histogram.count, items.len() as u64);
    let expected_sum: u64 = items.iter().map(|v| v % 17).sum();
    assert_eq!(histogram.sum, expected_sum);
    assert_eq!(histogram.buckets.iter().sum::<u64>(), items.len() as u64);

    // par_map's own instrumentation saw the run too.
    assert!(snapshot.counter("par.runs").unwrap_or(0) >= 1);
    assert!(snapshot.counter("par.items").unwrap_or(0) >= items.len() as u64);
    let tasks = snapshot.histogram("par.tasks_per_worker").expect("worker histogram");
    assert!(tasks.sum >= items.len() as u64);
}
