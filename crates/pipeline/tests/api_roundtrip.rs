//! The facade's wire-format contract: requests and responses survive a
//! JSON round trip byte-comparably, the facade reproduces the legacy
//! batch path exactly, and error paths are typed.

use ccc::{Checker, QueryId};
use pipeline::api::{
    error_to_json, AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse, CloneHit,
    Finding,
};
use solidity::AnalysisError;

#[test]
fn scan_request_roundtrips_through_json() {
    let requests = [
        AnalysisRequest::scan("function f() { x = 1; }"),
        AnalysisRequest::Scan {
            source: "weird \"quotes\"\nand\tcontrol\u{1}chars\\".to_string(),
            detectors: Some(vec![QueryId::Reentrancy, QueryId::UncheckedCall]),
        },
        AnalysisRequest::clone_check("contract C { function f() {} }"),
    ];
    for request in requests {
        let json = request.to_json();
        let decoded = AnalysisRequest::from_json(&json).expect("request decodes");
        assert_eq!(decoded, request, "round trip changed the request: {json}");
        // Encoding is canonical: a second round trip is byte-identical.
        assert_eq!(decoded.to_json(), json);
    }
}

#[test]
fn response_roundtrips_through_json() {
    let responses = [
        AnalysisResponse::Findings(vec![Finding {
            detector: QueryId::UncheckedCall,
            line: 3,
            code: "to.send(1)".to_string(),
        }]),
        AnalysisResponse::Findings(vec![]),
        AnalysisResponse::Clones(vec![
            CloneHit { doc: 42, score: 100.0 },
            CloneHit { doc: 7, score: 83.33333333333333 },
        ]),
        AnalysisResponse::Clones(vec![]),
    ];
    for response in responses {
        let json = response.to_json();
        let decoded = AnalysisResponse::from_json(&json).expect("response decodes");
        assert_eq!(decoded, response, "round trip changed the response: {json}");
        assert_eq!(decoded.to_json(), json, "re-encoding must be byte-identical");
    }
}

#[test]
fn error_documents_roundtrip_with_their_code() {
    // The wire `message` is the Display rendering, so the contract is
    // code stability plus message preservation, not field-exact equality.
    let errors = [
        AnalysisError::query("unknown detector \"Nope\""),
        AnalysisError::invalid("clone-check source is empty"),
        AnalysisError::timeout("check", 250),
    ];
    for error in errors {
        let json = error_to_json(&error);
        let decoded = AnalysisResponse::from_json(&json).expect_err("error doc decodes to Err");
        assert_eq!(decoded.code(), error.code(), "{json}");
        assert!(
            decoded.to_string().contains(&error.to_string())
                || error.to_string().contains(&decoded.to_string()),
            "message lost in transit: {error} vs {decoded}"
        );
    }
    // Timeout is field-exact: stage and budget travel as structured fields.
    let timeout = AnalysisError::timeout("check", 250);
    let decoded = AnalysisResponse::from_json(&error_to_json(&timeout)).unwrap_err();
    assert_eq!(decoded, timeout);
}

#[test]
fn facade_scan_is_byte_identical_to_legacy_batch_output() {
    let sources = [
        "function f(address to) public { to.send(1); }",
        "contract Dao { mapping(address => uint) balances; \
         function withdraw() public { uint amount = balances[msg.sender]; \
         msg.sender.call{value: amount}(\"\"); balances[msg.sender] = 0; } }",
        "pragma solidity ^0.8.0; contract Clean { uint x; \
         function set(uint v) public { require(v < 10); x = v; } }",
    ];
    let engine = AnalysisEngine::new(AnalysisConfig::default());
    let checker = Checker::new();
    for source in sources {
        let api = match engine.analyze(&AnalysisRequest::scan(source)).unwrap() {
            AnalysisResponse::Findings(findings) => findings,
            other => panic!("expected findings, got {other:?}"),
        };
        let legacy = checker.check_snippet(source).unwrap();
        assert_eq!(api.len(), legacy.len());
        for (a, l) in api.iter().zip(&legacy) {
            assert_eq!(a.detector, l.query);
            assert_eq!(a.line, l.line);
            assert_eq!(a.code, l.code);
        }
    }
}

#[test]
fn malformed_snippet_reports_a_parse_error() {
    let engine = AnalysisEngine::new(AnalysisConfig::default());
    let err = engine
        .analyze(&AnalysisRequest::scan("function f( {"))
        .unwrap_err();
    assert_eq!(err.code(), "parse");
    match err {
        AnalysisError::Parse { line, .. } => assert_eq!(line, 1),
        other => panic!("expected Parse, got {other:?}"),
    }
}

#[test]
fn unknown_detector_name_reports_a_query_error() {
    let json = "{\"v\":1,\"kind\":\"scan\",\"source\":\"x = 1;\",\"detectors\":[\"NotADetector\"]}";
    let err = AnalysisRequest::from_json(json).unwrap_err();
    assert_eq!(err.code(), "query");
    assert!(err.to_string().contains("NotADetector"), "{err}");
}

#[test]
fn zero_length_clone_check_reports_invalid_request() {
    let engine = AnalysisEngine::new(AnalysisConfig::default());
    let err = engine
        .analyze(&AnalysisRequest::clone_check(""))
        .unwrap_err();
    assert_eq!(err.code(), "invalid_request");
}

#[test]
fn version_mismatch_is_rejected() {
    for doc in [
        "{\"kind\":\"scan\",\"source\":\"x = 1;\"}",
        "{\"v\":2,\"kind\":\"scan\",\"source\":\"x = 1;\"}",
    ] {
        let err = AnalysisRequest::from_json(doc).unwrap_err();
        assert_eq!(err.code(), "invalid_request", "{doc}");
    }
}
