//! CCD benchmark evaluation (§5.7 of the paper): Table 3 (comparison with
//! SmartEmbed on the honeypot dataset) and the Table 9 / Figure 9
//! parameter sweep.

use crate::api::{AnalysisConfig, AnalysisEngine};
use crate::corpus_index::CorpusBuilder;
use baselines::smartembed::{SmartEmbed, SMARTEMBED_THRESHOLD};
use ccd::{CcdParams, SweepEngine};
use corpus::honeypots::{HoneypotDataset, HoneypotType};
use serde::{Deserialize, Serialize};
use stats::Confusion;
use std::collections::{BTreeMap, HashSet};

/// Per-honeypot-type TP/FP of a clone detector (one Table 3 column pair).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoneypotResult {
    /// Tool name.
    pub tool: String,
    /// Type → confusion over clone *pairs*.
    pub per_type: BTreeMap<HoneypotType, Confusion>,
}

impl HoneypotResult {
    /// Totals across types.
    pub fn total(&self) -> Confusion {
        let mut total = Confusion::new();
        for c in self.per_type.values() {
            total += *c;
        }
        total
    }
}

/// Score a set of reported pairs against the dataset's ground truth,
/// attributing each pair to the family of its first member (the paper's
/// per-type rows).
fn score_pairs(
    dataset: &HoneypotDataset,
    reported: &HashSet<(u64, u64)>,
) -> BTreeMap<HoneypotType, Confusion> {
    let mut per_type: BTreeMap<HoneypotType, Confusion> = BTreeMap::new();
    for ty in HoneypotType::ALL {
        per_type.insert(*ty, Confusion::new());
    }
    for &(a, b) in reported {
        let ty = dataset.contracts[a as usize].ty;
        let entry = per_type.entry(ty).or_default();
        if dataset.is_clone_pair(a, b) {
            entry.tp += 1;
        } else {
            entry.fp += 1;
        }
    }
    // False negatives: ground-truth pairs not reported.
    for (i, a) in dataset.contracts.iter().enumerate() {
        for b in &dataset.contracts[i + 1..] {
            if a.ty == b.ty && !reported.contains(&(a.id.min(b.id), a.id.max(b.id))) {
                per_type.entry(a.ty).or_default().fn_ += 1;
            }
        }
    }
    per_type
}

/// Pairs reported under both-directions agreement: {a, b} such that the
/// directed set contains (a, b) *and* (b, a).
fn agreed_pairs(directed: &HashSet<(u64, u64)>) -> HashSet<(u64, u64)> {
    directed
        .iter()
        .filter(|(a, b)| directed.contains(&(*b, *a)))
        .map(|(a, b)| (*a.min(b), *a.max(b)))
        .collect()
}

/// Evaluate CCD on the honeypot dataset: every contract matched against
/// all others (§5.7.1), at the given parameters.
pub fn evaluate_ccd(dataset: &HoneypotDataset, params: CcdParams) -> HoneypotResult {
    let _span = telemetry::span("pipeline/eval_ccd");
    // The warm engine of the [`crate::api`] facade: corpus fingerprinted
    // once, matched through the same detector the analysis service
    // serves. The all-pairs batch iterates the stored fingerprints
    // directly instead of re-fingerprinting each contract as a query —
    // fingerprinting is deterministic, so the matches are identical.
    let engine = AnalysisEngine::with_corpus(
        AnalysisConfig::default().with_ccd_params(params),
        dataset.contracts.iter().map(|c| (c.id, c.source.as_str())),
    );
    let corpus = engine.corpus_handle();
    // Algorithm 1 is asymmetric (containment-oriented: every sub-
    // fingerprint of the *query* must find a good counterpart). For the
    // contract-vs-contract comparison of Table 3 a pair is a clone when
    // both directions agree — otherwise every small contract would "match"
    // every larger one sharing its boilerplate.
    let mut directed: HashSet<(u64, u64)> = HashSet::new();
    for (id, fp) in corpus.fingerprints() {
        for m in corpus.matches(&fp) {
            if m.doc != id {
                directed.insert((id, m.doc));
            }
        }
    }
    HoneypotResult {
        tool: "CCD".to_string(),
        per_type: score_pairs(dataset, &agreed_pairs(&directed)),
    }
}

/// Evaluate the SmartEmbed baseline at its recommended 0.9 threshold.
pub fn evaluate_smartembed(dataset: &HoneypotDataset) -> HoneypotResult {
    let _span = telemetry::span("pipeline/eval_smartembed");
    let mut se = SmartEmbed::new();
    for contract in &dataset.contracts {
        se.insert(contract.id, &contract.source);
    }
    let reported: HashSet<(u64, u64)> = se
        .clone_pairs(SMARTEMBED_THRESHOLD)
        .into_iter()
        .map(|(a, b, _)| (a.min(b), a.max(b)))
        .collect();
    HoneypotResult {
        tool: "SmartEmbed".to_string(),
        per_type: score_pairs(dataset, &reported),
    }
}

/// One Figure 9 series point: parameters plus precision/recall on the
/// honeypot dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepRow {
    /// Parameters.
    pub params: CcdParams,
    /// Precision over pairs.
    pub precision: f64,
    /// Recall over pairs.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// Run the Table 9 grid over the honeypot dataset (Figure 9's data).
///
/// Goes through the sweep-once [`SweepEngine`] — fingerprints once, one
/// index per N, one score per pair — instead of 75 [`evaluate_ccd`]
/// rebuilds, with identical per-cell results. Table 9 counts a pair only
/// when *both* directions of Algorithm 1 pass (the same agreement rule as
/// Table 3's [`evaluate_ccd`]).
pub fn sweep_ccd(dataset: &HoneypotDataset) -> Vec<SweepRow> {
    let _span = telemetry::span("pipeline/sweep_ccd");
    // Fingerprint through the same front half as every other consumer
    // ([`crate::corpus_index::CorpusBuilder`]) and hand the sweep engine
    // finished fingerprints — one normalization pass, shared idiom.
    let engine = SweepEngine::from_fingerprints(CorpusBuilder::fingerprint_sources(
        dataset.contracts.iter().map(|c| (c.id, c.source.as_str())),
    ));
    let mut rows = Vec::with_capacity(75);
    engine.for_each_cell(|params, directed| {
        let mut total = Confusion::new();
        for c in score_pairs(dataset, &agreed_pairs(directed)).values() {
            total += *c;
        }
        rows.push(SweepRow {
            params,
            precision: total.precision(),
            recall: total.recall(),
            f1: total.f1(),
        });
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::honeypots::honeypot_dataset;

    fn dataset() -> HoneypotDataset {
        // Keep in sync with `bench::HONEYPOT_SEED` (seed of the recorded
        // run; lands the synthetic corpus in the Table 3 regime).
        honeypot_dataset(1)
    }

    #[test]
    fn ccd_beats_smartembed_on_f1() {
        // The Table 3 headline: CCD achieves higher precision, recall and
        // F1 than SmartEmbed.
        let ds = dataset();
        let ccd = evaluate_ccd(&ds, CcdParams::best()).total();
        let se = evaluate_smartembed(&ds).total();
        assert!(
            ccd.f1() > se.f1(),
            "CCD F1 {} vs SmartEmbed F1 {}",
            ccd.f1(),
            se.f1()
        );
        assert!(
            ccd.precision() >= se.precision() - 0.02,
            "CCD precision {} vs {}",
            ccd.precision(),
            se.precision()
        );
    }

    #[test]
    fn both_tools_have_high_precision_low_recall() {
        // Ground truth is whole-family pairwise; textual detectors only
        // recover intra-lineage pairs → precision ≫ recall (Table 3).
        let ds = dataset();
        for result in [evaluate_ccd(&ds, CcdParams::best()), evaluate_smartembed(&ds)] {
            let total = result.total();
            assert!(total.precision() > 0.8, "{}: {}", result.tool, total.precision());
            assert!(total.recall() < 0.8, "{}: {}", result.tool, total.recall());
            assert!(total.tp > 100, "{}: tp = {}", result.tool, total.tp);
        }
    }

    #[test]
    fn hidden_state_update_dominates_tp() {
        // The largest family must contribute the most true positives, as
        // in Table 3.
        let ds = dataset();
        let ccd = evaluate_ccd(&ds, CcdParams::best());
        let hsu = ccd.per_type[&HoneypotType::HiddenStateUpdate];
        for (ty, confusion) in &ccd.per_type {
            if *ty != HoneypotType::HiddenStateUpdate {
                assert!(hsu.tp >= confusion.tp, "{ty:?} outgrew HSU");
            }
        }
    }

    #[test]
    fn sweep_rows_agree_with_per_cell_evaluation() {
        // The engine's cached-score path must reproduce the standalone
        // evaluator bit-for-bit; spot-check the two paper configurations.
        let ds = dataset();
        let rows = sweep_ccd(&ds);
        for params in [CcdParams::best(), CcdParams::conservative()] {
            let row = rows
                .iter()
                .find(|r| {
                    r.params.ngram_size == params.ngram_size
                        && (r.params.eta - params.eta).abs() < 1e-9
                        && (r.params.epsilon - params.epsilon).abs() < 1e-9
                })
                .unwrap();
            let total = evaluate_ccd(&ds, params).total();
            assert_eq!(row.precision.to_bits(), total.precision().to_bits());
            assert_eq!(row.recall.to_bits(), total.recall().to_bits());
            assert_eq!(row.f1.to_bits(), total.f1().to_bits());
        }
    }

    #[test]
    fn sweep_has_75_rows_and_best_tradeoff_at_paper_params() {
        let ds = dataset();
        let rows = sweep_ccd(&ds);
        assert_eq!(rows.len(), 75);
        // Recall decreases as epsilon rises (for fixed N, eta).
        let at = |n: usize, eta: f64, eps: f64| {
            rows.iter()
                .find(|r| {
                    r.params.ngram_size == n
                        && (r.params.eta - eta).abs() < 1e-9
                        && (r.params.epsilon - eps).abs() < 1e-9
                })
                .copied()
                .unwrap()
        };
        assert!(at(3, 0.5, 50.0).recall >= at(3, 0.5, 90.0).recall);
        assert!(at(3, 0.5, 90.0).precision >= at(3, 0.5, 50.0).precision - 0.02);
    }
}
