//! The end-to-end study pipeline (§6 of the paper).
//!
//! Wires the substrates together into the experiment of Figure 6:
//!
//! * [`funnel`] — Q&A data collection funnel (Table 4),
//! * [`mapping`] — CCD snippet→contract clone mapping + deduplication,
//! * [`temporal`] — All/Disseminator/Source grouping and the Spearman
//!   popularity correlations (Table 5),
//! * [`study`] — the two-phase vulnerability validation (Tables 6 and 7),
//! * [`manual`] — the stratified oracle audit (Table 8),
//! * [`eval_ccc`] — the CCC benchmark against eight baselines
//!   (Tables 1 and 2),
//! * [`eval_ccd`] — the CCD benchmark against SmartEmbed and the
//!   parameter sweep (Tables 3 and 9, Figure 9),
//! * [`report`] — plain-text table rendering,
//! * [`api`] — the unified analysis facade (typed requests/responses with
//!   a versioned JSON encoding) shared by the batch bins and the analysis
//!   service (`crates/server`),
//! * [`corpus_index`] — the clone-corpus lifecycle behind one handle:
//!   [`corpus_index::CorpusBuilder`] builds in-memory or snapshot-backed
//!   corpora, [`corpus_index::CorpusHandle`] serves sharded matching,
//!   incremental insert, compaction, and the near-duplicate front cache.


#![warn(missing_docs)]

pub mod api;
pub mod corpus_index;
pub mod eval_ccc;
pub mod eval_ccd;
pub mod funnel;
pub mod manual;
pub mod mapping;
pub mod par;
pub mod report;
pub mod study;
pub mod telemetry_report;
pub mod temporal;

pub use api::{
    AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse, CloneHit, Finding,
};
pub use corpus_index::{CorpusBuilder, CorpusHandle, FrontCacheStats};
pub use funnel::{run_funnel, FunnelOutput, UniqueSnippet};
pub use manual::{run_audit, AuditGrid};
pub use mapping::{dedup_contracts, map_snippets, CloneMapping};
pub use study::{run_study, StudyConfig, StudyResult, ValidationOutcome};
pub use temporal::{adoptions, correlations, Adoption, TemporalGroup};
