//! Work-stealing parallel map used by the pipeline's fan-out stages.
//!
//! The earlier implementation split work into `n_threads` static chunks,
//! which serializes the tail whenever one chunk draws a skewed item (one
//! huge contract can hold its whole chunk hostage while every other
//! thread idles). Here workers claim items one at a time from a shared
//! atomic cursor, so load balances at item granularity with a single
//! uncontended `fetch_add` per item.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `work` over `items` in parallel, preserving input order in the
/// result. `work` receives `(index, &item)`.
///
/// Items are claimed one at a time from an atomic cursor (work stealing
/// at item granularity); results are merged per worker and re-sorted by
/// index, so the output is deterministic regardless of scheduling.
pub fn par_map<T, R, F>(items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    static RUNS: telemetry::Counter = telemetry::Counter::new("par.runs");
    static ITEMS: telemetry::Counter = telemetry::Counter::new("par.items");
    static STEALS: telemetry::Counter = telemetry::Counter::new("par.steals");
    static TASKS_PER_WORKER: telemetry::Histogram =
        telemetry::Histogram::new("par.tasks_per_worker");
    RUNS.incr();
    ITEMS.add(items.len() as u64);
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if n_threads <= 1 {
        TASKS_PER_WORKER.observe(items.len() as u64);
        return items.iter().enumerate().map(|(i, item)| work(i, item)).collect();
    }

    // With item-granular claiming there is no assigned chunk; "steals" are
    // the tasks a worker executed beyond its fair (static-split) share.
    let fair_share = items.len().div_ceil(n_threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, work(index, &items[index])));
                }
                TASKS_PER_WORKER.observe(local.len() as u64);
                STEALS.add(local.len().saturating_sub(fair_share) as u64);
                collected.lock().expect("worker poisoned the result lock").extend(local);
            });
        }
    });

    let mut indexed = collected.into_inner().expect("result lock poisoned");
    indexed.sort_unstable_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, v| v * 2);
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..500).collect();
        let hits = AtomicUsize::new(0);
        let out = par_map(&items, |i, v| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, *v);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn skewed_workload_completes() {
        // One item 1000× heavier than the rest must not serialize the tail.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, v| {
            let spins = if *v == 0 { 200_000 } else { 200 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc.min(1) + v
        });
        assert_eq!(out.len(), 64);
    }
}
