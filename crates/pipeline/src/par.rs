//! Work-stealing parallel map used by the pipeline's fan-out stages.
//!
//! The earlier implementation split work into `n_threads` static chunks,
//! which serializes the tail whenever one chunk draws a skewed item (one
//! huge contract can hold its whole chunk hostage while every other
//! thread idles). Here workers claim items one at a time from a shared
//! atomic cursor, so load balances at item granularity with a single
//! uncontended `fetch_add` per item.
//!
//! [`WorkerPool`] extends the same idea to long-lived service workloads:
//! a fixed set of threads draining a *bounded* job queue, with explicit
//! backpressure ([`WorkerPool::try_submit`] refuses instead of growing
//! the queue) and graceful drain-then-join shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Map `work` over `items` in parallel, preserving input order in the
/// result. `work` receives `(index, &item)`.
///
/// Items are claimed one at a time from an atomic cursor (work stealing
/// at item granularity); results are merged per worker and re-sorted by
/// index, so the output is deterministic regardless of scheduling.
pub fn par_map<T, R, F>(items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    static RUNS: telemetry::Counter = telemetry::Counter::new("par.runs");
    static ITEMS: telemetry::Counter = telemetry::Counter::new("par.items");
    static STEALS: telemetry::Counter = telemetry::Counter::new("par.steals");
    static TASKS_PER_WORKER: telemetry::Histogram =
        telemetry::Histogram::new("par.tasks_per_worker");
    RUNS.incr();
    ITEMS.add(items.len() as u64);
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if n_threads <= 1 {
        TASKS_PER_WORKER.observe(items.len() as u64);
        return items.iter().enumerate().map(|(i, item)| work(i, item)).collect();
    }

    // With item-granular claiming there is no assigned chunk; "steals" are
    // the tasks a worker executed beyond its fair (static-split) share.
    let fair_share = items.len().div_ceil(n_threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, work(index, &items[index])));
                }
                TASKS_PER_WORKER.observe(local.len() as u64);
                STEALS.add(local.len().saturating_sub(fair_share) as u64);
                collected.lock().expect("worker poisoned the result lock").extend(local);
            });
        }
    });

    let mut indexed = collected.into_inner().expect("result lock poisoned");
    indexed.sort_unstable_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`WorkerPool::try_submit`] when the queue is at capacity —
/// the job is handed back so the caller can shed load (the analysis
/// service turns this into an HTTP 429 on the rejected connection).
pub struct PoolFull<F>(pub F);

impl<F> std::fmt::Debug for PoolFull<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    capacity: usize,
    /// Handles of live workers — including respawned ones, which register
    /// themselves here so shutdown can join them.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Workers respawned after a job panicked through them.
    respawns: AtomicU64,
}

impl PoolShared {
    /// The state lock is never held while a job runs, so poisoning is
    /// impossible in practice; recover the guard anyway so one anomalous
    /// panic cannot wedge the whole pool.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A cheap cloneable view of a pool's health, for reporting (the analysis
/// service surfaces it through `/health`). Stays valid after the pool
/// itself shuts down.
#[derive(Clone)]
pub struct PoolMonitor {
    shared: Arc<PoolShared>,
}

impl PoolMonitor {
    /// Workers respawned after a panic.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Jobs currently queued (excluding jobs already picked up).
    pub fn queue_len(&self) -> usize {
        self.shared.lock_state().jobs.len()
    }
}

/// Respawn guard armed for the lifetime of a worker thread. Leaked
/// (`mem::forget`) on orderly exit; dropped during unwind when a job
/// panics, where it replaces the dying worker so the pool never loses
/// capacity to a poisoned job.
struct Sentinel {
    shared: Arc<PoolShared>,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        static RESPAWNS: telemetry::Counter = telemetry::Counter::new("pool.respawns");
        if !std::thread::panicking() {
            return;
        }
        {
            // During shutdown a successor is still needed while jobs are
            // queued — shutdown promises to drain them.
            let state = self.shared.lock_state();
            if state.shutdown && state.jobs.is_empty() {
                return;
            }
        }
        self.shared.respawns.fetch_add(1, Ordering::Relaxed);
        RESPAWNS.incr();
        WorkerPool::spawn_worker(&self.shared);
    }
}

/// A fixed-size worker pool over a bounded job queue.
///
/// Unlike [`par_map`] (one-shot fan-out over a known slice), the pool
/// serves an open-ended stream of jobs: submission is non-blocking and
/// *refuses* once `capacity` jobs are queued, making overload explicit at
/// the edge instead of hiding it in unbounded memory growth. Workers park
/// on a condvar between jobs; [`WorkerPool::shutdown`] drains the queue
/// and joins every worker. A job that panics kills only its worker, and
/// the worker is respawned on the spot (counted in `pool.respawns`).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    worker_count: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads serving a queue bounded at `capacity`
    /// pending jobs (both clamped to at least 1).
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { jobs: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            capacity: capacity.max(1),
            handles: Mutex::new(Vec::new()),
            respawns: AtomicU64::new(0),
        });
        let worker_count = workers.max(1);
        for _ in 0..worker_count {
            Self::spawn_worker(&shared);
        }
        WorkerPool { shared, worker_count }
    }

    /// Spawn one worker and register its handle for shutdown to join.
    /// Called both at construction and from a dying worker's [`Sentinel`];
    /// in the latter case the handle is registered before the panicking
    /// thread terminates, so shutdown's join loop always sees it.
    fn spawn_worker(shared: &Arc<PoolShared>) {
        let worker_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let sentinel = Sentinel { shared: Arc::clone(&worker_shared) };
            Self::worker_loop(&worker_shared);
            std::mem::forget(sentinel); // orderly exit: disarm the respawn guard
        });
        shared
            .handles
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(handle);
    }

    fn worker_loop(shared: &PoolShared) {
        static EXECUTED: telemetry::Counter = telemetry::Counter::new("pool.executed");
        loop {
            let job = {
                let mut state = shared.lock_state();
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break Some(job);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = shared
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            match job {
                Some(job) => {
                    job();
                    EXECUTED.incr();
                }
                None => return,
            }
        }
    }

    /// Number of worker threads the pool maintains.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs currently queued (excluding jobs already picked up).
    pub fn queue_len(&self) -> usize {
        self.shared.lock_state().jobs.len()
    }

    /// Workers respawned after a panicking job killed their predecessor.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// A cloneable health view of this pool for reporting endpoints.
    pub fn monitor(&self) -> PoolMonitor {
        PoolMonitor { shared: Arc::clone(&self.shared) }
    }

    /// Submit a job without blocking. Returns the job inside
    /// [`PoolFull`] when `capacity` jobs are already pending.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolFull<F>>
    where
        F: FnOnce() + Send + 'static,
    {
        static SUBMITTED: telemetry::Counter = telemetry::Counter::new("pool.submitted");
        static REJECTED: telemetry::Counter = telemetry::Counter::new("pool.rejected");
        static DEPTH: telemetry::Gauge = telemetry::Gauge::new("pool.queue_depth");
        let mut state = self.shared.lock_state();
        if state.shutdown || state.jobs.len() >= self.shared.capacity {
            drop(state);
            REJECTED.incr();
            return Err(PoolFull(job));
        }
        state.jobs.push_back(Box::new(job));
        DEPTH.set(state.jobs.len() as u64);
        drop(state);
        SUBMITTED.incr();
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Graceful shutdown: already-queued jobs still run, new submissions
    /// are refused, and every worker is joined before returning. Joining
    /// loops because a worker dying mid-shutdown may still register a
    /// respawned successor.
    pub fn shutdown(self) {
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut registered = self
                    .shared
                    .handles
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                std::mem::take(&mut *registered)
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join(); // a worker that died panicking is fine here
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, v| v * 2);
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let items: Vec<usize> = (0..500).collect();
        let hits = AtomicUsize::new(0);
        let out = par_map(&items, |i, v| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, *v);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn pool_executes_all_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.try_submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_sheds_load_past_queue_capacity() {
        // One worker blocked on a gate + capacity 1 → the first job runs,
        // the second queues, the third must be refused.
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has picked up the blocking job.
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).unwrap();
        assert!(pool.try_submit(|| {}).is_err(), "third job must be shed");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let pool = WorkerPool::new(1, 64);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.try_submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 20, "queued jobs run before join");
    }

    #[test]
    fn rejected_job_is_handed_back() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        if let Err(PoolFull(job)) = pool.try_submit(move || {
            h.fetch_add(1, Ordering::Relaxed);
        }) {
            job(); // the caller still owns the work
        }
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn panicking_jobs_respawn_workers_and_later_jobs_still_run() {
        let pool = WorkerPool::new(2, 64);
        let monitor = pool.monitor();
        for _ in 0..4 {
            pool.try_submit(|| panic!("injected job panic")).unwrap();
        }
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            pool.try_submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 8, "pool survives panicking jobs");
        // A worker unwinding while the queue drains may legitimately skip
        // its respawn once shutdown is flagged and no work remains, so the
        // final panic accounts for 3-or-4, never fewer.
        let respawns = monitor.respawns();
        assert!(
            (3..=4).contains(&respawns),
            "each panicking job kills one worker (respawns: {respawns})"
        );
    }

    #[test]
    fn skewed_workload_completes() {
        // One item 1000× heavier than the rest must not serialize the tail.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, v| {
            let spins = if *v == 0 { 200_000 } else { 200 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc.min(1) + v
        });
        assert_eq!(out.len(), 64);
    }
}
