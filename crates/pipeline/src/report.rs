//! Plain-text table rendering for the `tables` binary and EXPERIMENTS.md.

/// A simple monospace table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Table {
        Table { title: title.into(), ..Table::default() }
    }

    /// Set the header row.
    pub fn header(mut self, cells: &[&str]) -> Table {
        self.header = cells.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>width$} | "));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * columns + 1));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo").header(&["name", "count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let out = t.render();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("| longer |"));
        let lines: Vec<&str> = out.lines().collect();
        // Header, separator, two rows, title.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9234), "92.3%");
        assert_eq!(f3(0.28199), "0.282");
    }
}
