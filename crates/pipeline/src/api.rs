//! The unified analysis facade: one typed request/response surface over
//! CCC scanning and CCD clone checking.
//!
//! Both consumption modes of the toolchain sit on this module: the batch
//! bins (`tables`, the evaluators) construct an [`AnalysisEngine`] and
//! drive it in a loop, the analysis service (`crates/server`) keeps one
//! warm engine behind an `Arc` and feeds it decoded HTTP bodies. Requests
//! and responses have a versioned JSON encoding (`"v": 1`) parsed with
//! [`telemetry::json`], so service and batch results are byte-comparable.
//!
//! ```
//! use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse};
//!
//! let engine = AnalysisEngine::new(AnalysisConfig::default());
//! let request = AnalysisRequest::scan("function f(address to) public { to.send(1); }");
//! match engine.analyze(&request).unwrap() {
//!     AnalysisResponse::Findings(findings) => assert!(!findings.is_empty()),
//!     other => panic!("expected findings, got {other:?}"),
//! }
//! ```

use crate::corpus_index::{CorpusBuilder, CorpusHandle};
use ccc::{Checker, Dasp, QueryId};
use ccd::{CcdParams, CloneDetector, Fingerprint};
use cpg::Cpg;
use solidity::AnalysisError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::json::Value;

/// Version tag of the JSON wire encoding.
pub const API_VERSION: u32 = 1;

/// Default capacity of the engine's content-addressed CPG cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Default capacity of the engine's whole-response cache.
pub const DEFAULT_RESPONSE_CACHE_CAPACITY: usize = 2048;

/// Maximum items accepted in one batch request.
pub const MAX_BATCH_ITEMS: usize = 256;

/// Builder-style configuration of an [`AnalysisEngine`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    detectors: Option<Vec<QueryId>>,
    ccd: CcdParams,
    max_path: usize,
    timeout_ms: Option<u64>,
    cache_capacity: usize,
    response_cache_capacity: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            detectors: None,
            ccd: CcdParams::best(),
            max_path: usize::MAX,
            timeout_ms: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            response_cache_capacity: DEFAULT_RESPONSE_CACHE_CAPACITY,
        }
    }
}

impl AnalysisConfig {
    /// Restrict scans to a subset of the 17 detectors.
    pub fn with_detectors(mut self, detectors: &[QueryId]) -> Self {
        self.detectors = Some(detectors.to_vec());
        self
    }

    /// Restrict scans to detectors given by their stable names
    /// ([`QueryId::name`]); unknown names are a query error.
    pub fn with_detector_names<S: AsRef<str>>(
        mut self,
        names: &[S],
    ) -> Result<Self, AnalysisError> {
        self.detectors = Some(parse_detector_names(names)?);
        Ok(self)
    }

    /// CCD matching parameters for clone checks.
    pub fn with_ccd_params(mut self, params: CcdParams) -> Self {
        self.ccd = params;
        self
    }

    /// Maximum transitive data-flow path length of the checker.
    pub fn with_max_path(mut self, max_path: usize) -> Self {
        self.max_path = max_path;
        self
    }

    /// Per-request wall-clock budget; requests exceeding it fail with
    /// [`AnalysisError::Timeout`] at the next stage boundary.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = Some(timeout_ms);
        self
    }

    /// Capacity of the content-addressed CPG cache (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Capacity of the whole-response cache keyed by request content
    /// (0 disables it). Successful responses are memoized so a repeated
    /// request skips the entire pipeline; errors are never cached, and
    /// the cache is bypassed while fault injection is armed so chaos
    /// runs always exercise the real stages.
    pub fn with_response_cache_capacity(mut self, capacity: usize) -> Self {
        self.response_cache_capacity = capacity;
        self
    }

    /// The configured detector subset, `None` for all 17.
    pub fn detectors(&self) -> Option<&[QueryId]> {
        self.detectors.as_deref()
    }

    /// The configured CCD parameters.
    pub fn ccd_params(&self) -> CcdParams {
        self.ccd
    }

    /// The configured per-request budget.
    pub fn timeout_ms(&self) -> Option<u64> {
        self.timeout_ms
    }

    fn checker(&self) -> Checker {
        let checker = match &self.detectors {
            Some(queries) => Checker::with_queries(queries),
            None => Checker::new(),
        };
        checker.bounded(self.max_path)
    }
}

fn parse_detector_names<S: AsRef<str>>(names: &[S]) -> Result<Vec<QueryId>, AnalysisError> {
    names
        .iter()
        .map(|name| {
            QueryId::parse_name(name.as_ref()).ok_or_else(|| {
                AnalysisError::query(format!("unknown detector {:?}", name.as_ref()))
            })
        })
        .collect()
}

/// Per-request trace identity carried alongside an [`AnalysisRequest`]
/// through the facade.
///
/// The server's ingress builds one from the `X-Trace-Id` header;
/// programmatic callers use [`TraceContext::none`] (a fresh id is minted
/// if tracing is on) or [`TraceContext::with_id`] to correlate with an
/// outer system. [`AnalysisEngine::analyze_traced`] opens the request's
/// root span from it; the analysis stages below (parse, CPG build/expand,
/// query eval, CCC detectors, CCD fingerprint/match) attach their spans
/// via the thread-local set up by that root, so the context never needs
/// to thread through their signatures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id to adopt; `None` mints a fresh id when tracing is on.
    pub trace_id: Option<telemetry::trace::TraceId>,
}

impl TraceContext {
    /// No caller-supplied id (mint one if tracing is enabled).
    pub fn none() -> TraceContext {
        TraceContext { trace_id: None }
    }

    /// Adopt an explicit trace id.
    pub fn with_id(id: telemetry::trace::TraceId) -> TraceContext {
        TraceContext { trace_id: Some(id) }
    }

    /// Parse a caller-supplied hex id (e.g. an `X-Trace-Id` header
    /// value); unparseable input falls back to [`TraceContext::none`].
    pub fn from_hex(hex: &str) -> TraceContext {
        TraceContext { trace_id: telemetry::trace::TraceId::from_hex(hex) }
    }

    /// The id this context resolves to: the adopted id, or a freshly
    /// minted one.
    pub fn resolve(self) -> telemetry::trace::TraceId {
        self.trace_id.unwrap_or_else(telemetry::trace::new_trace_id)
    }
}

/// A typed analysis request — the facade's single entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisRequest {
    /// Scan a snippet with the CCC detectors.
    Scan {
        /// The Solidity fragment to scan.
        source: String,
        /// Detector subset for this request; `None` uses the engine's
        /// configured set.
        detectors: Option<Vec<QueryId>>,
    },
    /// Match a contract against the engine's warm clone corpus.
    CloneCheck {
        /// The contract (or snippet) to fingerprint and match.
        source: String,
    },
}

impl AnalysisRequest {
    /// A scan request with the engine's configured detectors.
    pub fn scan(source: impl Into<String>) -> AnalysisRequest {
        AnalysisRequest::Scan { source: source.into(), detectors: None }
    }

    /// A clone-check request.
    pub fn clone_check(source: impl Into<String>) -> AnalysisRequest {
        AnalysisRequest::CloneCheck { source: source.into() }
    }

    /// Encode as versioned JSON.
    pub fn to_json(&self) -> String {
        match self {
            AnalysisRequest::Scan { source, detectors } => {
                let mut out = format!(
                    "{{\"v\":{API_VERSION},\"kind\":\"scan\",\"source\":\"{}\"",
                    escape_json(source)
                );
                if let Some(detectors) = detectors {
                    out.push_str(",\"detectors\":[");
                    for (i, d) in detectors.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        out.push_str(d.name());
                        out.push('"');
                    }
                    out.push(']');
                }
                out.push('}');
                out
            }
            AnalysisRequest::CloneCheck { source } => format!(
                "{{\"v\":{API_VERSION},\"kind\":\"clone_check\",\"source\":\"{}\"}}",
                escape_json(source)
            ),
        }
    }

    /// Decode a versioned JSON request.
    pub fn from_json(text: &str) -> Result<AnalysisRequest, AnalysisError> {
        let value = telemetry::json::parse(text)
            .map_err(|e| AnalysisError::invalid(format!("malformed JSON request: {e}")))?;
        Self::from_value(&value)
    }

    /// Decode one request from an already-parsed JSON value (shared by
    /// [`AnalysisRequest::from_json`] and [`batch_from_json`]).
    fn from_value(value: &Value) -> Result<AnalysisRequest, AnalysisError> {
        check_version(value)?;
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| AnalysisError::invalid("request is missing \"kind\""))?;
        let source = value
            .get("source")
            .and_then(Value::as_str)
            .ok_or_else(|| AnalysisError::invalid("request is missing \"source\""))?
            .to_string();
        match kind {
            "scan" => {
                let detectors = match value.get("detectors") {
                    None => None,
                    Some(list) => {
                        let names: Vec<&str> = list
                            .as_array()
                            .ok_or_else(|| {
                                AnalysisError::invalid("\"detectors\" must be an array")
                            })?
                            .iter()
                            .map(|v| {
                                v.as_str().ok_or_else(|| {
                                    AnalysisError::invalid("detector names must be strings")
                                })
                            })
                            .collect::<Result<_, _>>()?;
                        Some(parse_detector_names(&names)?)
                    }
                };
                Ok(AnalysisRequest::Scan { source, detectors })
            }
            "clone_check" => Ok(AnalysisRequest::CloneCheck { source }),
            other => Err(AnalysisError::invalid(format!("unknown request kind {other:?}"))),
        }
    }
}

/// Decode a batch request: a JSON array of at most [`MAX_BATCH_ITEMS`]
/// versioned request documents. The outer `Err` covers batch-level
/// faults (not JSON, not an array, too many items); each element decodes
/// independently, so one malformed item yields an `Err` in its slot
/// without failing its siblings — the transport answers it with the same
/// typed error document a single request would have received.
pub fn batch_from_json(
    text: &str,
) -> Result<Vec<Result<AnalysisRequest, AnalysisError>>, AnalysisError> {
    let value = telemetry::json::parse(text)
        .map_err(|e| AnalysisError::invalid(format!("malformed JSON request: {e}")))?;
    let items = value
        .as_array()
        .ok_or_else(|| AnalysisError::invalid("batch request must be a JSON array"))?;
    if items.len() > MAX_BATCH_ITEMS {
        return Err(AnalysisError::invalid(format!(
            "batch of {} items exceeds the limit of {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    Ok(items.iter().map(AnalysisRequest::from_value).collect())
}

/// One vulnerability finding, as reported through the facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The detector that fired.
    pub detector: QueryId,
    /// 1-based source line of the reported node.
    pub line: u32,
    /// Canonical code of the reported node.
    pub code: String,
}

impl Finding {
    /// The DASP category of the finding.
    pub fn category(&self) -> Dasp {
        self.detector.category()
    }
}

impl From<ccc::Finding> for Finding {
    fn from(f: ccc::Finding) -> Finding {
        Finding { detector: f.query, line: f.line, code: f.code }
    }
}

/// One clone match, as reported through the facade.
#[derive(Debug, Clone, PartialEq)]
pub struct CloneHit {
    /// The matched corpus document.
    pub doc: u64,
    /// Order-independent similarity (0..=100).
    pub score: f64,
}

/// A typed analysis response.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisResponse {
    /// Scan findings, sorted by (line, detector).
    Findings(Vec<Finding>),
    /// Clone matches, sorted by descending score.
    Clones(Vec<CloneHit>),
}

impl AnalysisResponse {
    /// Encode as versioned JSON. Scores use Rust's shortest-roundtrip
    /// `f64` rendering, so equal scores are byte-equal across service and
    /// batch output.
    pub fn to_json(&self) -> String {
        match self {
            AnalysisResponse::Findings(findings) => {
                let mut out =
                    format!("{{\"v\":{API_VERSION},\"kind\":\"findings\",\"findings\":[");
                for (i, f) in findings.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"detector\":\"{}\",\"category\":\"{}\",\"line\":{},\"code\":\"{}\"}}",
                        f.detector.name(),
                        f.category().name(),
                        f.line,
                        escape_json(&f.code)
                    ));
                }
                out.push_str("]}");
                out
            }
            AnalysisResponse::Clones(hits) => {
                let mut out = format!("{{\"v\":{API_VERSION},\"kind\":\"clones\",\"clones\":[");
                for (i, hit) in hits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"doc\":{},\"score\":{}}}", hit.doc, hit.score));
                }
                out.push_str("]}");
                out
            }
        }
    }

    /// Decode a versioned JSON response; an `"error"` document decodes
    /// into the transported [`AnalysisError`].
    pub fn from_json(text: &str) -> Result<AnalysisResponse, AnalysisError> {
        let value = telemetry::json::parse(text)
            .map_err(|e| AnalysisError::invalid(format!("malformed JSON response: {e}")))?;
        check_version(&value)?;
        let kind = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| AnalysisError::invalid("response is missing \"kind\""))?;
        match kind {
            "findings" => {
                let items = value
                    .get("findings")
                    .and_then(Value::as_array)
                    .ok_or_else(|| AnalysisError::invalid("missing \"findings\" array"))?;
                let findings = items
                    .iter()
                    .map(|item| {
                        let detector = item
                            .get("detector")
                            .and_then(Value::as_str)
                            .and_then(QueryId::parse_name)
                            .ok_or_else(|| AnalysisError::invalid("bad finding detector"))?;
                        let line = item
                            .get("line")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| AnalysisError::invalid("bad finding line"))?;
                        let code = item
                            .get("code")
                            .and_then(Value::as_str)
                            .ok_or_else(|| AnalysisError::invalid("bad finding code"))?;
                        Ok(Finding { detector, line: line as u32, code: code.to_string() })
                    })
                    .collect::<Result<_, AnalysisError>>()?;
                Ok(AnalysisResponse::Findings(findings))
            }
            "clones" => {
                let items = value
                    .get("clones")
                    .and_then(Value::as_array)
                    .ok_or_else(|| AnalysisError::invalid("missing \"clones\" array"))?;
                let hits = items
                    .iter()
                    .map(|item| {
                        let doc = item
                            .get("doc")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| AnalysisError::invalid("bad clone doc"))?;
                        let score = item
                            .get("score")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| AnalysisError::invalid("bad clone score"))?;
                        Ok(CloneHit { doc: doc as u64, score })
                    })
                    .collect::<Result<_, AnalysisError>>()?;
                Ok(AnalysisResponse::Clones(hits))
            }
            "error" => Err(decode_error(&value)),
            other => Err(AnalysisError::invalid(format!("unknown response kind {other:?}"))),
        }
    }
}

/// Encode an [`AnalysisError`] as a versioned JSON error document — the
/// wire form of the facade's `Err` arm.
pub fn error_to_json(error: &AnalysisError) -> String {
    let mut out = format!(
        "{{\"v\":{API_VERSION},\"kind\":\"error\",\"code\":\"{}\",\"message\":\"{}\"",
        error.code(),
        escape_json(&error.to_string())
    );
    match error {
        AnalysisError::Parse { line, col, .. } => {
            out.push_str(&format!(",\"line\":{line},\"col\":{col}"));
        }
        AnalysisError::Timeout { stage, budget_ms } => {
            out.push_str(&format!(",\"stage\":\"{}\",\"budget_ms\":{budget_ms}", escape_json(stage)));
        }
        AnalysisError::IndexVersion { found, expected } => {
            out.push_str(&format!(",\"found\":{found},\"expected\":{expected}"));
        }
        _ => {}
    }
    out.push('}');
    out
}

fn decode_error(value: &Value) -> AnalysisError {
    let message = value
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or("unknown error")
        .to_string();
    match value.get("code").and_then(Value::as_str) {
        Some("parse") => AnalysisError::Parse {
            message,
            line: value.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
            col: value.get("col").and_then(Value::as_f64).unwrap_or(0.0) as u32,
        },
        Some("graph_build") => AnalysisError::GraphBuild { message },
        Some("internal") => AnalysisError::Internal { message },
        Some("query") => AnalysisError::query(message),
        Some("timeout") => AnalysisError::timeout(
            value.get("stage").and_then(Value::as_str).unwrap_or("unknown"),
            value.get("budget_ms").and_then(Value::as_f64).unwrap_or(0.0) as u64,
        ),
        Some("index_corrupt") => AnalysisError::IndexCorrupt { message },
        Some("index_version") => AnalysisError::index_version(
            value.get("found").and_then(Value::as_f64).unwrap_or(0.0) as u32,
            value.get("expected").and_then(Value::as_f64).unwrap_or(0.0) as u32,
        ),
        Some("index_busy") => AnalysisError::IndexBusy { message },
        _ => AnalysisError::invalid(message),
    }
}

fn check_version(value: &Value) -> Result<(), AnalysisError> {
    match value.get("v").and_then(Value::as_f64) {
        Some(v) if v == API_VERSION as f64 => Ok(()),
        Some(v) => Err(AnalysisError::invalid(format!("unsupported API version {v}"))),
        None => Err(AnalysisError::invalid("missing API version \"v\"")),
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FNV-1a content hash — the cache key of parsed CPGs.
fn content_hash(source: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in source.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A small LRU cache keyed by content hash, shared (behind the engine's
/// `Mutex`) between all workers of the service. Instantiated once over
/// built CPGs (repeated scans of the same snippet skip parsing and graph
/// construction), once over whole successful scan responses (repeated
/// identical requests skip the pipeline entirely), and twice more as the
/// tiers of the corpus handle's near-duplicate front cache
/// (`crate::corpus_index`).
pub(crate) struct LruCache<V> {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, (u64, V)>,
}

/// The content-addressed CPG cache.
type CpgCache = LruCache<Arc<Cpg>>;

impl<V: Clone> LruCache<V> {
    pub(crate) fn new(capacity: usize) -> LruCache<V> {
        LruCache { capacity, stamp: 0, entries: HashMap::new() }
    }

    pub(crate) fn get(&mut self, key: u64) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|(s, value)| {
            *s = stamp;
            value.clone()
        })
    }

    pub(crate) fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self.entries.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.stamp += 1;
        self.entries.insert(key, (self.stamp, value));
    }
}

/// The warm analysis engine: a configured checker, a shared clone-corpus
/// handle and a content-addressed CPG cache behind one facade. All
/// methods take `&self`, so one engine can serve many threads through an
/// `Arc`; the corpus itself can grow live through
/// [`AnalysisEngine::corpus_handle`] (incremental insert, compaction)
/// without touching in-flight requests.
pub struct AnalysisEngine {
    config: AnalysisConfig,
    checker: Checker,
    corpus: CorpusHandle,
    cache: Mutex<CpgCache>,
    responses: Mutex<LruCache<AnalysisResponse>>,
}

impl AnalysisEngine {
    /// An engine with an empty clone corpus (scan-only use).
    pub fn new(config: AnalysisConfig) -> AnalysisEngine {
        let corpus = CorpusBuilder::new(config.ccd).empty();
        Self::assemble(config, corpus)
    }

    /// An engine with a clone corpus fingerprinted from sources. Documents
    /// that do not fingerprint (parse failure, nothing tokenizable) are
    /// skipped, mirroring `CloneDetector::insert_source`.
    pub fn with_corpus<'a, I>(config: AnalysisConfig, docs: I) -> AnalysisEngine
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        let corpus = CorpusBuilder::new(config.ccd).from_sources(docs);
        Self::assemble(config, corpus)
    }

    /// An engine over an already-fingerprinted shared corpus — the
    /// corpus is built once and shared by reference count.
    pub fn with_shared_corpus(
        config: AnalysisConfig,
        corpus: Arc<Vec<(u64, Fingerprint)>>,
    ) -> AnalysisEngine {
        let corpus = CorpusBuilder::new(config.ccd).from_shared(corpus);
        Self::assemble(config, corpus)
    }

    /// An engine over a prepared [`CorpusHandle`] — the service path: the
    /// handle carries the corpus lifetime (snapshot warm-start, shards,
    /// live inserts) and the engine layers scanning and caching over it.
    pub fn with_corpus_handle(config: AnalysisConfig, corpus: CorpusHandle) -> AnalysisEngine {
        Self::assemble(config, corpus)
    }

    fn assemble(config: AnalysisConfig, corpus: CorpusHandle) -> AnalysisEngine {
        let checker = config.checker();
        let cache = Mutex::new(CpgCache::new(config.cache_capacity));
        let responses = Mutex::new(LruCache::new(config.response_cache_capacity));
        AnalysisEngine { config, checker, corpus, cache, responses }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The configured checker (for batch callers that drive CCC directly).
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// The shared corpus handle (batch callers doing all-pairs work on the
    /// corpus without re-fingerprinting every query; the service's
    /// `/v1/index` management surface).
    pub fn corpus_handle(&self) -> &CorpusHandle {
        &self.corpus
    }

    /// Number of documents in the warm clone corpus.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Run one request to completion, applying the configured per-request
    /// timeout (if any) from this call's start.
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<AnalysisResponse, AnalysisError> {
        self.analyze_deadline(request, self.deadline_from_now())
    }

    /// The deadline a request starting now would run under, per the
    /// configured per-request timeout (`None` when unlimited). Callers
    /// that do their own pre-work before [`analyze_deadline`] (e.g. the
    /// server parsing the request body) use this to start the clock early.
    ///
    /// [`analyze_deadline`]: AnalysisEngine::analyze_deadline
    pub fn deadline_from_now(&self) -> Option<Instant> {
        self.config
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    /// Run one request under an explicit [`TraceContext`]: opens the
    /// request's root trace span (adopting the context's id, or minting
    /// one) unless this thread already has an active trace — the server
    /// ingress opens the trace earlier to also cover request parsing, and
    /// then this call is a no-op wrapper around [`analyze_deadline`].
    ///
    /// [`analyze_deadline`]: AnalysisEngine::analyze_deadline
    pub fn analyze_traced(
        &self,
        request: &AnalysisRequest,
        trace: TraceContext,
        deadline: Option<Instant>,
    ) -> Result<AnalysisResponse, AnalysisError> {
        // Resolve the id only when tracing is on, so the disabled path
        // neither allocates nor consumes ids from a seeded sequence.
        let _trace = if telemetry::trace::enabled() {
            telemetry::trace::start(trace.resolve(), "analyze")
        } else {
            telemetry::trace::TraceGuard::inert()
        };
        self.analyze_deadline(request, deadline)
    }

    /// Run one request with an explicit deadline. The deadline is checked
    /// cooperatively at stage boundaries (before graph construction,
    /// before query execution, before clone matching), so an expensive
    /// stage overruns by at most its own duration.
    pub fn analyze_deadline(
        &self,
        request: &AnalysisRequest,
        deadline: Option<Instant>,
    ) -> Result<AnalysisResponse, AnalysisError> {
        static REQUESTS: telemetry::Counter = telemetry::Counter::new("api.requests");
        static ERRORS: telemetry::Counter = telemetry::Counter::new("api.errors");
        static PANICS: telemetry::Counter = telemetry::Counter::new("api.panics_isolated");
        let _span = telemetry::span("api/analyze");
        REQUESTS.incr();
        // Panic isolation: a panic anywhere below the facade (a poisoned
        // input, an injected fault) becomes a typed internal error instead
        // of unwinding into the caller's worker thread.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match request {
                AnalysisRequest::Scan { source, detectors } => {
                    self.scan(source, detectors.as_deref(), deadline)
                }
                AnalysisRequest::CloneCheck { source } => self.clone_check(source, deadline),
            }
        }))
        .unwrap_or_else(|payload| {
            PANICS.incr();
            Err(AnalysisError::from_panic(payload, "analysis request"))
        });
        if let Err(e) = &result {
            ERRORS.incr();
            telemetry::trace::annotate("error_code", e.code());
            telemetry::trace::mark_error();
        }
        result
    }

    fn scan(
        &self,
        source: &str,
        detectors: Option<&[QueryId]>,
        deadline: Option<Instant>,
    ) -> Result<AnalysisResponse, AnalysisError> {
        static SCANS: telemetry::Counter = telemetry::Counter::new("api.scans");
        SCANS.incr();
        // The deadline check stays ahead of the response cache so a
        // zero-budget request times out identically whether or not the
        // answer is memoized.
        self.check_deadline(deadline, "parse")?;
        let key = self.response_key_for("scan", detectors, source);
        if let Some(hit) = key.and_then(|k| self.cached_response(k)) {
            return Ok(hit);
        }
        let cpg = self.cpg_for(source)?;
        self.check_deadline(deadline, "check")?;
        let outcome = match detectors {
            // A per-request subset gets a throwaway checker with the same
            // path bound; results for the engine's own subset are
            // byte-identical to the warm checker by construction.
            Some(queries) => Checker::with_queries(queries)
                .bounded(self.config.max_path)
                .check_isolated(&cpg),
            None => self.checker.check_isolated(&cpg),
        };
        // A degraded scan must not masquerade as a clean one: a partial
        // finding list would silently under-report, so any detector panic
        // fails the whole request with a typed internal error.
        if let Some((query, error)) = outcome.detector_errors.first() {
            return Err(AnalysisError::internal(format!(
                "detector {} failed: {error}",
                query.name()
            )));
        }
        let response = AnalysisResponse::Findings(
            outcome.findings.into_iter().map(Finding::from).collect(),
        );
        self.store_response(key, &response);
        Ok(response)
    }

    fn clone_check(
        &self,
        source: &str,
        deadline: Option<Instant>,
    ) -> Result<AnalysisResponse, AnalysisError> {
        static CLONE_CHECKS: telemetry::Counter = telemetry::Counter::new("api.clone_checks");
        CLONE_CHECKS.incr();
        if source.is_empty() {
            return Err(AnalysisError::invalid("clone-check source is empty"));
        }
        self.check_deadline(deadline, "fingerprint")?;
        // Clone checks memoize through the corpus handle's front cache
        // (not the response LRU): the handle invalidates it on every
        // insert, so a grown corpus is never shadowed by a stale cached
        // answer — and its fingerprint tier also catches near-duplicate
        // sources the byte-keyed response cache cannot.
        if let Some(hit) = self.corpus.cached_by_source(source) {
            return Ok(Self::clones_response(&hit));
        }
        let fingerprint = CloneDetector::try_fingerprint_source(source)?;
        if let Some(hit) = self.corpus.cached_by_fingerprint(&fingerprint) {
            return Ok(Self::clones_response(&hit));
        }
        self.check_deadline(deadline, "match")?;
        let matches = Arc::new(self.corpus.matches(&fingerprint));
        let response = Self::clones_response(&matches);
        self.corpus.store_cached(source, &fingerprint, matches);
        Ok(response)
    }

    fn clones_response(matches: &[ccd::CloneMatch]) -> AnalysisResponse {
        AnalysisResponse::Clones(
            matches.iter().map(|m| CloneHit { doc: m.doc, score: m.score }).collect(),
        )
    }

    /// Cache key of a successful response for this exact request, or
    /// `None` when response caching must not be used: capacity 0, or a
    /// fault plan is armed — chaos runs depend on every request reaching
    /// the real pipeline stages where injection points live.
    fn response_key_for(
        &self,
        kind: &str,
        detectors: Option<&[QueryId]>,
        source: &str,
    ) -> Option<u64> {
        if self.config.response_cache_capacity == 0 || faultinject::active() {
            return None;
        }
        // FNV-1a over kind, the effective detector subset and the
        // source, with NUL separators so field boundaries cannot alias.
        let mut hash = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= *byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        eat(kind.as_bytes());
        eat(&[0]);
        if let Some(detectors) = detectors {
            for d in detectors {
                eat(d.name().as_bytes());
                eat(&[0]);
            }
        }
        eat(&[0]);
        eat(source.as_bytes());
        Some(hash)
    }

    fn cached_response(&self, key: u64) -> Option<AnalysisResponse> {
        static HITS: telemetry::Counter = telemetry::Counter::new("api.response_cache_hits");
        let hit = self
            .responses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key);
        if hit.is_some() {
            HITS.incr();
            telemetry::trace::annotate("response_cache", "hit");
        }
        hit
    }

    /// Memoize a successful response (errors are never cached — they
    /// must re-run and re-fail so retries observe live state).
    fn store_response(&self, key: Option<u64>, response: &AnalysisResponse) {
        static MISSES: telemetry::Counter = telemetry::Counter::new("api.response_cache_misses");
        let Some(key) = key else { return };
        MISSES.incr();
        self.responses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, response.clone());
    }

    fn check_deadline(
        &self,
        deadline: Option<Instant>,
        stage: &str,
    ) -> Result<(), AnalysisError> {
        match deadline {
            Some(d) if Instant::now() >= d => {
                Err(AnalysisError::timeout(stage, self.config.timeout_ms.unwrap_or(0)))
            }
            _ => Ok(()),
        }
    }

    fn cpg_for(&self, source: &str) -> Result<Arc<Cpg>, AnalysisError> {
        static HITS: telemetry::Counter = telemetry::Counter::new("api.cache_hits");
        static MISSES: telemetry::Counter = telemetry::Counter::new("api.cache_misses");
        let key = content_hash(source);
        // The cache is a pure performance layer holding immutable `Arc<Cpg>`
        // values, so a lock poisoned by a panicking request stays usable —
        // recover the guard instead of propagating the poison forever.
        if let Some(cpg) = self
            .cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
        {
            HITS.incr();
            telemetry::trace::annotate("cpg_cache", "hit");
            return Ok(cpg);
        }
        MISSES.incr();
        telemetry::trace::annotate("cpg_cache", "miss");
        let cpg = Arc::new(Cpg::from_snippet(source)?);
        self.cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, Arc::clone(&cpg));
        Ok(cpg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VULNERABLE: &str = "function f(address to) public { to.send(1); }";

    #[test]
    fn scan_matches_direct_checker_output() {
        let engine = AnalysisEngine::new(AnalysisConfig::default());
        let response = engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap();
        let direct = Checker::new().check_snippet(VULNERABLE).unwrap();
        match response {
            AnalysisResponse::Findings(findings) => {
                assert_eq!(findings.len(), direct.len());
                for (api, raw) in findings.iter().zip(&direct) {
                    assert_eq!(api.detector, raw.query);
                    assert_eq!(api.line, raw.line);
                    assert_eq!(api.code, raw.code);
                }
            }
            other => panic!("expected findings, got {other:?}"),
        }
    }

    #[test]
    fn clone_check_finds_corpus_clones() {
        let corpus = [(7u64, "contract W { function t(uint a) public { msg.sender.transfer(a); } }")];
        let engine = AnalysisEngine::with_corpus(
            AnalysisConfig::default(),
            corpus.iter().map(|(id, s)| (*id, *s)),
        );
        let request = AnalysisRequest::clone_check(
            "contract U { function w(uint v) public { msg.sender.transfer(v); } }",
        );
        match engine.analyze(&request).unwrap() {
            AnalysisResponse::Clones(hits) => {
                assert_eq!(hits[0].doc, 7);
                assert_eq!(hits[0].score, 100.0);
            }
            other => panic!("expected clones, got {other:?}"),
        }
    }

    #[test]
    fn repeated_scans_hit_the_cpg_cache() {
        let engine = AnalysisEngine::new(AnalysisConfig::default());
        let a = engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap();
        let b = engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap();
        assert_eq!(a, b);
        // The cache holds exactly one entry for the repeated source.
        assert_eq!(engine.cache.lock().unwrap().entries.len(), 1);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = CpgCache::new(2);
        let cpg = Arc::new(Cpg::from_snippet("x = 1;").unwrap());
        cache.insert(1, Arc::clone(&cpg));
        cache.insert(2, Arc::clone(&cpg));
        assert!(cache.get(1).is_some()); // refresh 1 → 2 becomes LRU
        cache.insert(3, cpg);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn zero_timeout_fails_with_timeout_error() {
        let engine =
            AnalysisEngine::new(AnalysisConfig::default().with_timeout_ms(0));
        let err = engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap_err();
        assert_eq!(err.code(), "timeout");
    }

    #[test]
    fn detector_subset_restricts_findings() {
        let src = "contract C { function f(address to) public { to.send(1); } \
                   function kill() public { selfdestruct(msg.sender); } }";
        let engine = AnalysisEngine::new(
            AnalysisConfig::default()
                .with_detector_names(&["UncheckedCall"])
                .unwrap(),
        );
        match engine.analyze(&AnalysisRequest::scan(src)).unwrap() {
            AnalysisResponse::Findings(findings) => {
                assert!(!findings.is_empty());
                assert!(findings.iter().all(|f| f.detector == QueryId::UncheckedCall));
            }
            other => panic!("expected findings, got {other:?}"),
        }
    }

    #[test]
    fn unknown_detector_name_is_a_query_error() {
        let err = AnalysisConfig::default()
            .with_detector_names(&["NoSuchDetector"])
            .unwrap_err();
        assert_eq!(err.code(), "query");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn batch_decodes_items_independently() {
        let scan = AnalysisRequest::scan("contract C {}").to_json();
        let body = format!("[{scan},{{\"v\":1,\"kind\":\"nope\",\"source\":\"x\"}}]");
        let items = batch_from_json(&body).unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Ok(AnalysisRequest::Scan { .. })));
        assert_eq!(items[1].as_ref().unwrap_err().code(), "invalid_request");
    }

    #[test]
    fn batch_rejects_non_arrays_and_oversize() {
        assert_eq!(batch_from_json("{\"v\":1}").unwrap_err().code(), "invalid_request");
        assert_eq!(batch_from_json("not json").unwrap_err().code(), "invalid_request");
        let item = AnalysisRequest::scan("contract C {}").to_json();
        let huge = format!(
            "[{}]",
            std::iter::repeat_n(item.as_str(), MAX_BATCH_ITEMS + 1)
                .collect::<Vec<_>>()
                .join(",")
        );
        assert_eq!(batch_from_json(&huge).unwrap_err().code(), "invalid_request");
        assert_eq!(batch_from_json("[]").unwrap().len(), 0);
    }

    #[test]
    fn response_cache_returns_identical_bytes() {
        let engine = AnalysisEngine::new(AnalysisConfig::default());
        let request = AnalysisRequest::scan(VULNERABLE);
        let first = engine.analyze(&request).unwrap().to_json();
        assert_eq!(engine.responses.lock().unwrap().entries.len(), 1);
        let second = engine.analyze(&request).unwrap().to_json();
        assert_eq!(first, second, "memoized response must be byte-identical");
        // Still one entry: the repeat was a hit, not a second insert.
        assert_eq!(engine.responses.lock().unwrap().entries.len(), 1);
    }

    #[test]
    fn response_cache_keys_detector_subsets_apart() {
        let engine = AnalysisEngine::new(AnalysisConfig::default());
        let all = AnalysisRequest::Scan { source: VULNERABLE.into(), detectors: None };
        let subset = AnalysisRequest::Scan {
            source: VULNERABLE.into(),
            detectors: Some(vec![QueryId::AcTxOrigin]),
        };
        engine.analyze(&all).unwrap();
        match engine.analyze(&subset).unwrap() {
            AnalysisResponse::Findings(findings) => {
                assert!(findings.is_empty(), "TxOrigin must not fire on a send() snippet");
            }
            other => panic!("expected findings, got {other:?}"),
        }
        assert_eq!(engine.responses.lock().unwrap().entries.len(), 2);
    }

    #[test]
    fn response_cache_is_bypassed_while_faults_are_armed() {
        let engine = AnalysisEngine::new(AnalysisConfig::default());
        faultinject::install(Some(faultinject::FaultPlan::parse("parse:err:0.0", 1).unwrap()));
        engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap();
        assert_eq!(
            engine.responses.lock().unwrap().entries.len(),
            0,
            "armed fault plans must disable response memoization"
        );
        faultinject::install(None);
        engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap();
        assert_eq!(engine.responses.lock().unwrap().entries.len(), 1);
    }
}
