//! CCC benchmark evaluation (§4.6 of the paper): Table 1 (comparison with
//! eight analysis tools on the curated dataset) and Table 2 (the derived
//! Functions/Statements snippet datasets).

use crate::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse};
use baselines::analyzers::{all_analyzers, Analyzer};
use ccc::Dasp;
use corpus::smartbugs::{score_file, CuratedDataset};
use serde::{Deserialize, Serialize};
use stats::Confusion;
use std::collections::BTreeMap;

/// Per-tool evaluation result across categories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolResult {
    /// Tool name.
    pub tool: String,
    /// Per-category TP/FP (FN derivable from labels).
    pub per_category: BTreeMap<Dasp, Confusion>,
}

impl ToolResult {
    /// Totals across categories.
    pub fn total(&self) -> Confusion {
        let mut total = Confusion::new();
        for c in self.per_category.values() {
            total += *c;
        }
        total
    }
}

/// Evaluate CCC on a curated dataset under the paper's counting rule
/// (§4.6.2): per file, findings of the file's category count; up to the
/// file's label count as TPs, the rest as FPs; unmatched labels as FNs.
///
/// Drives the [`crate::api`] facade — the same scan path the analysis
/// service serves — so batch tables and service responses are built from
/// identical findings. Files that fail to analyze count zero findings.
pub fn evaluate_ccc(dataset: &CuratedDataset) -> ToolResult {
    let _span = telemetry::span("pipeline/eval_ccc");
    let engine = AnalysisEngine::new(AnalysisConfig::default());
    evaluate_with(dataset, "CCC", |source, category| {
        match engine.analyze(&AnalysisRequest::scan(source)) {
            Ok(AnalysisResponse::Findings(findings)) => {
                findings.iter().filter(|f| f.category() == category).count()
            }
            _ => 0,
        }
    })
}

/// Evaluate one baseline analyzer model.
pub fn evaluate_baseline(dataset: &CuratedDataset, tool: &Analyzer) -> ToolResult {
    evaluate_with(dataset, tool.name, |source, category| {
        tool.findings_of(source, category)
    })
}

/// Evaluate all eight baselines.
pub fn evaluate_all_baselines(dataset: &CuratedDataset) -> Vec<ToolResult> {
    all_analyzers()
        .into_iter()
        .map(|tool| evaluate_baseline(dataset, tool))
        .collect()
}

fn evaluate_with(
    dataset: &CuratedDataset,
    name: &str,
    findings_of: impl Fn(&str, Dasp) -> usize,
) -> ToolResult {
    let mut per_category: BTreeMap<Dasp, Confusion> = BTreeMap::new();
    for file in &dataset.files {
        let source = file.source();
        let labels = file.labels();
        let reported = findings_of(&source, file.category);
        let (tp, fp) = score_file(reported, labels);
        let entry = per_category.entry(file.category).or_default();
        entry.tp += tp;
        entry.fp += fp;
        entry.fn_ += labels - tp;
    }
    ToolResult { tool: name.to_string(), per_category }
}

/// Table 2: CCC on the Original / Functions / Statements datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnippetLevelResult {
    /// Dataset name.
    pub dataset: String,
    /// Aggregate confusion.
    pub confusion: Confusion,
}

/// Evaluate CCC on the three dataset variants (§4.6.3).
pub fn evaluate_snippet_levels(
    original: &CuratedDataset,
    functions: &CuratedDataset,
    statements: &CuratedDataset,
) -> Vec<SnippetLevelResult> {
    [
        ("Original", original),
        ("Functions", functions),
        ("Statements", statements),
    ]
    .into_iter()
    .map(|(name, ds)| SnippetLevelResult {
        dataset: name.to_string(),
        confusion: evaluate_ccc(ds).total(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::smartbugs::{derive_functions, derive_statements, smartbugs_curated};

    fn dataset() -> CuratedDataset {
        smartbugs_curated(2024)
    }

    #[test]
    fn ccc_totals_have_table_1_shape() {
        let result = evaluate_ccc(&dataset());
        let total = result.total();
        // Paper: CCC 158 TP / 13 FP / 46 FN → precision 92.3%, recall
        // 77.4%. The shape requirement: precision ≥ 85%, recall 65–90%.
        assert!(total.precision() > 0.85, "precision = {}", total.precision());
        assert!(
            (0.6..0.92).contains(&total.recall()),
            "recall = {} ({total:?})",
            total.recall()
        );
        // CCC reports findings in all nine categories (unique among tools).
        let covered = result.per_category.values().filter(|c| c.tp > 0).count();
        assert_eq!(covered, 9, "{:?}", result.per_category);
    }

    #[test]
    fn ccc_beats_every_baseline_on_recall() {
        let ds = dataset();
        let ccc_total = evaluate_ccc(&ds).total();
        for baseline in evaluate_all_baselines(&ds) {
            let total = baseline.total();
            assert!(
                ccc_total.recall() > total.recall(),
                "CCC recall {} must beat {} ({})",
                ccc_total.recall(),
                baseline.tool,
                total.recall()
            );
        }
    }

    #[test]
    fn baselines_cover_at_most_seven_categories() {
        // Paper: other tools cover at most six categories with TPs; our
        // models must stay below CCC's nine.
        for baseline in evaluate_all_baselines(&dataset()) {
            let covered = baseline.per_category.values().filter(|c| c.tp > 0).count();
            assert!(
                covered <= 7,
                "{} covers {covered} categories",
                baseline.tool
            );
        }
    }

    #[test]
    fn smartcheck_is_precise_but_shallow() {
        let ds = dataset();
        let results = evaluate_all_baselines(&ds);
        let smartcheck = results.iter().find(|r| r.tool == "SmartCheck").unwrap();
        let total = smartcheck.total();
        assert!(total.precision() > 0.8, "{}", total.precision());
        assert!(total.recall() < 0.5, "{}", total.recall());
    }

    #[test]
    fn snippet_levels_trade_recall_for_precision() {
        let ds = dataset();
        let functions = derive_functions(&ds);
        let statements = derive_statements(&ds);
        let rows = evaluate_snippet_levels(&ds, &functions, &statements);
        // Table 2: recall decreases Original → Functions → Statements,
        // precision does not decrease.
        assert!(rows[0].confusion.recall() >= rows[1].confusion.recall());
        assert!(rows[1].confusion.recall() >= rows[2].confusion.recall());
        assert!(rows[2].confusion.precision() >= rows[0].confusion.precision() - 0.03);
    }
}
