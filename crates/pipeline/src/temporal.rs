//! Temporal snippet categorization and the popularity correlation
//! analysis (§6.2 of the paper, Table 5).
//!
//! Snippets are grouped by the temporal relation between their posting and
//! the deployment of contracts containing them:
//!
//! * **All Snippets** — every matched contract counts, before or after.
//! * **Disseminator** — snippets with at least one contract deployed
//!   *after* posting; only those later contracts count.
//! * **Source** — disseminator snippets with *no* earlier containing
//!   contract: the ones most likely to have caused SODD.
//!
//! For each group, Spearman's ρ between post views ν and the number of
//! unique containing contract codes nr is computed.

use crate::mapping::CloneMapping;
use corpus::contracts::ContractCorpus;
use corpus::qa::QaCorpus;
use serde::{Deserialize, Serialize};
use stats::spearman::{spearman, SpearmanResult};
use std::collections::{HashMap, HashSet};

/// Temporal category of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalGroup {
    /// All matched contracts.
    All,
    /// Snippets with later containing contracts; later contracts counted.
    Disseminator,
    /// Disseminators with no earlier containing contract.
    Source,
}

impl TemporalGroup {
    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            TemporalGroup::All => "All Snippets",
            TemporalGroup::Disseminator => "Disseminator",
            TemporalGroup::Source => "Source",
        }
    }
}

/// Per-snippet adoption record.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Adoption {
    /// Snippet id.
    pub snippet: u64,
    /// Views ν of the owning post.
    pub views: u64,
    /// Unique containing contract codes, any time.
    pub nr_all: usize,
    /// Unique containing contract codes deployed after posting.
    pub nr_after: usize,
    /// Unique containing contract codes deployed before posting.
    pub nr_before: usize,
}

impl Adoption {
    /// Whether the snippet is a disseminator.
    pub fn is_disseminator(&self) -> bool {
        self.nr_after > 0
    }

    /// Whether the snippet is a source snippet.
    pub fn is_source(&self) -> bool {
        self.nr_after > 0 && self.nr_before == 0
    }
}

/// Compute adoption records for every snippet with at least one match.
pub fn adoptions(
    qa: &QaCorpus,
    contracts: &ContractCorpus,
    mapping: &CloneMapping,
    dedup: &HashMap<u64, u64>,
) -> Vec<Adoption> {
    let day_of: HashMap<u64, u32> =
        contracts.contracts.iter().map(|c| (c.id, c.created_day)).collect();
    let mut result = Vec::new();
    for (snippet_id, matched) in &mapping.matches {
        if matched.is_empty() {
            continue;
        }
        let snippet = &qa.snippets[*snippet_id as usize];
        let post = qa.post_of(snippet);
        let mut all: HashSet<u64> = HashSet::new();
        let mut after: HashSet<u64> = HashSet::new();
        let mut before: HashSet<u64> = HashSet::new();
        for contract in matched {
            let canonical = dedup.get(contract).copied().unwrap_or(*contract);
            all.insert(canonical);
            if day_of[contract] >= post.created_day {
                after.insert(canonical);
            } else {
                before.insert(canonical);
            }
        }
        result.push(Adoption {
            snippet: *snippet_id,
            views: post.views,
            nr_all: all.len(),
            nr_after: after.len(),
            nr_before: before.len(),
        });
    }
    result.sort_by_key(|a| a.snippet);
    result
}

/// One Table 5 row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// Temporal category.
    pub group: TemporalGroup,
    /// Sample size.
    pub n: usize,
    /// Spearman result (ρ and p-value); `None` for degenerate samples.
    pub result: Option<SpearmanResult>,
}

/// Compute Table 5: Spearman ρ of ν vs nr for the three groups.
pub fn correlations(adoptions: &[Adoption]) -> Vec<CorrelationRow> {
    let rows = [
        (
            TemporalGroup::All,
            adoptions
                .iter()
                .filter(|a| a.nr_all > 0)
                .map(|a| (a.views as f64, a.nr_all as f64))
                .collect::<Vec<_>>(),
        ),
        (
            TemporalGroup::Disseminator,
            adoptions
                .iter()
                .filter(|a| a.is_disseminator())
                .map(|a| (a.views as f64, a.nr_after as f64))
                .collect(),
        ),
        (
            TemporalGroup::Source,
            adoptions
                .iter()
                .filter(|a| a.is_source())
                .map(|a| (a.views as f64, a.nr_after as f64))
                .collect(),
        ),
    ];
    rows.into_iter()
        .map(|(group, pairs)| {
            let views: Vec<f64> = pairs.iter().map(|(v, _)| *v).collect();
            let nr: Vec<f64> = pairs.iter().map(|(_, n)| *n).collect();
            CorrelationRow { group, n: pairs.len(), result: spearman(&views, &nr) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funnel::run_funnel;
    use crate::mapping::{dedup_contracts, map_snippets};
    use ccd::CcdParams;
    use corpus::contracts::{generate_contracts, SanctuaryConfig};
    use corpus::qa::{generate_qa, QaConfig};

    fn setup() -> Vec<Adoption> {
        let qa = generate_qa(QaConfig { seed: 31, scale: 0.05 });
        let contracts = generate_contracts(
            SanctuaryConfig { seed: 32, scale: 0.01, ..SanctuaryConfig::default() },
            &qa,
        );
        let funnel = run_funnel(&qa);
        let mapping = map_snippets(&funnel.unique, &contracts, CcdParams::conservative());
        let dedup = dedup_contracts(&contracts);
        adoptions(&qa, &contracts, &mapping, &dedup)
    }

    #[test]
    fn group_membership_is_consistent() {
        let ads = setup();
        assert!(!ads.is_empty());
        for a in &ads {
            assert_eq!(a.nr_all > 0, a.nr_after + a.nr_before > 0);
            if a.is_source() {
                assert!(a.is_disseminator());
            }
        }
    }

    #[test]
    fn groups_are_nested() {
        let ads = setup();
        let all = ads.len();
        let diss = ads.iter().filter(|a| a.is_disseminator()).count();
        let source = ads.iter().filter(|a| a.is_source()).count();
        assert!(all >= diss);
        assert!(diss >= source);
        assert!(source > 0);
    }

    #[test]
    fn correlation_rows_have_three_groups() {
        let ads = setup();
        let rows = correlations(&ads);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].group, TemporalGroup::All);
        assert_eq!(rows[2].group, TemporalGroup::Source);
    }

    #[test]
    fn source_correlation_is_strongest() {
        // The Table 5 ordering: ρ(All) < ρ(Disseminator) < ρ(Source), all
        // positive. This is the paper's central §6.2 observation.
        let ads = setup();
        let rows = correlations(&ads);
        let rho = |i: usize| rows[i].result.map(|r| r.rho).unwrap_or(0.0);
        assert!(rho(2) > 0.05, "source rho = {}", rho(2));
        assert!(
            rho(2) >= rho(0) - 0.05,
            "source {} should exceed all {}",
            rho(2),
            rho(0)
        );
    }
}
