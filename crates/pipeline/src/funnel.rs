//! The data-collection funnel (§6.1 of the paper, Table 4):
//! posts → snippets → Solidity (keyword filter) → parsable (snippet
//! grammar) → unique (deduplication).

use corpus::keywords::looks_like_solidity;
use corpus::qa::{QaCorpus, QaSnippet, Site};
use serde::{Deserialize, Serialize};
use solidity::SnippetLevel;
use std::collections::HashMap;

/// One Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelRow {
    /// Q&A site, `None` for the Total row.
    pub site: Option<Site>,
    /// Posts crawled.
    pub posts: usize,
    /// Snippets extracted.
    pub snippets: usize,
    /// Snippets passing the Solidity keyword filter.
    pub solidity: usize,
    /// Snippets parsable with the modified (snippet) grammar.
    pub parsable: usize,
    /// Unique snippets after deduplication.
    pub unique: usize,
}

/// A snippet that survived the funnel, ready for the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniqueSnippet {
    /// Original snippet id (the first occurrence of the text).
    pub id: u64,
    /// Owning post id.
    pub post: u64,
    /// Snippet text.
    pub text: String,
    /// Hierarchy level.
    pub level: SnippetLevel,
}

/// Funnel statistics beyond the Table 4 rows (the §6.1 prose numbers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunnelStats {
    /// Table rows: one per site plus the total.
    pub rows: Vec<FunnelRow>,
    /// Snippets parsable with the *standard* grammar (the paper parses
    /// 3,133 more with the modified one).
    pub standard_parsable: usize,
    /// Level composition of parsed snippets (contract/function/statement).
    pub levels: HashMap<SnippetLevel, usize>,
    /// Lines-of-code statistics over parsed snippets: (min, median, mean,
    /// max).
    pub loc: (usize, usize, f64, usize),
}

/// The funnel output: statistics plus the surviving snippet set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunnelOutput {
    /// Table 4 statistics.
    pub stats: FunnelStats,
    /// The unique, parsable Solidity snippets.
    pub unique: Vec<UniqueSnippet>,
}

/// Run the funnel over a Q&A corpus.
pub fn run_funnel(qa: &QaCorpus) -> FunnelOutput {
    let _span = telemetry::span("pipeline/funnel");
    let mut rows = Vec::new();
    let mut unique: Vec<UniqueSnippet> = Vec::new();
    let mut seen_texts: HashMap<String, u64> = HashMap::new();
    let mut standard_parsable = 0usize;
    let mut levels: HashMap<SnippetLevel, usize> = HashMap::new();
    let mut locs: Vec<usize> = Vec::new();

    let mut total = FunnelRow {
        site: None,
        posts: 0,
        snippets: 0,
        solidity: 0,
        parsable: 0,
        unique: 0,
    };

    for site in [Site::StackOverflow, Site::EthereumStackExchange] {
        let mut row = FunnelRow {
            site: Some(site),
            posts: qa.posts_of(site).count(),
            snippets: 0,
            solidity: 0,
            parsable: 0,
            unique: 0,
        };
        for snippet in qa.snippets_of(site) {
            row.snippets += 1;
            if !looks_like_solidity(&snippet.text) {
                continue;
            }
            row.solidity += 1;
            let Ok(unit) = solidity::parse_snippet(&snippet.text) else {
                continue;
            };
            row.parsable += 1;
            if solidity::parse_source(&snippet.text).is_ok() {
                standard_parsable += 1;
            }
            let level = unit.snippet_level();
            *levels.entry(level).or_insert(0) += 1;
            locs.push(snippet.text.lines().count());
            if seen_texts.contains_key(&snippet.text) {
                continue;
            }
            seen_texts.insert(snippet.text.clone(), snippet.id);
            row.unique += 1;
            unique.push(UniqueSnippet {
                id: snippet.id,
                post: snippet.post,
                text: snippet.text.clone(),
                level,
            });
        }
        total.posts += row.posts;
        total.snippets += row.snippets;
        total.solidity += row.solidity;
        total.parsable += row.parsable;
        total.unique += row.unique;
        rows.push(row);
    }
    rows.push(total);

    locs.sort_unstable();
    let loc = if locs.is_empty() {
        (0, 0, 0.0, 0)
    } else {
        (
            locs[0],
            locs[locs.len() / 2],
            locs.iter().sum::<usize>() as f64 / locs.len() as f64,
            *locs.last().unwrap(),
        )
    };

    FunnelOutput {
        stats: FunnelStats { rows, standard_parsable, levels, loc },
        unique,
    }
}

/// Look up a snippet in the original corpus.
pub fn snippet_of(qa: &QaCorpus, id: u64) -> &QaSnippet {
    &qa.snippets[id as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::qa::{generate_qa, QaConfig};

    fn output() -> FunnelOutput {
        run_funnel(&generate_qa(QaConfig { seed: 42, scale: 0.05 }))
    }

    #[test]
    fn funnel_is_monotonically_decreasing() {
        let out = output();
        for row in &out.stats.rows {
            assert!(row.snippets >= row.solidity);
            assert!(row.solidity >= row.parsable);
            assert!(row.parsable >= row.unique);
        }
    }

    #[test]
    fn total_row_sums_site_rows() {
        let out = output();
        let rows = &out.stats.rows;
        assert_eq!(rows.len(), 3);
        let total = rows[2];
        assert_eq!(total.snippets, rows[0].snippets + rows[1].snippets);
        assert_eq!(total.unique, rows[0].unique + rows[1].unique);
    }

    #[test]
    fn proportions_match_table_4_shape() {
        let out = output();
        let total = out.stats.rows[2];
        // Paper: 25,725 / 39,434 ≈ 65% keyword-pass; 19,870 / 25,725 ≈ 77%
        // parsable; 18,660 / 19,870 ≈ 94% unique.
        let kw = total.solidity as f64 / total.snippets as f64;
        let parse = total.parsable as f64 / total.solidity as f64;
        let uniq = total.unique as f64 / total.parsable as f64;
        assert!((0.5..0.8).contains(&kw), "keyword rate {kw}");
        assert!((0.6..0.95).contains(&parse), "parse rate {parse}");
        assert!((0.85..1.0).contains(&uniq), "unique rate {uniq}");
    }

    #[test]
    fn snippet_grammar_parses_more_than_standard() {
        let out = output();
        let total = out.stats.rows[2];
        assert!(
            out.stats.standard_parsable < total.parsable,
            "modified grammar must parse strictly more: {} vs {}",
            out.stats.standard_parsable,
            total.parsable
        );
    }

    #[test]
    fn level_composition_is_contract_heavy() {
        let out = output();
        let contract = *out.stats.levels.get(&SnippetLevel::Contract).unwrap_or(&0);
        let function = *out.stats.levels.get(&SnippetLevel::Function).unwrap_or(&0);
        let statement = *out.stats.levels.get(&SnippetLevel::Statement).unwrap_or(&0);
        // Paper: 54.2% / 38% / 7.8%.
        assert!(contract > function);
        assert!(function > statement);
    }

    #[test]
    fn unique_snippets_have_no_duplicate_texts() {
        let out = output();
        let mut texts: Vec<&String> = out.unique.iter().map(|s| &s.text).collect();
        let before = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(before, texts.len());
    }
}
