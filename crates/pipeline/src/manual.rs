//! The manual-validation audit (§6.5 of the paper, Table 8).
//!
//! The paper manually reviews 100 contracts flagged vulnerable, sampled
//! evenly across DASP categories, checking (1) whether the snippet was
//! truly vulnerable, (2) whether the contract is truly a clone of it, and
//! (3) whether the contract truly contains the vulnerability. With
//! generator ground truth available, the "manual" review becomes an exact
//! oracle audit over the same stratified sample design.

use crate::study::{StudyResult, ValidationRecord};
use ccc::Dasp;
use corpus::contracts::ContractCorpus;
use corpus::qa::{QaCorpus, SnippetTruth};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Oracle verdict on one sampled pairing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuditVerdict {
    /// Snippet truly vulnerable (generator seeded a vulnerability)?
    pub snippet_tp: bool,
    /// Contract truly contains a clone of the snippet (intentional
    /// embedding of the same or a duplicate-text snippet)?
    pub true_clone: bool,
    /// Contract truly vulnerable (unmitigated embedding, no 0.8 rescue)?
    pub contract_tp: bool,
}

/// Table 8: the 2×2×2 outcome grid.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditGrid {
    /// (true_clone, snippet_tp, contract_tp) → count.
    pub cells: BTreeMap<(bool, bool, bool), usize>,
    /// Sample size.
    pub sample_size: usize,
}

impl AuditGrid {
    /// Count of one cell.
    pub fn cell(&self, true_clone: bool, snippet_tp: bool, contract_tp: bool) -> usize {
        self.cells
            .get(&(true_clone, snippet_tp, contract_tp))
            .copied()
            .unwrap_or(0)
    }

    /// The fully-confirmed cell (true clone, vulnerable snippet,
    /// vulnerable contract) — the paper's 48/100.
    pub fn fully_confirmed(&self) -> usize {
        self.cell(true, true, true)
    }
}

/// Stratified sample of flagged contracts: up to `per_category` per DASP
/// category (evenly sampled as in §6.5), unique contracts and snippets
/// where possible.
pub fn stratified_sample(
    result: &StudyResult,
    per_category: usize,
    seed: u64,
) -> Vec<&ValidationRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample: Vec<&ValidationRecord> = Vec::new();
    let mut used_contracts = std::collections::HashSet::new();
    let mut used_snippets = std::collections::HashSet::new();
    for category in Dasp::ALL {
        let mut pool: Vec<&ValidationRecord> = result
            .records
            .iter()
            .filter(|r| r.outcome.is_vulnerable())
            .filter(|r| r.confirmed.iter().any(|q| q.category() == *category))
            .collect();
        pool.shuffle(&mut rng);
        let mut taken = 0;
        for record in pool {
            if taken >= per_category {
                break;
            }
            if used_contracts.contains(&record.contract)
                || used_snippets.contains(&record.snippet)
            {
                continue;
            }
            used_contracts.insert(record.contract);
            used_snippets.insert(record.snippet);
            sample.push(record);
            taken += 1;
        }
    }
    sample
}

/// Audit one record against generator ground truth.
pub fn audit_record(
    record: &ValidationRecord,
    qa: &QaCorpus,
    contracts: &ContractCorpus,
) -> AuditVerdict {
    let snippet = &qa.snippets[record.snippet as usize];
    let snippet_tp = snippet.seeded_vuln().is_some();

    // The contract is a true clone when some embedding refers to this
    // snippet, to one with identical text (duplicates), or to one of the
    // same template family — family instances are intentional Type-II
    // clones of each other and any reviewer judges them "sufficiently
    // similar".
    let contract = contracts
        .contracts
        .iter()
        .find(|c| c.id == record.contract)
        .expect("record refers to existing contract");
    let family_of = |id: u64| match &qa.snippets[id as usize].truth {
        SnippetTruth::Solidity { family, .. } => Some(family.clone()),
        _ => None,
    };
    let snippet_family = family_of(record.snippet);
    let embedding = contract.embedded.iter().find(|e| {
        e.snippet == record.snippet
            || qa.snippets[e.snippet as usize].text == snippet.text
            || (snippet_family.is_some() && family_of(e.snippet) == snippet_family)
    });
    let true_clone = embedding.is_some();

    // The contract is truly vulnerable when it embeds an unmitigated
    // vulnerable snippet — except arithmetic rescued by a 0.8 pragma.
    let contract_tp = embedding
        .map(|e| {
            let embedded = &qa.snippets[e.snippet as usize];
            let vuln = embedded.seeded_vuln();
            let arithmetic_rescued = vuln
                .map(|q| q.category() == Dasp::Arithmetic && contract.compiler.checked_arithmetic())
                .unwrap_or(false);
            vuln.is_some() && !e.mitigated && !arithmetic_rescued
        })
        .unwrap_or(false);

    AuditVerdict { snippet_tp, true_clone, contract_tp }
}

/// Run the full audit: stratified sample, oracle verdicts, grid.
pub fn run_audit(
    result: &StudyResult,
    qa: &QaCorpus,
    contracts: &ContractCorpus,
    per_category: usize,
    seed: u64,
) -> AuditGrid {
    let sample = stratified_sample(result, per_category, seed);
    let mut grid = AuditGrid { sample_size: sample.len(), ..AuditGrid::default() };
    for record in sample {
        let v = audit_record(record, qa, contracts);
        *grid
            .cells
            .entry((v.true_clone, v.snippet_tp, v.contract_tp))
            .or_insert(0) += 1;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funnel::run_funnel;
    use crate::study::{run_study, StudyConfig};
    use corpus::contracts::{generate_contracts, SanctuaryConfig};
    use corpus::qa::{generate_qa, QaConfig};

    fn setup() -> (QaCorpus, ContractCorpus, StudyResult) {
        let qa = generate_qa(QaConfig { seed: 51, scale: 0.06 });
        let contracts = generate_contracts(
            SanctuaryConfig { seed: 52, scale: 0.015, ..SanctuaryConfig::default() },
            &qa,
        );
        let funnel = run_funnel(&qa);
        let result = run_study(&qa, &contracts, &funnel.unique, StudyConfig::default());
        (qa, contracts, result)
    }

    #[test]
    fn sample_is_stratified_and_bounded() {
        let (_qa, _contracts, result) = setup();
        let sample = stratified_sample(&result, 10, 7);
        assert!(!sample.is_empty());
        assert!(sample.len() <= 10 * Dasp::ALL.len());
        // No duplicate contracts within the sample.
        let contracts: std::collections::HashSet<u64> =
            sample.iter().map(|r| r.contract).collect();
        assert_eq!(contracts.len(), sample.len());
    }

    #[test]
    fn grid_counts_sum_to_sample_size() {
        let (qa, contracts, result) = setup();
        let grid = run_audit(&result, &qa, &contracts, 10, 7);
        let total: usize = grid.cells.values().sum();
        assert_eq!(total, grid.sample_size);
    }

    #[test]
    fn majority_of_flagged_pairings_fully_confirm() {
        // The Table 8 shape: the (TP, TP, true-clone) cell dominates.
        let (qa, contracts, result) = setup();
        let grid = run_audit(&result, &qa, &contracts, 12, 7);
        assert!(grid.sample_size >= 15, "sample too small: {}", grid.sample_size);
        let confirmed = grid.fully_confirmed() as f64 / grid.sample_size as f64;
        assert!(confirmed > 0.3, "confirmed rate = {confirmed} ({grid:?})");
    }

    #[test]
    fn audit_is_deterministic() {
        let (qa, contracts, result) = setup();
        let a = run_audit(&result, &qa, &contracts, 10, 7);
        let b = run_audit(&result, &qa, &contracts, 10, 7);
        assert_eq!(a.cells, b.cells);
    }
}
