//! Render a [`telemetry::Snapshot`] as plain-text tables.
//!
//! The human-readable counterpart of the JSON run report: the `tables`
//! binary appends these tables to its output when `--telemetry` is on
//! (the JSON goes to `BENCH_run.json`, see `telemetry::Snapshot::to_json`).

use crate::report::Table;
use telemetry::Snapshot;

/// Render the span, counter, gauge and histogram tables of a snapshot.
/// Sections with no entries are omitted; an entirely empty snapshot
/// renders a single explanatory line instead.
pub fn render(snapshot: &Snapshot) -> String {
    if snapshot.is_empty() {
        return "== Telemetry ==\n(no telemetry recorded; set TELEMETRY=1 or pass --telemetry)\n"
            .to_string();
    }
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        let mut table = Table::new("Telemetry: spans").header(&[
            "path",
            "count",
            "total ms",
            "mean µs",
        ]);
        for span in &snapshot.spans {
            table.row(vec![
                span.path.clone(),
                span.count.to_string(),
                format!("{:.3}", span.total_ns as f64 / 1e6),
                format!("{:.1}", span.mean_ns() / 1e3),
            ]);
        }
        out.push_str(&table.render());
    }
    if !snapshot.counters.is_empty() {
        let mut table = Table::new("Telemetry: counters").header(&["name", "value"]);
        for (name, value) in &snapshot.counters {
            table.row(vec![name.clone(), value.to_string()]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&table.render());
    }
    if !snapshot.gauges.is_empty() {
        let mut table = Table::new("Telemetry: gauges").header(&["name", "value"]);
        for (name, value) in &snapshot.gauges {
            table.row(vec![name.clone(), value.to_string()]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&table.render());
    }
    if !snapshot.histograms.is_empty() {
        let mut table = Table::new("Telemetry: histograms").header(&[
            "name",
            "count",
            "sum",
            "mean",
            "p50≤",
            "max≤",
        ]);
        for hist in &snapshot.histograms {
            let mean = if hist.count == 0 {
                0.0
            } else {
                hist.sum as f64 / hist.count as f64
            };
            table.row(vec![
                hist.name.clone(),
                hist.count.to_string(),
                hist.sum.to_string(),
                format!("{mean:.1}"),
                bucket_bound(hist.layout, &hist.buckets, hist.count.div_ceil(2)),
                bucket_bound(hist.layout, &hist.buckets, hist.count),
            ]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&table.render());
    }
    out
}

/// Inclusive upper bound of the bucket holding the `rank`-th observation
/// (1-based), under the histogram's own bucket layout.
fn bucket_bound(layout: telemetry::BucketLayout, buckets: &[u64], rank: u64) -> String {
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank.max(1) {
            return match layout.upper_bound(i) {
                Some(upper) => upper.to_string(),
                None => "∞".to_string(),
            };
        }
    }
    "∞".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{HistogramStat, SpanStat};

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![SpanStat {
                path: "ccc/check/query/Reentrancy".into(),
                count: 4,
                total_ns: 8_000_000,
            }],
            counters: vec![("ccd.fingerprints".into(), 12)],
            gauges: vec![("par.workers".into(), 8)],
            histograms: vec![HistogramStat {
                name: "par.tasks_per_worker".into(),
                count: 2,
                sum: 10,
                layout: telemetry::BucketLayout::Pow2,
                buckets: {
                    let mut b = vec![0u64; 32];
                    b[3] = 2; // two observations in [4, 7]
                    b
                },
            }],
        }
    }

    #[test]
    fn renders_all_sections() {
        let text = render(&sample());
        assert!(text.contains("== Telemetry: spans =="));
        assert!(text.contains("ccc/check/query/Reentrancy"));
        assert!(text.contains("== Telemetry: counters =="));
        assert!(text.contains("ccd.fingerprints"));
        assert!(text.contains("== Telemetry: gauges =="));
        assert!(text.contains("== Telemetry: histograms =="));
        assert!(text.contains("par.tasks_per_worker"));
    }

    #[test]
    fn histogram_percentiles_use_bucket_bounds() {
        let text = render(&sample());
        // Both observations sit in bucket 3 → p50 and max report bound 7.
        let row = text.lines().find(|l| l.contains("par.tasks_per_worker")).unwrap();
        assert!(row.contains('7'), "row: {row}");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render(&Snapshot::default());
        assert!(text.contains("no telemetry recorded"));
    }
}
