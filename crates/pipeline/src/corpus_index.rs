//! The corpus lifecycle behind one handle: build, share, warm-start,
//! insert, compact.
//!
//! Before this module, every consumer wired the clone corpus together by
//! hand from the constructor sprawl (`NgramIndex::from_documents`,
//! `CloneDetector::from_shared`, per-bin fingerprint loops). A
//! [`CorpusBuilder`] now yields one [`CorpusHandle`] covering all three
//! lifetimes:
//!
//! * **in-memory** — fingerprinted from sources (batch bins, tests),
//! * **snapshot-backed** — assembled from a committed `index-store`
//!   generation without re-fingerprinting (the service's warm start),
//! * **snapshot + deltas** — a loaded snapshot taking live inserts on the
//!   `Arc::make_mut` copy-on-write path until the next compaction.
//!
//! The handle shards its documents by id hash across independent
//! [`CloneDetector`]s (candidate retrieval for a query runs the shards in
//! parallel), tracks the committed snapshot generation vs. uncommitted
//! delta count, and fronts the match path with a two-tier near-duplicate
//! cache (content hash, then fuzzy-fingerprint hash) — most real traffic
//! is the same snippet pasted again with cosmetic edits.

use crate::api::LruCache;
use ccd::{CcdParams, CloneDetector, CloneMatch, Fingerprint};
use index_store::wal::{self, WalWriter};
use index_store::{FsyncPolicy, SnapshotStore, WalStats};
use ngram_index::{DocId, NgramIndex};
use solidity::AnalysisError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default capacity of each front-cache tier.
pub const DEFAULT_FRONT_CACHE_CAPACITY: usize = 2048;

/// Deterministic shard routing: multiplicative hash of the doc id. Every
/// layer (build, insert, snapshot re-partition) must agree on this.
fn shard_of(doc: DocId, shards: usize) -> usize {
    (doc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % shards
}

/// Builder for a [`CorpusHandle`] — the one entry point replacing the
/// `from_documents`/`from_shared` constructor sprawl.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    params: CcdParams,
    shards: usize,
    snapshot_dir: Option<PathBuf>,
    front_cache_capacity: usize,
    wal_fsync: FsyncPolicy,
}

impl CorpusBuilder {
    /// A builder with the given CCD parameters, one shard, no snapshot
    /// directory, the default front-cache capacity and the default
    /// (`batch:5`) WAL fsync policy.
    pub fn new(params: CcdParams) -> CorpusBuilder {
        CorpusBuilder {
            params,
            shards: 1,
            snapshot_dir: None,
            front_cache_capacity: DEFAULT_FRONT_CACHE_CAPACITY,
            wal_fsync: FsyncPolicy::default(),
        }
    }

    /// Shard the corpus `shards` ways (clamped to ≥ 1). Candidate
    /// retrieval fans out across shards in parallel; results are merged
    /// into one canonical order, so the shard count never changes what a
    /// query returns.
    pub fn shards(mut self, shards: usize) -> CorpusBuilder {
        self.shards = shards.max(1);
        self
    }

    /// Attach a snapshot directory (enables [`CorpusHandle::compact`] and
    /// [`CorpusBuilder::load_snapshot`]).
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> CorpusBuilder {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Capacity of each near-duplicate front-cache tier (0 disables the
    /// front cache).
    pub fn front_cache_capacity(mut self, capacity: usize) -> CorpusBuilder {
        self.front_cache_capacity = capacity;
        self
    }

    /// When write-ahead-log appends are fsynced (only meaningful with a
    /// snapshot directory — the WAL lives next to the snapshots).
    pub fn wal_fsync(mut self, policy: FsyncPolicy) -> CorpusBuilder {
        self.wal_fsync = policy;
        self
    }

    /// An empty corpus.
    pub fn empty(self) -> CorpusHandle {
        let params = self.params;
        self.assemble(CloneDetector::new(params), 0)
    }

    /// Fingerprint `(id, source)` documents and build the corpus.
    /// Documents that do not fingerprint (parse failure, nothing
    /// tokenizable) are skipped, as everywhere else in the pipeline.
    pub fn from_sources<'a, I>(self, docs: I) -> CorpusHandle
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        let fingerprints = Self::fingerprint_sources(docs);
        self.from_fingerprints(fingerprints)
    }

    /// Build the corpus from already-computed fingerprints.
    pub fn from_fingerprints(self, docs: Vec<(DocId, Fingerprint)>) -> CorpusHandle {
        self.from_shared(Arc::new(docs))
    }

    /// Build the corpus over a shared fingerprint vector (reference-count
    /// sharing with other consumers of the same corpus).
    pub fn from_shared(self, corpus: Arc<Vec<(DocId, Fingerprint)>>) -> CorpusHandle {
        let params = self.params;
        let detector = CloneDetector::from_shared(params, corpus);
        self.assemble(detector, 0)
    }

    /// Warm-start from the snapshot directory's committed generation and
    /// replay the write-ahead log tail on top of it, so inserts that were
    /// acknowledged after the last compaction come back as deltas.
    /// `Ok(None)` when the directory has no committed snapshot yet (fresh
    /// deploy — build from sources and [`CorpusHandle::compact`] instead);
    /// typed `index_corrupt`/`index_version` errors when it has one that
    /// cannot be loaded.
    pub fn load_snapshot(self) -> Result<Option<CorpusHandle>, AnalysisError> {
        let dir = self
            .snapshot_dir
            .clone()
            .ok_or_else(|| AnalysisError::invalid("no snapshot directory configured"))?;
        let store = SnapshotStore::open(dir)?;
        let Some(snapshot) = store.load_current()? else {
            return Ok(None);
        };
        let generation = snapshot.generation;
        let mut detector = snapshot.into_detector(self.params)?;

        // Replay the write-ahead log tail on top of the snapshot.
        // Segments before the committed generation are fully contained in
        // it; segments after it were started by a compaction that died
        // before its commit. Replay the current generation's segment
        // first, then the orphans, deduplicating by doc id (a record can
        // legitimately live in both the snapshot and a post-rotation
        // segment). Torn or corrupt tails are truncated with a warning,
        // never an error.
        store.remove_stale_wals(generation);
        let mut primary: Option<wal::Replay> = None;
        let mut orphans: Vec<wal::Replay> = Vec::new();
        for wal_generation in store.wal_generations() {
            let Some(replay) = wal::replay(&store.wal_path(wal_generation), wal_generation)?
            else {
                continue;
            };
            if wal_generation == generation {
                primary = Some(replay);
            } else {
                orphans.push(replay);
            }
        }
        let mut writer = match &primary {
            Some(replay) => {
                WalWriter::resume(store.wal_path(generation), self.wal_fsync, replay)?
            }
            None => WalWriter::create(store.wal_path(generation), generation, self.wal_fsync)?,
        };
        let mut seen: intern::FxHashSet<DocId> =
            detector.iter_fingerprints().map(|(doc, _)| doc).collect();
        let mut replayed = 0u64;
        for (doc, fingerprint) in primary.map(|r| r.records).unwrap_or_default() {
            if seen.insert(doc) {
                detector.insert_fingerprint(doc, fingerprint);
                replayed += 1;
            }
        }
        let mut consolidated = false;
        for orphan in orphans {
            for (doc, fingerprint) in orphan.records {
                if seen.insert(doc) {
                    // Fold the orphaned segment's records into the
                    // current one, so the next rotation (which truncates
                    // the orphan's path) cannot lose them.
                    writer.append(doc, &fingerprint)?;
                    detector.insert_fingerprint(doc, fingerprint);
                    replayed += 1;
                    consolidated = true;
                }
            }
        }
        if consolidated {
            writer.sync()?;
        }
        for wal_generation in store.wal_generations() {
            if wal_generation > generation {
                let _ = std::fs::remove_file(store.wal_path(wal_generation));
            }
        }
        Ok(Some(self.assemble_with(detector, generation, Some(writer), replayed)))
    }

    /// Fingerprint sources without building any index — the shared
    /// front half of [`CorpusBuilder::from_sources`], used directly by
    /// sweep-style consumers ([`ccd::SweepEngine::from_fingerprints`])
    /// that need the fingerprints but none of the retrieval machinery.
    pub fn fingerprint_sources<'a, I>(docs: I) -> Vec<(DocId, Fingerprint)>
    where
        I: IntoIterator<Item = (u64, &'a str)>,
    {
        docs.into_iter()
            .filter_map(|(id, source)| {
                CloneDetector::fingerprint_source(source).map(|fp| (id, fp))
            })
            .collect()
    }

    /// Cold assembly: when a snapshot directory is attached, a fresh WAL
    /// segment for `generation` is started (truncating any stale one —
    /// a cold build's in-memory state *is* the whole corpus, so an old
    /// segment has nothing to add).
    fn assemble(self, combined: CloneDetector, generation: u64) -> CorpusHandle {
        let writer = self.snapshot_dir.as_ref().map(|dir| {
            let store = SnapshotStore::open(dir).expect("snapshot dir was creatable above");
            WalWriter::create(store.wal_path(generation), generation, self.wal_fsync)
                .expect("WAL segment creatable in a writable snapshot dir")
        });
        self.assemble_with(combined, generation, writer, 0)
    }

    fn assemble_with(
        self,
        combined: CloneDetector,
        generation: u64,
        wal: Option<WalWriter>,
        replayed: u64,
    ) -> CorpusHandle {
        let next_doc = combined
            .iter_fingerprints()
            .map(|(doc, _)| doc + 1)
            .max()
            .unwrap_or(0);
        let ids = combined.iter_fingerprints().map(|(doc, _)| doc).collect();
        let shards = partition_detector(self.params, combined, self.shards)
            .into_iter()
            .map(|d| RwLock::new(Arc::new(d)))
            .collect();
        CorpusHandle {
            inner: Arc::new(HandleInner {
                params: self.params,
                shards,
                generation: AtomicU64::new(generation),
                deltas: AtomicU64::new(replayed),
                store: self.snapshot_dir.map(|dir| {
                    SnapshotStore::open(dir).expect("snapshot dir was creatable above")
                }),
                compacting: AtomicBool::new(false),
                ids: Mutex::new(ids),
                next_doc: AtomicU64::new(next_doc),
                front: FrontCache::new(self.front_cache_capacity),
                wal: Mutex::new(wal),
                wal_policy: self.wal_fsync,
                replayed_on_boot: replayed,
                auto_compactions: AtomicU64::new(0),
            }),
        }
    }
}

/// Split one detector into per-shard detectors without re-gramming: the
/// combined index's flat postings are routed to shards by
/// [`shard_of`], and each shard imports its slice verbatim.
fn partition_detector(
    params: CcdParams,
    combined: CloneDetector,
    shards: usize,
) -> Vec<CloneDetector> {
    if shards <= 1 {
        // Cheap path: the combined detector IS the single shard — moved,
        // not copied, so a snapshot warm start never duplicates postings.
        return vec![combined];
    }
    let mut corpora: Vec<Vec<(DocId, Fingerprint)>> = vec![Vec::new(); shards];
    for (doc, fp) in combined.iter_fingerprints() {
        corpora[shard_of(doc, shards)].push((doc, fp.clone()));
    }
    let mut doc_grams: Vec<Vec<(DocId, usize)>> = vec![Vec::new(); shards];
    for (doc, count) in combined.index().doc_grams_sorted() {
        doc_grams[shard_of(doc, shards)].push((doc, count));
    }
    let mut postings: Vec<Vec<(Box<str>, Vec<DocId>)>> = vec![Vec::new(); shards];
    for (gram, ids) in combined.index().postings_sorted() {
        let mut routed: Vec<Vec<DocId>> = vec![Vec::new(); shards];
        for doc in ids {
            routed[shard_of(*doc, shards)].push(*doc);
        }
        for (shard, ids) in routed.into_iter().enumerate() {
            if !ids.is_empty() {
                postings[shard].push((gram.into(), ids));
            }
        }
    }
    corpora
        .into_iter()
        .zip(doc_grams)
        .zip(postings)
        .map(|((corpus, grams), posts)| {
            let index = NgramIndex::from_parts(params.ngram_size, grams, posts);
            CloneDetector::from_parts(params, Arc::new(corpus), index)
                .expect("per-shard parts are consistent by construction")
        })
        .collect()
}

struct HandleInner {
    params: CcdParams,
    /// Per-shard detectors. Readers clone the `Arc` out of the lock and
    /// match lock-free; inserts take the write lock and mutate through
    /// `Arc::make_mut` (copy-on-write when a reader still holds the old
    /// corpus).
    shards: Vec<RwLock<Arc<CloneDetector>>>,
    /// Committed snapshot generation (0 = never committed).
    generation: AtomicU64,
    /// Inserts since the committed generation.
    deltas: AtomicU64,
    store: Option<SnapshotStore>,
    compacting: AtomicBool,
    /// All indexed ids (duplicate-insert guard + id allocation).
    ids: Mutex<intern::FxHashSet<DocId>>,
    next_doc: AtomicU64,
    front: FrontCache,
    /// Write-ahead log writer for the active segment (`Some` exactly
    /// when `store` is). Appends happen under this lock *before* the
    /// shard apply; compaction swaps in the next generation's writer.
    wal: Mutex<Option<WalWriter>>,
    wal_policy: FsyncPolicy,
    /// WAL records replayed when this handle warm-started.
    replayed_on_boot: u64,
    /// Compactions triggered by the delta threshold (`--compact-after`).
    auto_compactions: AtomicU64,
}

/// A shared, thread-safe handle to the clone corpus — see the module
/// docs. Cloning the handle clones an `Arc`.
#[derive(Clone)]
pub struct CorpusHandle {
    inner: Arc<HandleInner>,
}

impl CorpusHandle {
    /// The CCD parameters the corpus was built with.
    pub fn params(&self) -> CcdParams {
        self.inner.params
    }

    /// Total indexed documents across shards.
    pub fn len(&self) -> usize {
        self.shard_detectors().iter().map(|d| d.len()).sum()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Per-shard document counts, in shard order.
    pub fn shard_layout(&self) -> Vec<usize> {
        self.shard_detectors().iter().map(|d| d.len()).collect()
    }

    /// The committed snapshot generation (0 when nothing was ever
    /// committed).
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::SeqCst)
    }

    /// Inserts accepted since the committed generation. Each one is in
    /// the write-ahead log (when a snapshot directory is attached), so
    /// deltas survive a crash and are replayed at the next warm start;
    /// [`CorpusHandle::compact`] folds them into the snapshot proper.
    pub fn deltas(&self) -> u64 {
        self.inner.deltas.load(Ordering::SeqCst)
    }

    /// Live write-ahead log counters; `None` without a snapshot
    /// directory (nothing to log against).
    pub fn wal_stats(&self) -> Option<WalStats> {
        let wal = self.inner.wal.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        wal.as_ref().map(|writer| writer.stats())
    }

    /// The WAL fsync policy's canonical name, or `"off"` when the handle
    /// has no WAL.
    pub fn fsync_policy_name(&self) -> String {
        if self.inner.store.is_some() {
            self.inner.wal_policy.name()
        } else {
            "off".into()
        }
    }

    /// WAL records replayed when this handle warm-started (0 for cold
    /// builds).
    pub fn replayed_on_boot(&self) -> u64 {
        self.inner.replayed_on_boot
    }

    /// Compactions completed by the delta threshold
    /// ([`CorpusHandle::maybe_auto_compact`]).
    pub fn auto_compactions(&self) -> u64 {
        self.inner.auto_compactions.load(Ordering::SeqCst)
    }

    /// Front-cache counters.
    pub fn front_cache_stats(&self) -> FrontCacheStats {
        self.inner.front.stats()
    }

    /// The corpus in canonical (ascending doc id) order — the sweep and
    /// evaluation consumers' view.
    pub fn fingerprints(&self) -> Vec<(DocId, Fingerprint)> {
        let mut docs: Vec<(DocId, Fingerprint)> = self
            .shard_detectors()
            .iter()
            .flat_map(|d| d.iter_fingerprints().map(|(doc, fp)| (doc, fp.clone())).collect::<Vec<_>>())
            .collect();
        docs.sort_by_key(|(doc, _)| *doc);
        docs
    }

    fn shard_detectors(&self) -> Vec<Arc<CloneDetector>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|poisoned| poisoned.into_inner()).clone())
            .collect()
    }

    /// All clones of `query`: per-shard η-filtered candidate retrieval and
    /// Algorithm 1 scoring (shards run in parallel), merged into one
    /// canonical order — descending score, ascending doc id on ties — so
    /// the result is byte-stable across shard counts and backing stores.
    pub fn matches(&self, query: &Fingerprint) -> Vec<CloneMatch> {
        let detectors = self.shard_detectors();
        let mut all = if detectors.len() == 1 {
            detectors[0].matches(query)
        } else {
            std::thread::scope(|scope| {
                let (first, rest) = detectors.split_first().expect("at least one shard");
                let handles: Vec<_> = rest
                    .iter()
                    .map(|d| scope.spawn(move || d.matches(query)))
                    .collect();
                // The first shard runs on the calling thread.
                let mut all = first.matches(query);
                for handle in handles {
                    // A shard panic (e.g. an injected ccd/match fault) is
                    // re-raised here for the facade's isolation layer.
                    match handle.join() {
                        Ok(matches) => all.extend(matches),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                all
            })
        };
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        all
    }

    /// Insert a pre-computed fingerprint. `doc: None` auto-assigns the
    /// next free id; an explicit id that is already indexed is an
    /// `invalid_request`. Returns the id.
    ///
    /// Write-ahead discipline: with a snapshot directory attached the
    /// record is appended to the WAL segment *before* the in-memory
    /// apply — once this returns `Ok`, the insert survives `kill -9`.
    /// A failed append rejects the insert and releases its id; nothing
    /// is applied.
    ///
    /// The shard mutates under its write lock through `Arc::make_mut`:
    /// when a concurrent reader still holds the shard's detector the
    /// storage is cloned (copy-on-write) and the reader finishes on the
    /// old corpus — readers never block on an insert's gram work.
    pub fn insert_fingerprint(
        &self,
        doc: Option<DocId>,
        fingerprint: Fingerprint,
    ) -> Result<DocId, AnalysisError> {
        static INSERTS: telemetry::Counter = telemetry::Counter::new("corpus.inserts");
        let doc = {
            let mut ids = self.inner.ids.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let doc = match doc {
                Some(doc) => {
                    if ids.contains(&doc) {
                        return Err(AnalysisError::invalid(format!(
                            "doc id {doc} is already indexed"
                        )));
                    }
                    doc
                }
                None => self.inner.next_doc.load(Ordering::SeqCst),
            };
            ids.insert(doc);
            // Keep the allocator above every id ever seen.
            self.inner.next_doc.fetch_max(doc + 1, Ordering::SeqCst);
            doc
        };
        {
            let mut wal = self.inner.wal.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(writer) = wal.as_mut() {
                if let Err(error) = writer.append(doc, &fingerprint) {
                    drop(wal);
                    let mut ids =
                        self.inner.ids.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    ids.remove(&doc);
                    return Err(error);
                }
            }
        }
        let shard = &self.inner.shards[shard_of(doc, self.inner.shards.len())];
        {
            let mut guard = shard.write().unwrap_or_else(|poisoned| poisoned.into_inner());
            Arc::make_mut(&mut guard).insert_fingerprint(doc, fingerprint);
        }
        self.inner.deltas.fetch_add(1, Ordering::SeqCst);
        INSERTS.incr();
        // The corpus changed: cached match results are stale.
        self.inner.front.invalidate();
        Ok(doc)
    }

    /// Fingerprint a source fragment and insert it (typed errors for
    /// unfingerprintable sources). Returns the assigned id.
    pub fn insert_source(
        &self,
        doc: Option<DocId>,
        source: &str,
    ) -> Result<DocId, AnalysisError> {
        let fingerprint = CloneDetector::try_fingerprint_source(source)?;
        self.insert_fingerprint(doc, fingerprint)
    }

    /// Compact the full corpus (snapshot + deltas) into the next snapshot
    /// generation and commit it. Requires a snapshot directory; at most
    /// one compaction runs at a time (`index_busy` otherwise). Returns
    /// the committed generation.
    ///
    /// WAL rotation happens *before* the fingerprints are captured:
    /// inserts racing into the compaction land in the next generation's
    /// segment (and possibly also in the snapshot — replay deduplicates
    /// by doc id, so the overlap is harmless), while a crash anywhere in
    /// the window leaves both segments on disk for warm start to merge.
    /// The retired segment is deleted only after the commit succeeds.
    pub fn compact(&self) -> Result<u64, AnalysisError> {
        static COMPACTIONS: telemetry::Counter = telemetry::Counter::new("corpus.compactions");
        let store = self
            .inner
            .store
            .as_ref()
            .ok_or_else(|| AnalysisError::invalid("no snapshot directory configured"))?;
        if self.inner.compacting.swap(true, Ordering::SeqCst) {
            return Err(AnalysisError::index_busy("a compaction is already in flight"));
        }
        // Clear the flag on every exit path, including commit errors.
        struct Clear<'a>(&'a AtomicBool);
        impl Drop for Clear<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::SeqCst);
            }
        }
        let _clear = Clear(&self.inner.compacting);

        let generation = self.generation() + 1;
        {
            let mut wal = self.inner.wal.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            // A previous compaction attempt that failed *after* rotating
            // left the writer already on this generation; rotating again
            // would truncate records that exist nowhere else.
            if wal.as_ref().map(|w| w.generation()) != Some(generation) {
                let writer =
                    WalWriter::create(store.wal_path(generation), generation, self.inner.wal_policy)?;
                // The old writer drops here: its flusher stops and the
                // retired segment stays on disk for crash recovery until
                // the commit below succeeds.
                *wal = Some(writer);
            }
        }
        let docs = self.fingerprints();
        let delta_floor = self.deltas();
        let combined = CloneDetector::from_shared(self.inner.params, Arc::new(docs));
        store.commit(&combined, generation)?;
        self.inner.generation.store(generation, Ordering::SeqCst);
        store.remove_stale_wals(generation);
        // Inserts that raced in *during* the compaction stay counted as
        // deltas; only the ones the snapshot captured are settled.
        self.inner
            .deltas
            .fetch_sub(delta_floor.min(self.deltas()), Ordering::SeqCst);
        COMPACTIONS.incr();
        Ok(generation)
    }

    /// Kick off a background compaction when the delta count has crossed
    /// `threshold` and none is in flight (the `serve --compact-after`
    /// policy). Returns whether a compaction was spawned; the busy guard
    /// makes a race with a manual `/v1/index/compact` harmless (one of
    /// the two simply observes `index_busy`).
    pub fn maybe_auto_compact(&self, threshold: u64) -> bool {
        static AUTO_COMPACTIONS: telemetry::Counter =
            telemetry::Counter::new("corpus.auto_compactions");
        if self.inner.store.is_none()
            || self.deltas() < threshold.max(1)
            || self.inner.compacting.load(Ordering::SeqCst)
        {
            return false;
        }
        let handle = self.clone();
        std::thread::Builder::new()
            .name("auto-compact".into())
            .spawn(move || match handle.compact() {
                Ok(generation) => {
                    handle.inner.auto_compactions.fetch_add(1, Ordering::SeqCst);
                    AUTO_COMPACTIONS.incr();
                    telemetry::trace::annotate("auto_compact_generation", generation);
                }
                // Lost the race against a manual compaction — fine, the
                // deltas are being folded either way.
                Err(error) if error.code() == "index_busy" => {}
                Err(error) => {
                    eprintln!("[corpus] auto compaction failed: {error}");
                }
            })
            .is_ok()
    }

    /// Front-cache lookup by exact source bytes (tier 1). `None` when
    /// caching is off, faults are armed, or the source was never seen.
    pub fn cached_by_source(&self, source: &str) -> Option<Arc<Vec<CloneMatch>>> {
        self.inner.front.get_exact(source)
    }

    /// Front-cache lookup by fuzzy fingerprint (tier 2): near-duplicate
    /// submissions — whitespace, comments, renamed identifiers — converge
    /// to the same normalized fingerprint and hit here after parsing,
    /// skipping candidate retrieval and scoring.
    pub fn cached_by_fingerprint(&self, fp: &Fingerprint) -> Option<Arc<Vec<CloneMatch>>> {
        self.inner.front.get_near(fp)
    }

    /// Memoize a match result under both front-cache tiers.
    pub fn store_cached(&self, source: &str, fp: &Fingerprint, matches: Arc<Vec<CloneMatch>>) {
        self.inner.front.store(source, fp, matches);
    }
}

/// Counters of the near-duplicate front cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontCacheStats {
    /// Tier-1 hits: byte-identical source resubmitted.
    pub exact_hits: u64,
    /// Tier-2 hits: near-duplicate source (same normalized fingerprint).
    pub near_hits: u64,
    /// Lookups that reached the matcher.
    pub misses: u64,
}

impl FrontCacheStats {
    /// Hit fraction over all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.exact_hits + self.near_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.exact_hits + self.near_hits) as f64 / total as f64
        }
    }
}

/// Two-tier LRU front cache for clone-check results.
///
/// Tier 1 keys on the FNV hash of the raw source (no parsing at all on a
/// hit). Tier 2 keys on the normalized fuzzy fingerprint — the digest
/// `ccd` builds from `fuzzyhash` — so Type-1/Type-2 near-duplicates
/// (cosmetic edits, renamed identifiers) share an entry the moment they
/// fingerprint. Matching is a pure function of the fingerprint, so tier-2
/// hits are exact, not approximate. Both tiers are dropped whenever the
/// corpus changes, and both are bypassed while a fault plan is armed
/// (chaos runs must reach the real stages).
struct FrontCache {
    capacity: usize,
    exact: Mutex<LruCache<Arc<Vec<CloneMatch>>>>,
    near: Mutex<LruCache<Arc<Vec<CloneMatch>>>>,
    exact_hits: AtomicU64,
    near_hits: AtomicU64,
    misses: AtomicU64,
}

static FRONT_EXACT_HITS: telemetry::Counter =
    telemetry::Counter::new("corpus.front_cache.exact_hits");
static FRONT_NEAR_HITS: telemetry::Counter =
    telemetry::Counter::new("corpus.front_cache.near_hits");
static FRONT_MISSES: telemetry::Counter = telemetry::Counter::new("corpus.front_cache.misses");

impl FrontCache {
    fn new(capacity: usize) -> FrontCache {
        FrontCache {
            capacity,
            exact: Mutex::new(LruCache::new(capacity)),
            near: Mutex::new(LruCache::new(capacity)),
            exact_hits: AtomicU64::new(0),
            near_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn active(&self) -> bool {
        self.capacity > 0 && !faultinject::active()
    }

    fn key(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in bytes {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    fn get_exact(&self, source: &str) -> Option<Arc<Vec<CloneMatch>>> {
        if !self.active() {
            return None;
        }
        let hit = self
            .exact
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(Self::key(source.as_bytes()));
        if hit.is_some() {
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
            FRONT_EXACT_HITS.incr();
            telemetry::trace::annotate("front_cache", "exact_hit");
        }
        hit
    }

    fn get_near(&self, fp: &Fingerprint) -> Option<Arc<Vec<CloneMatch>>> {
        if !self.active() {
            return None;
        }
        let hit = self
            .near
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(Self::key(fp.as_str().as_bytes()));
        if hit.is_some() {
            self.near_hits.fetch_add(1, Ordering::Relaxed);
            FRONT_NEAR_HITS.incr();
            telemetry::trace::annotate("front_cache", "near_hit");
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            FRONT_MISSES.incr();
        }
        hit
    }

    fn store(&self, source: &str, fp: &Fingerprint, matches: Arc<Vec<CloneMatch>>) {
        if !self.active() {
            return;
        }
        self.exact
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(Self::key(source.as_bytes()), Arc::clone(&matches));
        self.near
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(Self::key(fp.as_str().as_bytes()), matches);
    }

    fn invalidate(&self) {
        if self.capacity == 0 {
            return;
        }
        *self.exact.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) =
            LruCache::new(self.capacity);
        *self.near.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) =
            LruCache::new(self.capacity);
    }

    fn stats(&self) -> FrontCacheStats {
        FrontCacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            near_hits: self.near_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC_A: &str =
        "contract A { function w(uint v) public { msg.sender.transfer(v); } }";
    const DOC_B: &str =
        "contract B { uint total; function add(uint v) public { total += v; } }";
    /// Type-2 near-duplicate of DOC_A (renamed identifiers, extra spaces).
    const DOC_A_NEAR: &str =
        "contract Wallet {  function out(uint amount) public { msg.sender.transfer(amount); } }";

    fn handle(shards: usize) -> CorpusHandle {
        CorpusBuilder::new(CcdParams::best())
            .shards(shards)
            .from_sources([(0u64, DOC_A), (1u64, DOC_B)])
    }

    fn query(source: &str) -> Fingerprint {
        CloneDetector::fingerprint_source(source).unwrap()
    }

    #[test]
    fn shard_counts_never_change_results() {
        let single = handle(1);
        for shards in [2, 3, 8] {
            let sharded = handle(shards);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.len(), 2);
            for source in [DOC_A, DOC_B, DOC_A_NEAR] {
                assert_eq!(sharded.matches(&query(source)), single.matches(&query(source)));
            }
        }
    }

    #[test]
    fn insert_auto_assigns_above_existing_ids() {
        let handle = handle(2);
        let id = handle.insert_source(None, DOC_A_NEAR).unwrap();
        assert_eq!(id, 2);
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.deltas(), 1);
        assert!(handle.matches(&query(DOC_A)).iter().any(|m| m.doc == 2));
    }

    #[test]
    fn duplicate_explicit_id_is_invalid() {
        let handle = handle(1);
        let err = handle.insert_source(Some(1), DOC_A_NEAR).unwrap_err();
        assert_eq!(err.code(), "invalid_request");
        assert_eq!(handle.len(), 2);
    }

    #[test]
    fn compact_without_snapshot_dir_is_invalid() {
        let err = handle(1).compact().unwrap_err();
        assert_eq!(err.code(), "invalid_request");
    }

    #[test]
    fn front_cache_tiers_hit_and_invalidate() {
        let handle = handle(1);
        assert!(handle.cached_by_source(DOC_A).is_none());
        let fp = query(DOC_A);
        let matches = Arc::new(handle.matches(&fp));
        handle.store_cached(DOC_A, &fp, Arc::clone(&matches));
        // Tier 1: same bytes.
        assert_eq!(handle.cached_by_source(DOC_A).unwrap(), matches);
        // Tier 2: a near-duplicate has the same normalized fingerprint.
        let near_fp = query(DOC_A_NEAR);
        assert_eq!(near_fp.as_str(), fp.as_str(), "near-duplicate must share the fingerprint");
        assert_eq!(handle.cached_by_fingerprint(&near_fp).unwrap(), matches);
        let stats = handle.front_cache_stats();
        assert_eq!((stats.exact_hits, stats.near_hits), (1, 1));
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn insert_invalidates_front_cache() {
        let handle = handle(1);
        let fp = query(DOC_A);
        handle.store_cached(DOC_A, &fp, Arc::new(handle.matches(&fp)));
        handle.insert_source(None, DOC_A_NEAR).unwrap();
        assert!(handle.cached_by_source(DOC_A).is_none(), "stale entry survived an insert");
        // A fresh match now sees the inserted near-duplicate.
        assert!(handle.matches(&fp).iter().any(|m| m.doc == 2));
    }

    #[test]
    fn concurrent_inserts_and_reads_stay_consistent() {
        let handle = CorpusBuilder::new(CcdParams::best()).shards(4).empty();
        let seed_fp = query(DOC_A);
        handle.insert_fingerprint(Some(0), seed_fp.clone()).unwrap();
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let handle = handle.clone();
                    let fp = seed_fp.clone();
                    scope.spawn(move || {
                        let mut seen_max = 0;
                        for _ in 0..200 {
                            let matches = handle.matches(&fp);
                            // Doc 0 is always present; every result is a
                            // valid committed document.
                            assert!(matches.iter().any(|m| m.doc == 0));
                            seen_max = seen_max.max(matches.len());
                        }
                        seen_max
                    })
                })
                .collect();
            let writer = {
                let handle = handle.clone();
                let fp = seed_fp.clone();
                scope.spawn(move || {
                    for i in 1..=20u64 {
                        handle.insert_fingerprint(Some(i), fp.clone()).unwrap();
                    }
                })
            };
            writer.join().unwrap();
            for reader in readers {
                assert!(reader.join().unwrap() >= 1);
            }
        });
        assert_eq!(handle.len(), 21);
        assert_eq!(handle.matches(&seed_fp).len(), 21);
        // Canonical order: all scores equal → ascending doc ids.
        let docs: Vec<u64> = handle.matches(&seed_fp).iter().map(|m| m.doc).collect();
        assert_eq!(docs, (0..=20).collect::<Vec<_>>());
    }

    #[test]
    fn fingerprints_view_is_doc_sorted_across_shards() {
        let handle = handle(3);
        handle.insert_source(None, DOC_A_NEAR).unwrap();
        let ids: Vec<u64> = handle.fingerprints().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
