//! CCD-based mapping of Q&A snippets onto deployed contracts (step 1 of
//! the Figure 6 experiment pipeline), plus contract deduplication (§6.3:
//! duplicate contracts are collapsed by comparing source code after
//! comment removal).

use crate::funnel::UniqueSnippet;
use ccd::{CcdParams, CloneDetector};
use corpus::contracts::ContractCorpus;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The snippet → contract clone mapping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CloneMapping {
    /// For each snippet id: the contract ids containing a clone of it
    /// (score ≥ ε), sorted.
    pub matches: HashMap<u64, Vec<u64>>,
}

impl CloneMapping {
    /// Snippets with at least one matched contract.
    pub fn matched_snippets(&self) -> impl Iterator<Item = u64> + '_ {
        self.matches
            .iter()
            .filter(|(_, contracts)| !contracts.is_empty())
            .map(|(id, _)| *id)
    }

    /// Matches of one snippet.
    pub fn contracts_of(&self, snippet: u64) -> &[u64] {
        self.matches.get(&snippet).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Run CCD over all unique snippets against the contract corpus, in
/// parallel (the per-snippet matching is independent). Snippets are
/// claimed one at a time from a work-stealing cursor, so a few large
/// snippets cannot serialize the tail the way static chunking did.
pub fn map_snippets(
    snippets: &[UniqueSnippet],
    contracts: &ContractCorpus,
    params: CcdParams,
) -> CloneMapping {
    // Index the deployed contracts once.
    let mut detector = CloneDetector::new(params);
    for contract in &contracts.contracts {
        detector.insert_source(contract.id, &contract.source);
    }
    let detector = &detector;

    let per_snippet = crate::par::par_map(snippets, |_, snippet| {
        let fp = CloneDetector::fingerprint_source(&snippet.text)?;
        let mut ids: Vec<u64> = detector.matches(&fp).into_iter().map(|m| m.doc).collect();
        ids.sort_unstable();
        Some((snippet.id, ids))
    });
    CloneMapping { matches: per_snippet.into_iter().flatten().collect() }
}

/// Deduplicate contracts by their comment/whitespace-insensitive token
/// stream. Returns contract id → canonical (first-seen) id.
pub fn dedup_contracts(contracts: &ContractCorpus) -> HashMap<u64, u64> {
    let mut canonical_of_text: HashMap<String, u64> = HashMap::new();
    let mut result = HashMap::new();
    for contract in &contracts.contracts {
        let key = token_key(&contract.source);
        let canonical = *canonical_of_text.entry(key).or_insert(contract.id);
        result.insert(contract.id, canonical);
    }
    result
}

/// Comment- and layout-insensitive key of a source: the joined token
/// stream (the lexer drops comments and whitespace).
fn token_key(source: &str) -> String {
    match solidity::lexer::lex(source) {
        Ok(tokens) => tokens
            .into_iter()
            .map(|t| t.kind.text())
            .collect::<Vec<_>>()
            .join("\u{1}"),
        Err(_) => source.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funnel::run_funnel;
    use corpus::contracts::{generate_contracts, SanctuaryConfig};
    use corpus::qa::{generate_qa, QaConfig};

    fn setup() -> (corpus::qa::QaCorpus, ContractCorpus, Vec<UniqueSnippet>) {
        let qa = generate_qa(QaConfig { seed: 21, scale: 0.02 });
        let contracts = generate_contracts(
            SanctuaryConfig { seed: 22, scale: 0.004, ..SanctuaryConfig::default() },
            &qa,
        );
        let funnel = run_funnel(&qa);
        (qa, contracts, funnel.unique)
    }

    #[test]
    fn intentional_embeddings_are_mostly_found() {
        let (_qa, contracts, unique) = setup();
        let mapping = map_snippets(&unique, &contracts, CcdParams::best());
        // Ground truth: contracts embedding snippet s should appear in
        // s's matches (Type III mutations may fall below ε, so "mostly").
        let mut found = 0usize;
        let mut total = 0usize;
        let unique_ids: std::collections::HashSet<u64> =
            unique.iter().map(|s| s.id).collect();
        for contract in &contracts.contracts {
            for clone in &contract.embedded {
                if !unique_ids.contains(&clone.snippet) {
                    continue; // snippet filtered out by the funnel
                }
                total += 1;
                if mapping.contracts_of(clone.snippet).contains(&contract.id) {
                    found += 1;
                }
            }
        }
        assert!(total > 10, "test corpus too small: {total}");
        let recall = found as f64 / total as f64;
        assert!(recall > 0.6, "embedding recall = {recall} ({found}/{total})");
    }

    #[test]
    fn conservative_params_find_fewer_matches() {
        let (_qa, contracts, unique) = setup();
        let loose = map_snippets(&unique, &contracts, CcdParams::best());
        let strict = map_snippets(&unique, &contracts, CcdParams::conservative());
        let loose_total: usize = loose.matches.values().map(Vec::len).sum();
        let strict_total: usize = strict.matches.values().map(Vec::len).sum();
        assert!(strict_total <= loose_total, "{strict_total} > {loose_total}");
        assert!(strict_total > 0);
    }

    #[test]
    fn dedup_collapses_redeployments() {
        let (_qa, contracts, _unique) = setup();
        let dedup = dedup_contracts(&contracts);
        let n_unique: std::collections::HashSet<u64> = dedup.values().copied().collect();
        assert!(n_unique.len() < contracts.contracts.len());
        // Ground-truth duplicates share a canonical id.
        for contract in &contracts.contracts {
            if let Some(orig) = contract.duplicate_of {
                assert_eq!(dedup[&contract.id], dedup[&orig]);
            }
        }
    }

    #[test]
    fn token_key_ignores_comments_and_layout() {
        let a = "contract C { uint x; }";
        let b = "contract C {\n  // comment\n  uint    x;\n}";
        assert_eq!(token_key(a), token_key(b));
        assert_ne!(token_key(a), token_key("contract D { uint x; }"));
    }
}
