//! The large-scale vulnerable-code-reuse experiment (§6.3/§6.4 of the
//! paper, Figure 6, Tables 6 and 7):
//!
//! 1. map unique snippets onto deployed contracts with CCD (conservative
//!    parameters),
//! 2. identify vulnerable snippets with CCC,
//! 3. restrict to disseminator/source snippets and deduplicate contracts,
//! 4. validate each candidate contract with CCC, re-checking only the
//!    queries that fired on the snippet, in two phases: full analysis
//!    first, then — for contracts that exceeded the analysis budget —
//!    a re-run with iteratively reduced data-flow path lengths (§6.3).

use crate::funnel::UniqueSnippet;
use crate::mapping::{dedup_contracts, map_snippets, CloneMapping};
use ccc::{Checker, Dasp, QueryId};
use ccd::CcdParams;
use corpus::contracts::ContractCorpus;
use corpus::qa::QaCorpus;
use cpg::Cpg;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Study configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StudyConfig {
    /// CCD parameters (the paper uses the conservative N=3, η=0.5, ε=0.9).
    pub ccd: CcdParams,
    /// Analysis budget per contract: graphs whose estimated pattern-search
    /// cost exceeds this "time out" in phase 1 (stands in for the paper's
    /// 1,800 s limit and Neo4j failures).
    pub budget: u64,
    /// Budget multiplier granted by the phase-2 path reduction.
    pub phase2_budget_factor: u64,
    /// Reduced maximal data-flow path length used in phase 2.
    pub phase2_max_path: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        // The budget sits around the 85th percentile of candidate-contract
        // analysis costs, so — like the paper's 1,800 s limit — a sizable
        // minority of contracts times out in phase 1 and is recovered (or
        // not) by the phase-2 path reduction.
        StudyConfig {
            ccd: CcdParams::conservative(),
            budget: 11_000,
            phase2_budget_factor: 20,
            phase2_max_path: 12,
        }
    }
}

/// Validation outcome of one candidate contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// Vulnerability confirmed in phase 1.
    VulnerablePhase1,
    /// Confirmed only after the phase-2 path reduction.
    VulnerablePhase2,
    /// Analyzed successfully, vulnerability not present (mitigated).
    NotVulnerable,
    /// Exceeded the analysis budget even in phase 2.
    Unanalyzed,
}

impl ValidationOutcome {
    /// Whether the contract counts as vulnerable.
    pub fn is_vulnerable(self) -> bool {
        matches!(
            self,
            ValidationOutcome::VulnerablePhase1 | ValidationOutcome::VulnerablePhase2
        )
    }

    /// Whether the contract was successfully analyzed.
    pub fn analyzed(self) -> bool {
        self != ValidationOutcome::Unanalyzed
    }
}

/// One validated (snippet, contract) pairing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationRecord {
    /// The vulnerable snippet.
    pub snippet: u64,
    /// The (canonical) contract containing its clone.
    pub contract: u64,
    /// The queries that fired on the snippet (re-checked on the contract).
    pub queries: Vec<QueryId>,
    /// Queries confirmed on the contract.
    pub confirmed: Vec<QueryId>,
    /// Outcome.
    pub outcome: ValidationOutcome,
}

/// The study output: every Table 7 cell plus the Table 6 distribution and
/// the per-pair records for manual validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResult {
    /// Unique parsable snippets (Table 7 "Unique").
    pub unique_snippets: usize,
    /// Snippets CCC flags as vulnerable.
    pub vulnerable_snippets: usize,
    /// Vulnerable snippets with at least one matched contract.
    pub contained_in_contracts: usize,
    /// ... of which posted before some containing contract (disseminator).
    pub posted_before_deployment: usize,
    /// ... of which source snippets.
    pub source_snippets: usize,
    /// Containing contracts (disseminator-timed, with duplicates).
    pub contracts_containing: usize,
    /// ... for source snippets only.
    pub contracts_containing_source: usize,
    /// Unique contracts after deduplication.
    pub unique_contracts: usize,
    /// ... for source snippets only.
    pub unique_contracts_source: usize,
    /// Contracts analyzed successfully in phase 1.
    pub analyzed_phase1: usize,
    /// Contracts analyzed successfully after phase 2.
    pub analyzed_total: usize,
    /// Contracts confirmed vulnerable in phase 1 only (the paper's
    /// 17,278).
    pub vulnerable_contracts_phase1: usize,
    /// Contracts confirmed vulnerable in total (17,852).
    pub vulnerable_contracts: usize,
    /// ... for source snippets only.
    pub vulnerable_contracts_source: usize,
    /// Vulnerable snippets found inside vulnerable contracts (616).
    pub snippets_in_vulnerable_contracts: usize,
    /// ... source subset (199).
    pub snippets_in_vulnerable_contracts_source: usize,
    /// Table 6: category → (vulnerable snippets, validated contracts).
    pub dasp_distribution: BTreeMap<Dasp, (usize, usize)>,
    /// All validation records (input to the Table 8 manual audit).
    pub records: Vec<ValidationRecord>,
    /// The clone mapping used (for downstream analyses).
    pub mapping: CloneMapping,
    /// Snippet id → queries CCC found on it.
    pub snippet_findings: HashMap<u64, Vec<QueryId>>,
}

/// Run the full experiment pipeline.
pub fn run_study(
    qa: &QaCorpus,
    contracts: &ContractCorpus,
    unique: &[UniqueSnippet],
    config: StudyConfig,
) -> StudyResult {
    let _span = telemetry::span("pipeline/study");
    // ---- Step 1: CCD mapping ------------------------------------------------
    let mapping = map_snippets(unique, contracts, config.ccd);
    let dedup = dedup_contracts(contracts);
    let day_of: HashMap<u64, u32> =
        contracts.contracts.iter().map(|c| (c.id, c.created_day)).collect();
    let post_day_of = |snippet_id: u64| qa.post_of(&qa.snippets[snippet_id as usize]).created_day;

    // ---- Step 2: CCC on snippets ---------------------------------------------
    let checker = Checker::new();
    let mut snippet_findings: HashMap<u64, Vec<QueryId>> = HashMap::new();
    for snippet in unique {
        let Ok(findings) = checker.check_snippet(&snippet.text) else { continue };
        if findings.is_empty() {
            continue;
        }
        let mut queries: Vec<QueryId> = findings.iter().map(|f| f.query).collect();
        queries.sort();
        queries.dedup();
        snippet_findings.insert(snippet.id, queries);
    }

    // ---- Step 3: temporal restriction + dedup -------------------------------
    // Vulnerable snippets contained in contracts.
    let contained: Vec<u64> = snippet_findings
        .keys()
        .filter(|id| !mapping.contracts_of(**id).is_empty())
        .copied()
        .collect();

    // Disseminator snippets: keep only clone contracts deployed at or
    // after the posting.
    let mut disseminator: Vec<u64> = Vec::new();
    let mut source: HashSet<u64> = HashSet::new();
    let mut candidate_pairs: Vec<(u64, u64)> = Vec::new(); // (snippet, contract)
    for snippet in &contained {
        let post_day = post_day_of(*snippet);
        let matched = mapping.contracts_of(*snippet);
        let after: Vec<u64> = matched
            .iter()
            .filter(|c| day_of[c] >= post_day)
            .copied()
            .collect();
        if after.is_empty() {
            continue;
        }
        disseminator.push(*snippet);
        if after.len() == matched.len() {
            source.insert(*snippet);
        }
        for contract in after {
            candidate_pairs.push((*snippet, contract));
        }
    }

    let contracts_containing = candidate_pairs.len();
    let contracts_containing_source = candidate_pairs
        .iter()
        .filter(|(s, _)| source.contains(s))
        .count();

    // Deduplicate: canonical contract per pair; drop duplicate pairs.
    let mut unique_pairs: Vec<(u64, u64)> = candidate_pairs
        .iter()
        .map(|(s, c)| (*s, dedup[c]))
        .collect();
    unique_pairs.sort_unstable();
    unique_pairs.dedup();
    let unique_contract_set: HashSet<u64> =
        unique_pairs.iter().map(|(_, c)| *c).collect();
    let unique_contracts_source: HashSet<u64> = unique_pairs
        .iter()
        .filter(|(s, _)| source.contains(s))
        .map(|(_, c)| *c)
        .collect();

    // ---- Step 4: two-phase validation ----------------------------------------
    let source_of: HashMap<u64, &str> = contracts
        .contracts
        .iter()
        .map(|c| (c.id, c.source.as_str()))
        .collect();

    // Validate per contract (the unit of the paper's timeout), in
    // parallel: each contract's CPG is built once and checked against the
    // queries of every snippet matched into it. Contracts are claimed one
    // at a time from a work-stealing cursor — analysis cost is heavily
    // skewed (a few huge contracts), which static chunking serialized.
    let mut pairs_by_contract: HashMap<u64, Vec<u64>> = HashMap::new();
    for (snippet, contract) in &unique_pairs {
        pairs_by_contract.entry(*contract).or_default().push(*snippet);
    }
    let contract_ids: Vec<u64> = {
        let mut ids: Vec<u64> = pairs_by_contract.keys().copied().collect();
        ids.sort_unstable();
        ids
    };
    let per_contract = crate::par::par_map(&contract_ids, |_, contract| {
        let parsed = Cpg::from_snippet(source_of[contract]).ok().map(|cpg| {
            let cost = Checker::analysis_cost(&cpg);
            (cpg, cost)
        });
        let mut local = Vec::new();
        for snippet in &pairs_by_contract[contract] {
            let queries = snippet_findings[snippet].clone();
            let (outcome, confirmed) = match &parsed {
                None => (ValidationOutcome::Unanalyzed, vec![]),
                Some((cpg, cost)) => validate_one(cpg, *cost, &queries, config),
            };
            local.push(ValidationRecord {
                snippet: *snippet,
                contract: *contract,
                queries,
                confirmed,
                outcome,
            });
        }
        local
    });
    let mut records: Vec<ValidationRecord> = per_contract.into_iter().flatten().collect();
    records.sort_by_key(|r| (r.contract, r.snippet));

    // Contract-level outcome: vulnerable wins over not-vulnerable.
    let mut outcome_of_contract: HashMap<u64, ValidationOutcome> = HashMap::new();
    for record in &records {
        let slot = outcome_of_contract
            .entry(record.contract)
            .or_insert(ValidationOutcome::Unanalyzed);
        if record.outcome.is_vulnerable()
            || (*slot == ValidationOutcome::Unanalyzed && record.outcome.analyzed())
        {
            *slot = record.outcome;
        }
    }

    // ---- Aggregation -----------------------------------------------------------
    let analyzed_phase1 = outcome_of_contract
        .values()
        .filter(|o| {
            matches!(
                o,
                ValidationOutcome::VulnerablePhase1 | ValidationOutcome::NotVulnerable
            )
        })
        .count();
    let analyzed_total = outcome_of_contract.values().filter(|o| o.analyzed()).count();
    let vulnerable_contracts_phase1 = outcome_of_contract
        .values()
        .filter(|o| **o == ValidationOutcome::VulnerablePhase1)
        .count();
    let vulnerable_contracts =
        outcome_of_contract.values().filter(|o| o.is_vulnerable()).count();
    let vulnerable_contracts_source = unique_contracts_source
        .iter()
        .filter(|c| outcome_of_contract.get(c).map(|o| o.is_vulnerable()).unwrap_or(false))
        .count();

    let vulnerable_pair = |r: &ValidationRecord| r.outcome.is_vulnerable();
    let snippets_in_vulnerable: HashSet<u64> =
        records.iter().filter(|r| vulnerable_pair(r)).map(|r| r.snippet).collect();
    let snippets_in_vulnerable_source =
        snippets_in_vulnerable.iter().filter(|s| source.contains(s)).count();

    // Table 6: per-category counts over disseminator snippets and
    // validated contracts (a snippet/contract may count in several
    // categories).
    let mut dasp: BTreeMap<Dasp, (usize, usize)> = BTreeMap::new();
    for snippet in &disseminator {
        let mut categories: Vec<Dasp> =
            snippet_findings[snippet].iter().map(|q| q.category()).collect();
        categories.sort();
        categories.dedup();
        for category in categories {
            dasp.entry(category).or_insert((0, 0)).0 += 1;
        }
    }
    let mut counted: HashSet<(u64, Dasp)> = HashSet::new();
    for record in &records {
        if !record.outcome.is_vulnerable() {
            continue;
        }
        for query in &record.confirmed {
            if counted.insert((record.contract, query.category())) {
                dasp.entry(query.category()).or_insert((0, 0)).1 += 1;
            }
        }
    }

    StudyResult {
        unique_snippets: unique.len(),
        vulnerable_snippets: snippet_findings.len(),
        contained_in_contracts: contained.len(),
        posted_before_deployment: disseminator.len(),
        source_snippets: source.len(),
        contracts_containing,
        contracts_containing_source,
        unique_contracts: unique_contract_set.len(),
        unique_contracts_source: unique_contracts_source.len(),
        analyzed_phase1,
        analyzed_total,
        vulnerable_contracts_phase1,
        vulnerable_contracts,
        vulnerable_contracts_source,
        snippets_in_vulnerable_contracts: snippets_in_vulnerable.len(),
        snippets_in_vulnerable_contracts_source: snippets_in_vulnerable_source,
        dasp_distribution: dasp,
        records,
        mapping,
        snippet_findings,
    }
}

/// Two-phase validation of one contract against one snippet's queries
/// (§6.3): full analysis within budget, then the path-length-reduction
/// retry, then give up.
fn validate_one(
    cpg: &Cpg,
    cost: u64,
    queries: &[QueryId],
    config: StudyConfig,
) -> (ValidationOutcome, Vec<QueryId>) {
    if cost <= config.budget {
        let findings = Checker::with_queries(queries).check(cpg);
        let confirmed = dedup_queries(findings.iter().map(|f| f.query));
        if confirmed.is_empty() {
            (ValidationOutcome::NotVulnerable, confirmed)
        } else {
            (ValidationOutcome::VulnerablePhase1, confirmed)
        }
    } else if cost <= config.budget * config.phase2_budget_factor {
        // Phase 2: path-length reduction brings the search space back
        // under budget. Reduction only limits the positive parts of the
        // queries, so phase 2 can only add true positives (§6.3).
        let findings = Checker::with_queries(queries)
            .bounded(config.phase2_max_path)
            .check(cpg);
        let confirmed = dedup_queries(findings.iter().map(|f| f.query));
        if confirmed.is_empty() {
            (ValidationOutcome::NotVulnerable, confirmed)
        } else {
            (ValidationOutcome::VulnerablePhase2, confirmed)
        }
    } else {
        (ValidationOutcome::Unanalyzed, vec![])
    }
}

fn dedup_queries(queries: impl Iterator<Item = QueryId>) -> Vec<QueryId> {
    let mut v: Vec<QueryId> = queries.collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funnel::run_funnel;
    use corpus::contracts::{generate_contracts, SanctuaryConfig};
    use corpus::qa::{generate_qa, QaConfig};

    fn run() -> StudyResult {
        let qa = generate_qa(QaConfig { seed: 41, scale: 0.04 });
        let contracts = generate_contracts(
            SanctuaryConfig { seed: 42, scale: 0.008, ..SanctuaryConfig::default() },
            &qa,
        );
        let funnel = run_funnel(&qa);
        run_study(&qa, &contracts, &funnel.unique, StudyConfig::default())
    }

    #[test]
    fn funnel_counts_are_consistent() {
        let r = run();
        assert!(r.unique_snippets >= r.vulnerable_snippets);
        assert!(r.vulnerable_snippets >= r.contained_in_contracts);
        assert!(r.contained_in_contracts >= r.posted_before_deployment);
        assert!(r.posted_before_deployment >= r.source_snippets);
        assert!(r.contracts_containing >= r.unique_contracts);
        assert!(r.analyzed_total >= r.analyzed_phase1);
        assert!(r.analyzed_total <= r.unique_contracts);
        assert!(r.vulnerable_contracts <= r.analyzed_total);
        assert!(r.vulnerable_contracts >= r.vulnerable_contracts_phase1);
        assert!(r.snippets_in_vulnerable_contracts <= r.posted_before_deployment);
    }

    #[test]
    fn study_finds_vulnerable_reuse() {
        let r = run();
        // The headline of the paper: vulnerable snippets do end up in
        // deployed contracts and most validate as vulnerable.
        assert!(r.vulnerable_snippets > 0);
        assert!(r.contained_in_contracts > 0, "{r:?}");
        assert!(r.vulnerable_contracts > 0);
        let validation_rate = r.vulnerable_contracts as f64 / r.analyzed_total.max(1) as f64;
        assert!(
            (0.4..=1.0).contains(&validation_rate),
            "validation rate = {validation_rate}"
        );
    }

    #[test]
    fn table6_covers_multiple_categories() {
        let r = run();
        assert!(
            r.dasp_distribution.len() >= 4,
            "expected several DASP categories, got {:?}",
            r.dasp_distribution
        );
        for (snippets, _contracts) in r.dasp_distribution.values() {
            assert!(*snippets > 0);
        }
    }

    #[test]
    fn records_match_aggregates() {
        let r = run();
        let vulnerable_recorded: HashSet<u64> = r
            .records
            .iter()
            .filter(|rec| rec.outcome.is_vulnerable())
            .map(|rec| rec.contract)
            .collect();
        assert_eq!(vulnerable_recorded.len(), r.vulnerable_contracts);
    }

    #[test]
    fn mitigated_embeddings_reduce_validation() {
        // With aggressive mitigation, fewer matched contracts validate.
        let qa = generate_qa(QaConfig { seed: 43, scale: 0.03 });
        let low = generate_contracts(
            SanctuaryConfig { seed: 44, scale: 0.006, mitigation_rate: 0.0, ..Default::default() },
            &qa,
        );
        let high = generate_contracts(
            SanctuaryConfig { seed: 44, scale: 0.006, mitigation_rate: 0.8, ..Default::default() },
            &qa,
        );
        let funnel = run_funnel(&qa);
        let r_low = run_study(&qa, &low, &funnel.unique, StudyConfig::default());
        let r_high = run_study(&qa, &high, &funnel.unique, StudyConfig::default());
        let rate = |r: &StudyResult| r.vulnerable_contracts as f64 / r.analyzed_total.max(1) as f64;
        assert!(
            rate(&r_high) < rate(&r_low) + 0.05,
            "mitigation should not raise the validation rate: {} vs {}",
            rate(&r_high),
            rate(&r_low)
        );
    }
}
