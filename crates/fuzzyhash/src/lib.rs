//! Context-triggered piecewise hashing (CTPH), in the style of ssdeep
//! (Kornblum 2006), plus the edit-distance similarity used by the paper's
//! clone detector (§5.4).
//!
//! Unlike a cryptographic hash, a fuzzy hash splits its input into pieces
//! using a *rolling hash* trigger and hashes each piece independently; a
//! local change only perturbs the pieces it touches, so similar inputs get
//! similar digests. The paper feeds *tokens* one by one into the hasher so
//! that piece boundaries align with token boundaries ("enforcing context"),
//! and compares digests with a normalized edit-distance similarity
//! `δ(s1, s2) = (max(len) − d(s1, s2)) / max(len) · 100`.
//!
//! ```
//! use fuzzyhash::{FuzzyHasher, similarity};
//!
//! let mut a = FuzzyHasher::new(4);
//! let mut b = FuzzyHasher::new(4);
//! for tok in ["contract", "c", "{", "function", "f", "(", ")", "{", "}", "}"] {
//!     a.update_token(tok);
//!     b.update_token(tok);
//! }
//! b.update_token("extra");
//! let (da, db) = (a.finish(), b.finish());
//! assert!(similarity(&da, &db) > 50.0);
//! ```


#![warn(missing_docs)]

use std::collections::VecDeque;

/// Window size of the rolling hash (ssdeep uses 7).
pub const ROLLING_WINDOW: usize = 7;

/// Base64 alphabet used for digest characters (ssdeep-compatible order).
const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// The ssdeep rolling hash: a windowed checksum whose value depends only on
/// the last [`ROLLING_WINDOW`] bytes, so identical contexts produce
/// identical trigger points regardless of position.
#[derive(Debug, Clone)]
pub struct RollingHash {
    window: VecDeque<u8>,
    h1: u32,
    h2: u32,
    h3: u32,
}

impl Default for RollingHash {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingHash {
    /// Fresh state.
    pub fn new() -> Self {
        RollingHash { window: VecDeque::with_capacity(ROLLING_WINDOW), h1: 0, h2: 0, h3: 0 }
    }

    /// Push one byte and return the new hash value.
    pub fn update(&mut self, byte: u8) -> u32 {
        let outgoing = if self.window.len() == ROLLING_WINDOW {
            self.window.pop_front().unwrap_or(0)
        } else {
            0
        };
        self.window.push_back(byte);
        self.h2 = self
            .h2
            .wrapping_sub(self.h1)
            .wrapping_add((ROLLING_WINDOW as u32).wrapping_mul(byte as u32));
        self.h1 = self.h1.wrapping_add(byte as u32).wrapping_sub(outgoing as u32);
        self.h3 = (self.h3 << 5) ^ (byte as u32);
        self.h1.wrapping_add(self.h2).wrapping_add(self.h3)
    }

    /// Current hash value.
    pub fn value(&self) -> u32 {
        self.h1.wrapping_add(self.h2).wrapping_add(self.h3)
    }
}

/// FNV-style piecewise hash (ssdeep's `sum_hash`).
#[derive(Debug, Clone, Copy)]
pub struct PieceHash(u32);

impl Default for PieceHash {
    fn default() -> Self {
        Self::new()
    }
}

impl PieceHash {
    /// ssdeep's initialisation constant.
    pub fn new() -> Self {
        PieceHash(0x2802_1967)
    }

    /// Mix one byte.
    pub fn update(&mut self, byte: u8) {
        self.0 = self.0.wrapping_mul(0x0100_0193) ^ (byte as u32);
    }

    /// Base64 character of the current state.
    pub fn digest_char(self) -> char {
        B64[(self.0 % 64) as usize] as char
    }
}

/// A context-triggered piecewise hasher with a fixed block size.
///
/// The clone detector uses a *fixed* block size for all fingerprints so
/// that digests of different snippets are mutually comparable (classic
/// ssdeep only compares digests of equal or adjacent block sizes).
/// Feeding via [`FuzzyHasher::update_token`] restricts piece boundaries to
/// token boundaries, which is the paper's context-enforcement trick.
#[derive(Debug, Clone)]
pub struct FuzzyHasher {
    block_size: u32,
    roll: RollingHash,
    piece: PieceHash,
    digest: String,
    dirty: bool,
}

impl FuzzyHasher {
    /// Create a hasher with the given trigger block size (the expected
    /// number of tokens per piece).
    pub fn new(block_size: u32) -> Self {
        FuzzyHasher {
            block_size: block_size.max(1),
            roll: RollingHash::new(),
            piece: PieceHash::new(),
            digest: String::new(),
            dirty: false,
        }
    }

    /// Feed raw bytes; a piece may end at any byte (classic ssdeep mode).
    pub fn update_bytes(&mut self, data: &[u8]) {
        for &byte in data {
            self.push_byte(byte);
            self.maybe_cut();
        }
    }

    /// Feed one token; piece boundaries only occur *between* tokens, so a
    /// piece always covers whole tokens (§5.4 context enforcement).
    pub fn update_token(&mut self, token: &str) {
        for &byte in token.as_bytes() {
            self.push_byte(byte);
        }
        // Token separator keeps `ab`,`c` distinct from `a`,`bc`.
        self.push_byte(0x1f);
        self.maybe_cut();
    }

    fn push_byte(&mut self, byte: u8) {
        self.roll.update(byte);
        self.piece.update(byte);
        self.dirty = true;
    }

    fn maybe_cut(&mut self) {
        if self.roll.value() % self.block_size == self.block_size - 1 {
            self.digest.push(self.piece.digest_char());
            self.piece = PieceHash::new();
            self.dirty = false;
        }
    }

    /// Finish the digest, flushing the trailing partial piece.
    pub fn finish(mut self) -> String {
        if self.dirty {
            self.digest.push(self.piece.digest_char());
        }
        self.digest
    }
}

/// Hash a token stream with a fixed block size.
pub fn hash_tokens(tokens: &[String], block_size: u32) -> String {
    let mut hasher = FuzzyHasher::new(block_size);
    for token in tokens {
        hasher.update_token(token);
    }
    hasher.finish()
}

/// Classic whole-input fuzzy hash with ssdeep's adaptive block size,
/// formatted as `blocksize:digest`. Used for whole-file deduplication.
pub fn fuzzy_hash_bytes(data: &[u8]) -> String {
    // bs = 3 * 2^i such that bs * 64 >= len (ssdeep's SPAMSUM_LENGTH = 64).
    let mut block_size: u32 = 3;
    while (block_size as u64) * 64 < data.len() as u64 {
        block_size *= 2;
    }
    loop {
        let mut hasher = FuzzyHasher::new(block_size);
        hasher.update_bytes(data);
        let digest = hasher.finish();
        // ssdeep halves the block size when the digest is too short.
        if digest.len() >= 32 || block_size <= 3 {
            return format!("{block_size}:{digest}");
        }
        block_size /= 2;
    }
}

/// Compare two classic `blocksize:digest` hashes the way ssdeep does:
/// comparable only when the block sizes are equal or adjacent (factor 2),
/// scored with the normalized edit-distance similarity.
///
/// Returns `None` for malformed inputs or incomparable block sizes.
pub fn compare_classic(a: &str, b: &str) -> Option<f64> {
    let (bs_a, dig_a) = a.split_once(':')?;
    let (bs_b, dig_b) = b.split_once(':')?;
    let bs_a: u32 = bs_a.parse().ok()?;
    let bs_b: u32 = bs_b.parse().ok()?;
    let comparable = bs_a == bs_b || bs_a == bs_b * 2 || bs_b == bs_a * 2;
    if !comparable {
        return None;
    }
    Some(similarity(dig_a, dig_b))
}

/// Levenshtein edit distance between two strings (two-row DP, O(n·m) time,
/// O(min(n,m)) space).
pub fn edit_distance(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        return edit_distance_slices(a.as_bytes(), b.as_bytes());
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    edit_distance_slices(&a, &b)
}

fn edit_distance_slices<T: Eq>(a: &[T], b: &[T]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut current = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        current[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = if lc == sc { 0 } else { 1 };
            current[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[short.len()]
}

/// Banded (Ukkonen) edit distance: `Some(d)` iff `d(a, b) <= max_dist`,
/// `None` as soon as the distance provably exceeds the bound.
///
/// Only the `2·max_dist + 1` diagonals around the main one are evaluated,
/// so a tight bound turns the O(n·m) table into O(max_dist·n) — the hot
/// path of the all-pairs matcher, where most comparisons are far apart
/// and the per-query best score keeps shrinking the band.
pub fn edit_distance_bounded(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    if a.is_ascii() && b.is_ascii() {
        return edit_distance_bounded_slices(a.as_bytes(), b.as_bytes(), max_dist);
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    edit_distance_bounded_slices(&a, &b, max_dist)
}

/// Banded-DP calls that ended before completing the table, by exit.
static PRUNE_LENGTH_GAP: telemetry::Counter =
    telemetry::Counter::new("fuzzyhash.prune.length_gap");
static PRUNE_BAND_ABORT: telemetry::Counter =
    telemetry::Counter::new("fuzzyhash.prune.band_abort");
static DP_COMPLETED: telemetry::Counter = telemetry::Counter::new("fuzzyhash.dp.completed");

fn edit_distance_bounded_slices<T: Eq>(a: &[T], b: &[T], k: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (long.len(), short.len());
    // The length gap is a lower bound on the distance.
    if n - m > k {
        PRUNE_LENGTH_GAP.incr();
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    const INF: usize = usize::MAX / 2;
    // Rows indexed by the long string; columns by the short one. Cells
    // outside the band hold INF; the band only widens by one per row, so
    // invalidating the trailing cell keeps the rows reusable.
    let mut prev: Vec<usize> = vec![INF; m + 1];
    let mut current: Vec<usize> = vec![INF; m + 1];
    for (j, slot) in prev.iter_mut().enumerate().take(m.min(k) + 1) {
        *slot = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        if lo > hi {
            PRUNE_BAND_ABORT.incr();
            return None;
        }
        current[lo - 1] = if lo == 1 { i } else { INF };
        let mut row_min = current[lo - 1];
        for j in lo..=hi {
            let cost = if long[i - 1] == short[j - 1] { 0 } else { 1 };
            let cell = (prev[j - 1] + cost)
                .min(prev[j] + 1)
                .min(current[j - 1] + 1);
            current[j] = cell;
            row_min = row_min.min(cell);
        }
        if row_min > k {
            PRUNE_BAND_ABORT.incr();
            return None;
        }
        if hi < m {
            current[hi + 1] = INF;
        }
        std::mem::swap(&mut prev, &mut current);
    }
    DP_COMPLETED.incr();
    (prev[m] <= k).then_some(prev[m])
}

/// The paper's sub-fingerprint similarity (§5.5):
/// `δ(s1, s2) = (max(len) − d(s1, s2)) / max(len) · 100`.
///
/// Two empty strings are identical (100); one empty string is maximally
/// dissimilar to a non-empty one (0).
pub fn similarity(s1: &str, s2: &str) -> f64 {
    let max_len = s1.chars().count().max(s2.chars().count());
    if max_len == 0 {
        return 100.0;
    }
    let d = edit_distance(s1, s2);
    (max_len.saturating_sub(d)) as f64 / max_len as f64 * 100.0
}

/// Pruned [`similarity`]: `Some(δ)` — exactly the value `similarity`
/// would return — whenever `δ` could exceed `floor`, `None` only when the
/// score is provably `<= floor` (scores just below the floor may still be
/// returned; the band is padded to stay conservative).
///
/// Since `d >= |len1 − len2|`, the length gap alone often proves
/// `δ <= floor` without touching the DP table; otherwise the banded
/// [`edit_distance_bounded`] is run with the tightest band that still
/// guarantees exactness (one extra diagonal absorbs the float rounding
/// of the band computation). Callers folding a running maximum can pass
/// the current best as `floor`: skipped scores can never raise the max,
/// and surviving scores are bit-identical to the unpruned ones.
pub fn similarity_above(s1: &str, s2: &str, floor: f64) -> Option<f64> {
    static CALLS: telemetry::Counter = telemetry::Counter::new("fuzzyhash.similarity.calls");
    CALLS.incr();
    let max_len = s1.chars().count().max(s2.chars().count());
    if max_len == 0 {
        return Some(100.0);
    }
    // δ > floor  ⇔  d < max_len·(1 − floor/100); pad by one for float slack.
    let max_dist = if floor <= 0.0 {
        max_len
    } else if floor >= 100.0 {
        1
    } else {
        ((max_len as f64 * (1.0 - floor / 100.0)).floor() as usize + 1).min(max_len)
    };
    let d = edit_distance_bounded(s1, s2, max_dist)?;
    Some((max_len.saturating_sub(d)) as f64 / max_len as f64 * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rolling_hash_depends_only_on_window() {
        let mut a = RollingHash::new();
        let mut b = RollingHash::new();
        for byte in b"xxxxxxxabcdefg" {
            a.update(*byte);
        }
        for byte in b"yyyyyyyabcdefg" {
            b.update(*byte);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn rolling_hash_differs_within_window() {
        let mut a = RollingHash::new();
        let mut b = RollingHash::new();
        for byte in b"abcdefg" {
            a.update(*byte);
        }
        for byte in b"abcdefh" {
            b.update(*byte);
        }
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn deterministic_digests() {
        let tokens: Vec<String> = ["msg", ".", "sender", ".", "transfer", "uint"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(hash_tokens(&tokens, 4), hash_tokens(&tokens, 4));
    }

    #[test]
    fn local_change_preserves_most_of_the_digest() {
        // The Figure 5 property: adding a line only modifies part of the
        // fingerprint.
        let base: Vec<String> = (0..200).map(|i| format!("tok{}", i % 23)).collect();
        let mut modified = base.clone();
        modified.insert(100, "inserted".to_string());
        modified.insert(101, "line".to_string());
        let da = hash_tokens(&base, 4);
        let db = hash_tokens(&modified, 4);
        assert!(da.len() > 10, "digest too short: {da}");
        assert!(
            similarity(&da, &db) > 70.0,
            "local change should keep digests similar: {da} vs {db}"
        );
    }

    #[test]
    fn different_inputs_have_dissimilar_digests() {
        let a: Vec<String> = (0..200).map(|i| format!("a{i}")).collect();
        let b: Vec<String> = (0..200).map(|i| format!("b{i}")).collect();
        let da = hash_tokens(&a, 4);
        let db = hash_tokens(&b, 4);
        assert!(similarity(&da, &db) < 60.0, "{da} vs {db}");
    }

    #[test]
    fn digest_is_much_shorter_than_input() {
        let tokens: Vec<String> = (0..1000).map(|i| format!("tok{i}")).collect();
        let digest = hash_tokens(&tokens, 8);
        assert!(digest.len() < 400, "len = {}", digest.len());
        assert!(!digest.is_empty());
    }

    #[test]
    fn classic_mode_formats_block_size() {
        let h = fuzzy_hash_bytes(b"hello world, this is a longer input for hashing");
        let (bs, digest) = h.split_once(':').unwrap();
        assert!(bs.parse::<u32>().is_ok());
        assert!(!digest.is_empty());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "axc"), 1);
    }

    #[test]
    fn similarity_formula() {
        assert_eq!(similarity("", ""), 100.0);
        assert_eq!(similarity("abcd", "abcd"), 100.0);
        assert_eq!(similarity("abcd", ""), 0.0);
        // d("abcd","abcx") = 1, max len 4 → 75.
        assert_eq!(similarity("abcd", "abcx"), 75.0);
    }

    #[test]
    fn bounded_edit_distance_basics() {
        assert_eq!(edit_distance_bounded("", "", 0), Some(0));
        assert_eq!(edit_distance_bounded("abc", "", 3), Some(3));
        assert_eq!(edit_distance_bounded("abc", "", 2), None);
        assert_eq!(edit_distance_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(edit_distance_bounded("kitten", "sitting", 2), None);
        // Band of width 0 still detects equality.
        assert_eq!(edit_distance_bounded("same", "same", 0), Some(0));
        assert_eq!(edit_distance_bounded("same", "sane", 0), None);
    }

    #[test]
    fn similarity_above_prunes_only_below_floor() {
        // δ("abcd","abcx") = 75.
        assert_eq!(similarity_above("abcd", "abcx", 0.0), Some(75.0));
        assert_eq!(similarity_above("abcd", "abcx", 74.9), Some(75.0));
        // δ("aaaa","bbbb") = 0, far below the floor → pruned.
        assert_eq!(similarity_above("aaaa", "bbbb", 80.0), None);
        assert_eq!(similarity_above("", "", 99.0), Some(100.0));
        // Length gap alone rules this pair out at a high floor.
        assert_eq!(similarity_above("a", "abcdefgh", 50.0), None);
    }

    #[test]
    fn token_boundaries_enforce_context() {
        // `ab`,`c` and `a`,`bc` must hash differently despite identical
        // concatenation.
        let x = hash_tokens(&["ab".into(), "c".into(), "pad1".into(), "pad2".into()], 2);
        let y = hash_tokens(&["a".into(), "bc".into(), "pad1".into(), "pad2".into()], 2);
        // Not necessarily entirely different, but not byte-identical
        // derivation: the separator placement changes the rolling stream.
        let _ = &y;
        let x2 = hash_tokens(&["ab".into(), "c".into(), "pad1".into(), "pad2".into()], 2);
        assert_eq!(x, x2);
    }


    #[test]
    fn classic_comparison_requires_adjacent_block_sizes() {
        let short = fuzzy_hash_bytes(b"tiny input");
        let long_data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let long = fuzzy_hash_bytes(&long_data);
        // Same input compares to itself at 100.
        assert_eq!(compare_classic(&short, &short), Some(100.0));
        // Wildly different block sizes are incomparable, as in ssdeep.
        assert_eq!(compare_classic(&short, &long), None);
        assert_eq!(compare_classic("notahash", &short), None);
    }

    #[test]
    fn classic_comparison_scores_similar_inputs_high() {
        let base: Vec<u8> = (0..4000u32).map(|i| (i % 199) as u8).collect();
        let mut tweaked = base.clone();
        for slot in tweaked.iter_mut().skip(2000).take(40) {
            *slot = 7;
        }
        let ha = fuzzy_hash_bytes(&base);
        let hb = fuzzy_hash_bytes(&tweaked);
        if let Some(score) = compare_classic(&ha, &hb) {
            assert!(score > 50.0, "{ha} vs {hb}: {score}");
        }
    }

    proptest! {
        #[test]
        fn edit_distance_symmetric(a in ".{0,40}", b in ".{0,40}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn edit_distance_identity(a in ".{0,40}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn edit_distance_triangle(a in ".{0,20}", b in ".{0,20}", c in ".{0,20}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn edit_distance_bounded_by_longer(a in ".{0,40}", b in ".{0,40}") {
            let d = edit_distance(&a, &b);
            let max = a.chars().count().max(b.chars().count());
            prop_assert!(d <= max);
        }

        #[test]
        fn similarity_in_range(a in "[a-zA-Z0-9]{0,40}", b in "[a-zA-Z0-9]{0,40}") {
            let s = similarity(&a, &b);
            prop_assert!((0.0..=100.0).contains(&s));
        }

        #[test]
        fn bounded_agrees_with_exact_within_band(a in ".{0,30}", b in ".{0,30}", k in 0usize..35) {
            let exact = edit_distance(&a, &b);
            match edit_distance_bounded(&a, &b, k) {
                Some(d) => prop_assert_eq!(d, exact),
                None => prop_assert!(exact > k, "pruned at k={} but exact={}", k, exact),
            }
        }

        #[test]
        fn similarity_above_is_exact_or_provably_below(
            a in "[a-zA-Z0-9]{0,40}",
            b in "[a-zA-Z0-9]{0,40}",
            floor in 0.0f64..100.0,
        ) {
            let exact = similarity(&a, &b);
            match similarity_above(&a, &b, floor) {
                // Surviving scores must be bit-identical to the unpruned value.
                Some(s) => prop_assert_eq!(s.to_bits(), exact.to_bits()),
                None => prop_assert!(exact <= floor, "pruned {} at floor {}", exact, floor),
            }
        }

        #[test]
        fn hashing_never_panics(tokens in proptest::collection::vec("[a-z]{1,8}", 0..50), bs in 1u32..16) {
            let _ = hash_tokens(&tokens, bs);
        }
    }
}
