//! Deterministic, seeded fault injection for chaos-testing the pipeline.
//!
//! The analysis stack runs over adversarial corpora — Q&A snippets,
//! honeypots, mutated contracts — exactly the inputs that find crash
//! paths. This crate provides the *controlled* version of that hostility:
//! a seeded fault plan, parsed from the `FAULT_SPEC` environment variable,
//! that injects errors, panics and delays at named points of the stack so
//! the chaos suite can prove every failure degrades to a typed error
//! instead of a process death.
//!
//! # Specification grammar
//!
//! `FAULT_SPEC` is a comma-separated list of rules:
//!
//! ```text
//! point:kind:param[,point:kind:param...]
//!
//! parse:err:0.01          1% of parses fail with an injected error
//! cpg:panic:0.005         0.5% of CPG translations panic
//! query:delay:50ms        every query evaluation sleeps 50 ms
//! ccd:delay:10ms@0.2      20% of clone matches sleep 10 ms
//! server:err:0.02         2% of requests answer with an internal error
//! ```
//!
//! A rule's `point` matches an injection site either exactly
//! (`cpg/build`) or by its first `/` segment (`cpg` matches both
//! `cpg/build` and `cpg/expand`). The canonical sites are listed in
//! [`POINTS`].
//!
//! # Determinism
//!
//! All probabilistic decisions come from a [SplitMix64](SeededRng) stream
//! keyed by `FAULT_SEED` (default 0), the rule's point name and a per-rule
//! sequence number. For a fixed seed and a fixed per-rule call sequence
//! the injected faults are bit-reproducible; across thread interleavings
//! the *set* of decisions per rule is identical even when their
//! attribution to call sites varies.
//!
//! # Overhead when disabled
//!
//! With no plan installed, [`fire`] is one `Once` check and one relaxed
//! atomic load — effectively free, so the injection points stay compiled
//! into release binaries and are activated purely by environment.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Duration;

/// Canonical injection sites wired through the workspace.
pub const POINTS: &[&str] = &[
    "parse",
    "cpg/build",
    "cpg/expand",
    "query/eval",
    "ccc/detector",
    "ccd/match",
    "ccd/sweep",
    "server/request",
    "index/commit",
    "wal/append",
    "wal/fsync",
    "wal/replay",
];

/// A deterministic random stream (SplitMix64). Also used by the retry
/// client for backoff jitter, so chaos runs replay bit-identically.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> SeededRng {
        SeededRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        mix(self.0)
    }

    /// Next value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next value in `[0, bound)` (`0` when `bound` is `0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64→64 bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a — stable string hash for keying per-rule streams.
fn fnv(s: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// What a rule injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Surface a typed error at the injection point.
    Error,
    /// Panic (exercises the panic-isolation layer).
    Panic,
    /// Sleep for the configured duration (exercises timeouts/backpressure).
    Delay(u64),
}

/// One parsed `point:kind:param` rule.
#[derive(Debug)]
struct Rule {
    point: String,
    kind: FaultKind,
    rate: f64,
    /// Per-rule decision sequence number (deterministic stream position).
    seq: AtomicU64,
}

impl Rule {
    fn matches(&self, point: &str) -> bool {
        self.point == point
            || point
                .split('/')
                .next()
                .map(|head| head == self.point)
                .unwrap_or(false)
    }

    /// Deterministic fire decision: position `seq` of the stream keyed by
    /// `(seed, point)`.
    fn fires(&self, seed: u64) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let x = mix(seed ^ fnv(&self.point) ^ mix(n.wrapping_add(1)));
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.rate
    }
}

/// An injected fault observed by [`FaultPlan::evaluate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fired {
    /// An error should be surfaced; the payload names the point.
    Error(String),
    /// A panic should be raised; the payload names the point.
    Panic(String),
    /// The caller should sleep this many milliseconds.
    DelayMs(u64),
}

/// A parsed, seeded fault plan.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parse a `FAULT_SPEC` string with a seed. Returns a description of
    /// the first malformed rule on error.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.splitn(3, ':');
            let (point, kind, param) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(k), Some(v)) if !p.is_empty() => (p, k, v),
                _ => return Err(format!("malformed rule {entry:?}: want point:kind:param")),
            };
            let parse_rate = |v: &str| -> Result<f64, String> {
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("rule {entry:?}: rate {v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rule {entry:?}: rate {v} outside [0, 1]"));
                }
                Ok(rate)
            };
            let (kind, rate) = match kind {
                "err" | "error" => (FaultKind::Error, parse_rate(param)?),
                "panic" => (FaultKind::Panic, parse_rate(param)?),
                "delay" => {
                    let (dur, rate) = match param.split_once('@') {
                        Some((dur, rate)) => (dur, parse_rate(rate)?),
                        None => (param, 1.0),
                    };
                    let ms: u64 = dur
                        .strip_suffix("ms")
                        .unwrap_or(dur)
                        .parse()
                        .map_err(|_| format!("rule {entry:?}: bad delay {dur:?} (want e.g. 50ms)"))?;
                    (FaultKind::Delay(ms), rate)
                }
                other => return Err(format!("rule {entry:?}: unknown kind {other:?}")),
            };
            rules.push(Rule { point: point.to_string(), kind, rate, seq: AtomicU64::new(0) });
        }
        Ok(FaultPlan { seed, rules })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate every rule matching `point` and return the faults that
    /// fire, in rule order. Pure decision logic: nothing sleeps or panics.
    pub fn evaluate(&self, point: &str) -> Vec<Fired> {
        let mut fired = Vec::new();
        for rule in &self.rules {
            if !rule.matches(point) || !rule.fires(self.seed) {
                continue;
            }
            fired.push(match rule.kind {
                FaultKind::Error => Fired::Error(format!("injected fault at {point}")),
                FaultKind::Panic => Fired::Panic(format!("faultinject: injected panic at {point}")),
                FaultKind::Delay(ms) => Fired::DelayMs(ms),
            });
        }
        fired
    }

    /// Evaluate and *apply* the faults at `point`: delays sleep, panics
    /// panic, and the first error fault is returned for the caller to map
    /// into its typed error.
    pub fn apply(&self, point: &str) -> Option<String> {
        let mut error = None;
        for fault in self.evaluate(point) {
            match fault {
                Fired::DelayMs(ms) => {
                    DELAYS.fetch_add(1, Ordering::Relaxed);
                    telemetry::trace::annotate("fault_delay_ms", ms);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Fired::Panic(message) => {
                    PANICS.fetch_add(1, Ordering::Relaxed);
                    telemetry::trace::annotate("fault_panic", &message);
                    panic!("{message}");
                }
                Fired::Error(message) => {
                    if error.is_none() {
                        ERRORS.fetch_add(1, Ordering::Relaxed);
                        telemetry::trace::annotate("fault_error", &message);
                        error = Some(message);
                    }
                }
            }
        }
        error
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static ERRORS: AtomicU64 = AtomicU64::new(0);
static PANICS: AtomicU64 = AtomicU64::new(0);
static DELAYS: AtomicU64 = AtomicU64::new(0);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// The seed from `FAULT_SEED` (default 0).
pub fn env_seed() -> u64 {
    std::env::var("FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Install a plan process-wide (`None` disables injection). Binaries use
/// [`init_from_env`]; this entry point exists for in-process chaos tests.
pub fn install(plan: Option<FaultPlan>) {
    // Mark env-init as done so a later lazy fire() cannot overwrite an
    // explicitly installed plan with the environment's.
    ENV_INIT.call_once(|| {});
    let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(plan.as_ref().map(|p| !p.is_empty()).unwrap_or(false), Ordering::SeqCst);
    *slot = plan.map(Arc::new);
}

/// Read `FAULT_SPEC`/`FAULT_SEED` and install the resulting plan. A
/// malformed spec is reported on stderr and ignored (the daemon must not
/// die because a chaos experiment had a typo). Called lazily by [`fire`],
/// so libraries need no explicit startup hook.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var("FAULT_SPEC") else {
            return;
        };
        match FaultPlan::parse(&spec, env_seed()) {
            Ok(plan) => {
                let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
                ACTIVE.store(!plan.is_empty(), Ordering::SeqCst);
                *slot = Some(Arc::new(plan));
            }
            Err(error) => eprintln!("[faultinject] ignoring FAULT_SPEC: {error}"),
        }
    });
}

/// Evaluate the installed plan at an injection point. Delay faults sleep
/// here; panic faults panic here (the isolation layers above convert them
/// to typed internal errors); an error fault returns `Some(message)` for
/// the call site to map into its own error type. Returns `None` — at the
/// cost of one atomic load — when no plan is active.
#[inline]
pub fn fire(point: &str) -> Option<String> {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let plan = plan_slot().lock().unwrap_or_else(|e| e.into_inner()).clone();
    plan.and_then(|p| p.apply(point))
}

/// Whether a fault plan is active.
#[inline]
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed)
}

/// Counts of faults injected so far: `(errors, panics, delays)`.
pub fn injected_counts() -> (u64, u64, u64) {
    (
        ERRORS.load(Ordering::Relaxed),
        PANICS.load(Ordering::Relaxed),
        DELAYS.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan = FaultPlan::parse("parse:err:0.01,cpg:panic:0.005,query:delay:50ms", 7).unwrap();
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "parse",
            "parse:err",
            "parse:err:2.0",
            "parse:err:x",
            "parse:boom:0.5",
            "query:delay:50xs",
            ":err:0.5",
            "ccd:delay:10ms@1.5",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_and_blank_specs_are_empty_plans() {
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,", 0).unwrap().is_empty());
    }

    #[test]
    fn prefix_matching_covers_sub_points() {
        let plan = FaultPlan::parse("cpg:err:1.0", 0).unwrap();
        assert_eq!(plan.evaluate("cpg/build").len(), 1);
        assert_eq!(plan.evaluate("cpg/expand").len(), 1);
        assert_eq!(plan.evaluate("cpg").len(), 1);
        assert!(plan.evaluate("parse").is_empty());
        assert!(plan.evaluate("ccd/match").is_empty());
    }

    #[test]
    fn exact_point_does_not_leak_to_siblings() {
        let plan = FaultPlan::parse("cpg/build:err:1.0", 0).unwrap();
        assert_eq!(plan.evaluate("cpg/build").len(), 1);
        assert!(plan.evaluate("cpg/expand").is_empty());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::parse("parse:err:0.3", 42).unwrap();
        let b = FaultPlan::parse("parse:err:0.3", 42).unwrap();
        let fired_a: Vec<bool> = (0..200).map(|_| !a.evaluate("parse").is_empty()).collect();
        let fired_b: Vec<bool> = (0..200).map(|_| !b.evaluate("parse").is_empty()).collect();
        assert_eq!(fired_a, fired_b);
        assert!(fired_a.iter().any(|f| *f), "rate 0.3 must fire in 200 draws");
        assert!(fired_a.iter().any(|f| !*f), "rate 0.3 must also not fire");

        let c = FaultPlan::parse("parse:err:0.3", 43).unwrap();
        let fired_c: Vec<bool> = (0..200).map(|_| !c.evaluate("parse").is_empty()).collect();
        assert_ne!(fired_a, fired_c, "different seeds give different streams");
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::parse("parse:err:0.1", 1).unwrap();
        let fired = (0..2000).filter(|_| !plan.evaluate("parse").is_empty()).count();
        let rate = fired as f64 / 2000.0;
        assert!((0.05..0.2).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let plan = FaultPlan::parse("a:err:1.0,b:err:0.0", 0).unwrap();
        assert_eq!(plan.evaluate("a").len(), 1);
        assert!(plan.evaluate("b").is_empty());
    }

    #[test]
    fn apply_returns_error_messages() {
        let plan = FaultPlan::parse("parse:err:1.0", 0).unwrap();
        let message = plan.apply("parse").unwrap();
        assert!(message.contains("injected fault at parse"), "{message}");
    }

    #[test]
    fn apply_panics_on_panic_rules() {
        let plan = FaultPlan::parse("cpg:panic:1.0", 0).unwrap();
        let result = std::panic::catch_unwind(|| plan.apply("cpg/build"));
        assert!(result.is_err());
    }

    #[test]
    fn delay_rules_sleep() {
        let plan = FaultPlan::parse("query:delay:20ms", 0).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(plan.apply("query/eval"), None);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SeededRng::new(9).next_f64();
        assert!((0.0..1.0).contains(&f));
        assert!(SeededRng::new(9).next_below(10) < 10);
        assert_eq!(SeededRng::new(9).next_below(0), 0);
    }
}
