//! A chunked bump arena for byte and string allocation.
//!
//! Allocations are appended to a current chunk; when it runs out, a new,
//! larger chunk is started. Chunks are never reallocated or freed while
//! the arena lives, so references into them remain valid for the arena's
//! lifetime — the property the single `unsafe` block below relies on.

use std::cell::RefCell;

/// Initial chunk capacity in bytes; doubles per chunk up to [`MAX_CHUNK`].
const FIRST_CHUNK: usize = 4 * 1024;
/// Upper bound on chunk growth.
const MAX_CHUNK: usize = 1024 * 1024;

/// A bump arena over byte chunks. Not `Sync`: share per thread, or guard
/// with a mutex (as the global interner does).
#[derive(Default)]
pub struct Bump {
    /// Filled chunks plus the currently-bumped one (last). Each chunk's
    /// capacity is fixed at creation: `push` never reallocates, so `&[u8]`
    /// slices handed out from a chunk stay valid.
    chunks: RefCell<Vec<Vec<u8>>>,
    /// Total bytes allocated through this arena.
    allocated: std::cell::Cell<usize>,
}

impl Bump {
    /// A fresh, empty arena.
    pub fn new() -> Bump {
        Bump::default()
    }

    /// Total bytes allocated through this arena.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.get()
    }

    /// Copy `bytes` into the arena, returning a slice that lives as long
    /// as the arena.
    pub fn alloc_bytes(&self, bytes: &[u8]) -> &[u8] {
        let mut chunks = self.chunks.borrow_mut();
        let need = bytes.len();
        let has_room = chunks
            .last()
            .map(|c| c.capacity() - c.len() >= need)
            .unwrap_or(false);
        if !has_room {
            let grown = chunks
                .last()
                .map(|c| (c.capacity() * 2).min(MAX_CHUNK))
                .unwrap_or(FIRST_CHUNK);
            chunks.push(Vec::with_capacity(grown.max(need)));
        }
        let chunk = chunks.last_mut().expect("chunk pushed above");
        let start = chunk.len();
        chunk.extend_from_slice(bytes);
        self.allocated.set(self.allocated.get() + need);
        // SAFETY: the slice points into `chunk`, whose backing buffer is
        // never reallocated (capacity is reserved up front and `push`ed
        // chunks are never written past capacity, shrunk, or dropped
        // before the arena). Extending the borrow to the arena's lifetime
        // is therefore sound; `&self` methods never hand out overlapping
        // ranges because the bump pointer only moves forward.
        unsafe { std::slice::from_raw_parts(chunk.as_ptr().add(start), need) }
    }

    /// Copy `s` into the arena, returning a `&str` that lives as long as
    /// the arena.
    pub fn alloc_str(&self, s: &str) -> &str {
        let bytes = self.alloc_bytes(s.as_bytes());
        // SAFETY: `bytes` is a verbatim copy of a valid UTF-8 `&str`.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_survive_chunk_growth() {
        let arena = Bump::new();
        let mut refs = Vec::new();
        for i in 0..10_000 {
            refs.push((i, arena.alloc_str(&format!("string-{i}"))));
        }
        for (i, s) in refs {
            assert_eq!(s, format!("string-{i}"));
        }
        assert!(arena.allocated_bytes() > 10_000);
    }

    #[test]
    fn large_allocation_gets_its_own_chunk() {
        let arena = Bump::new();
        let big = "x".repeat(3 * MAX_CHUNK);
        let a = arena.alloc_str("before");
        let b = arena.alloc_str(&big);
        let c = arena.alloc_str("after");
        assert_eq!(a, "before");
        assert_eq!(b.len(), big.len());
        assert_eq!(c, "after");
    }

    #[test]
    fn empty_allocation() {
        let arena = Bump::new();
        assert_eq!(arena.alloc_str(""), "");
    }
}
