//! Byte-offset → line/column resolution.
//!
//! Spans in the interned frontend carry only `u32` byte offsets. When a
//! human-facing line/column is needed (diagnostics, findings), a
//! [`LineIndex`] built once per source resolves it with a binary search
//! over newline positions — replacing the line/col pair the old lexer
//! threaded through every token.

use std::sync::Arc;

/// Newline positions of one source text, for O(log n) offset → (line,
/// column) resolution. Lines and columns are 1-based; columns count
/// **bytes**, matching what the pre-interning lexer reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineIndex {
    /// Byte offset of the start of each line. `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    /// Total length of the indexed text in bytes.
    len: u32,
}

impl LineIndex {
    /// Index `text`'s newlines.
    pub fn new(text: &str) -> LineIndex {
        let mut line_starts = Vec::with_capacity(text.len() / 32 + 1);
        line_starts.push(0);
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex { line_starts, len: text.len() as u32 }
    }

    /// The 1-based (line, byte-column) of byte `offset`. Offsets past the
    /// end of the text clamp to the final position.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// The 1-based line of byte `offset`.
    pub fn line_of(&self, offset: u32) -> u32 {
        self.line_col(offset).0
    }

    /// Number of lines in the indexed text (at least 1).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Length of the indexed text in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the indexed text was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A source text bundled with its [`LineIndex`]. Cheap to clone and share:
/// both the text and the index sit behind `Arc`s.
#[derive(Debug, Clone)]
pub struct SourceMap {
    text: Arc<str>,
    index: Arc<LineIndex>,
}

impl SourceMap {
    /// Take ownership of `text` and index it.
    pub fn new(text: impl Into<Arc<str>>) -> SourceMap {
        let text = text.into();
        let index = Arc::new(LineIndex::new(&text));
        SourceMap { text, index }
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The slice of the source covered by `[start, end)`, clamped to the
    /// text's bounds (and empty when the range is inverted or not on
    /// UTF-8 boundaries).
    pub fn slice(&self, start: u32, end: u32) -> &str {
        let len = self.text.len();
        let start = (start as usize).min(len);
        let end = (end as usize).min(len);
        self.text.get(start..end).unwrap_or("")
    }

    /// The line index, shareable across consumers.
    pub fn line_index(&self) -> &Arc<LineIndex> {
        &self.index
    }

    /// The 1-based (line, byte-column) of byte `offset`.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        self.index.line_col(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line() {
        let idx = LineIndex::new("hello");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(4), (1, 5));
        assert_eq!(idx.line_count(), 1);
    }

    #[test]
    fn multi_line() {
        //                        0123 456 789
        let idx = LineIndex::new("ab\ncd\nef");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(2), (1, 3)); // the '\n' belongs to line 1
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (3, 2));
        assert_eq!(idx.line_count(), 3);
    }

    #[test]
    fn offsets_clamp_to_end() {
        let idx = LineIndex::new("ab\ncd");
        assert_eq!(idx.line_col(5), (2, 3));
        assert_eq!(idx.line_col(500), (2, 3));
    }

    #[test]
    fn empty_text() {
        let idx = LineIndex::new("");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_count(), 1);
        assert!(idx.is_empty());
    }

    #[test]
    fn trailing_newline_starts_a_line() {
        let idx = LineIndex::new("ab\n");
        assert_eq!(idx.line_count(), 2);
        assert_eq!(idx.line_col(3), (2, 1));
    }

    #[test]
    fn utf8_columns_are_byte_columns() {
        // 'é' is 2 bytes, '∆' is 3 — columns count bytes, exactly like the
        // old lexer's per-byte col tracking did.
        let text = "é∆x\ny";
        let idx = LineIndex::new(text);
        let x_off = text.find('x').unwrap() as u32;
        assert_eq!(idx.line_col(x_off), (1, 6));
        let y_off = text.find('y').unwrap() as u32;
        assert_eq!(idx.line_col(y_off), (2, 1));
    }

    #[test]
    fn source_map_slices_and_resolves() {
        let sm = SourceMap::new("contract C {\n  uint x;\n}");
        assert_eq!(sm.slice(0, 8), "contract");
        assert_eq!(sm.slice(15, 19), "uint");
        assert_eq!(sm.line_col(15), (2, 3));
        assert_eq!(sm.slice(0, 10_000), sm.text());
        let sm2 = sm.clone();
        assert_eq!(sm2.text(), sm.text());
    }
}
