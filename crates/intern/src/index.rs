//! Typed `u32` index newtypes for arena-backed graphs and tables.

/// Define a `u32` index newtype with the conversions and formatting an
/// arena-backed structure needs:
///
/// ```
/// intern::newtype_index!(
///     /// A node in some graph.
///     pub struct DemoId
/// );
/// let id = DemoId::from_usize(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "3");
/// ```
///
/// The raw field is public so existing code indexing by `.0` keeps
/// working.
#[macro_export]
macro_rules! newtype_index {
    ($(#[$meta:meta])* $vis:vis struct $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        $vis struct $name(pub u32);

        impl $name {
            /// Build from a `usize` position (panics if it overflows `u32`).
            #[inline]
            $vis fn from_usize(i: usize) -> $name {
                $name(u32::try_from(i).expect(concat!(stringify!($name), " overflowed u32")))
            }

            /// The index as a `usize`, for slice indexing.
            #[inline]
            $vis fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> $name {
                $name::from_usize(i)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    newtype_index!(
        /// Test index.
        pub struct TestId
    );

    #[test]
    fn roundtrip_and_ordering() {
        let a = TestId::from_usize(1);
        let b = TestId::from_usize(2);
        assert!(a < b);
        assert_eq!(a.index(), 1);
        assert_eq!(usize::from(b), 2);
        assert_eq!(TestId::from(7usize), TestId(7));
        assert_eq!(format!("{a}"), "1");
        assert_eq!(TestId::default(), TestId(0));
    }
}
