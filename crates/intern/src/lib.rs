//! Interning and arena support for the analysis frontend.
//!
//! The hand-written lexer, parser and CPG builder originally allocated a
//! `String` per token, identifier and node property. This crate provides
//! the allocation discipline that replaces all of that, mirroring the
//! data-structure layer of production Solidity frontends (cf. ROADMAP
//! item 1, the Solar compiler design):
//!
//! * [`Symbol`] — a `u32` handle to a process-wide, thread-safe string
//!   interner. Equality, hashing and map keys become integer-cheap; the
//!   text is recovered with [`Symbol::as_str`] (a `&'static str`).
//!   Well-known strings (builtins, normalization targets, property keys)
//!   are pre-interned with fixed ids in [`sym`], so hot comparisons
//!   compile to integer compares against constants.
//! * [`Bump`] — a chunked bump arena for byte/string allocation. The
//!   interner stores all symbol text in one; the CPG builder uses one as
//!   its code-printing scratch space.
//! * [`LineIndex`] / [`SourceMap`] — O(log n) resolution of `u32` byte
//!   offsets to 1-based line/column, replacing the per-token line/col
//!   fields the old lexer threaded through every `Span`.
//! * [`newtype_index!`] — typed `u32` index newtypes (`NodeId`, `EdgeId`,
//!   ...) for arena-backed graphs.
//!
//! Interned text is deliberately never freed: symbols are handles into an
//! append-only table that lives for the process. Telemetry counters
//! (`intern.symbols`, `intern.bytes`, `intern.bytes_deduped`) expose the
//! table's growth, so a long-running service can watch its working set.

#![warn(missing_docs)]

pub mod arena;
pub mod index;
pub mod source_map;
pub mod symbol;
pub mod table;

pub use arena::Bump;
pub use source_map::{LineIndex, SourceMap};
pub use table::StrTable;
pub use symbol::{
    intern_fmt, interner_stats, sym, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, Symbol,
    SymbolCache,
};
