//! A local, serializable string table.
//!
//! [`StrTable`] is the offline sibling of the process-wide [`crate::Symbol`]
//! interner: it deduplicates strings into dense `u32` ids, but it is owned
//! by one data structure, keeps insertion order, and exports to (and
//! rebuilds from) a flat `(blob, offsets)` layout. The index-store snapshot
//! format uses it for its string sections — every distinct N-gram and
//! fingerprint is written once to a contiguous blob, and fixed-width tables
//! reference it by `(offset, length)`.
//!
//! Unlike the global interner, nothing here is `'static` or process-wide:
//! a table dropped with its snapshot frees its text.

use crate::{FxBuildHasher, FxHashMap};

/// An insertion-ordered deduplicating string table with flat export.
#[derive(Debug, Default, Clone)]
pub struct StrTable {
    /// Concatenated UTF-8 text of every distinct string, in first-seen order.
    blob: String,
    /// Per-id `(byte offset, byte length)` into `blob`.
    spans: Vec<(u32, u32)>,
    /// Dedup map from text to id.
    ids: FxHashMap<Box<str>, u32>,
}

impl StrTable {
    /// An empty table.
    pub fn new() -> StrTable {
        StrTable::default()
    }

    /// Intern `text`, returning its dense id (existing id if seen before).
    ///
    /// Panics if the table would exceed `u32` ids or a 4 GiB blob — the
    /// snapshot format's fixed-width limits, far above any real corpus.
    pub fn intern(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.ids.get(text) {
            return id;
        }
        let id = u32::try_from(self.spans.len()).expect("StrTable id space exhausted");
        let off = u32::try_from(self.blob.len()).expect("StrTable blob exceeds 4 GiB");
        let len = u32::try_from(text.len()).expect("StrTable entry exceeds 4 GiB");
        self.blob.push_str(text);
        self.spans.push((off, len));
        self.ids.insert(text.into(), id);
        id
    }

    /// The text of `id`. Panics on an id this table never produced.
    pub fn get(&self, id: u32) -> &str {
        let (off, len) = self.spans[id as usize];
        &self.blob[off as usize..(off + len) as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The concatenated text blob (export: write verbatim to disk).
    pub fn blob(&self) -> &str {
        &self.blob
    }

    /// Per-id `(offset, length)` spans into [`StrTable::blob`], in id order
    /// (export: the fixed-width companion table).
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Rebuild a table from an exported `(blob, spans)` pair.
    ///
    /// Returns `None` if any span is out of bounds or splits a UTF-8
    /// character — the snapshot loader maps that to a typed
    /// `index_corrupt` error instead of panicking on hostile bytes.
    pub fn from_parts(blob: String, spans: Vec<(u32, u32)>) -> Option<StrTable> {
        let mut ids =
            FxHashMap::with_capacity_and_hasher(spans.len(), FxBuildHasher::default());
        for (id, &(off, len)) in spans.iter().enumerate() {
            let (start, end) = (off as usize, off as usize + len as usize);
            if end > blob.len() || !blob.is_char_boundary(start) || !blob.is_char_boundary(end)
            {
                return None;
            }
            ids.insert(blob[start..end].into(), id as u32);
        }
        Some(StrTable { blob, spans, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_preserves_order() {
        let mut t = StrTable::new();
        assert_eq!(t.intern("abc"), 0);
        assert_eq!(t.intern("de"), 1);
        assert_eq!(t.intern("abc"), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), "abc");
        assert_eq!(t.get(1), "de");
        assert_eq!(t.blob(), "abcde");
    }

    #[test]
    fn export_import_roundtrip() {
        let mut t = StrTable::new();
        for s in ["gram", "other", "héllo", ""] {
            t.intern(s);
        }
        let rebuilt =
            StrTable::from_parts(t.blob().to_string(), t.spans().to_vec()).expect("valid parts");
        assert_eq!(rebuilt.len(), t.len());
        for id in 0..t.len() as u32 {
            assert_eq!(rebuilt.get(id), t.get(id));
        }
        // Dedup map survives the roundtrip: re-interning returns old ids.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.intern("other"), 1);
    }

    #[test]
    fn corrupt_spans_are_rejected_not_panics() {
        // Out of bounds.
        assert!(StrTable::from_parts("abc".into(), vec![(1, 5)]).is_none());
        // Splits a multi-byte character.
        assert!(StrTable::from_parts("é".into(), vec![(0, 1)]).is_none());
        // Offset past the end.
        assert!(StrTable::from_parts("abc".into(), vec![(4, 0)]).is_none());
    }
}
