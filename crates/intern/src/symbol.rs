//! The string interner and its `Symbol` handles.
//!
//! One process-wide interner lives behind [`Symbol::intern`]: a sharded
//! hash map from string to id plus an append-only id → `&'static str`
//! table whose bytes sit in a [`Bump`](crate::Bump) arena that is never
//! freed. Interning is a hash lookup (and, for new strings, one arena
//! copy); resolving is an index load behind a read lock; comparing,
//! hashing and storing symbols is integer work.

use crate::arena::Bump;
use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use telemetry::Counter;

/// Unique strings interned so far (well-known prefill included).
static SYMBOLS: Counter = Counter::new("intern.symbols");
/// Bytes of unique string text stored in the interner arena.
static BYTES: Counter = Counter::new("intern.bytes");
/// Bytes of re-interned text that hit the table instead of allocating.
static BYTES_DEDUPED: Counter = Counter::new("intern.bytes_deduped");

/// An interned string: a `u32` handle whose equality, hashing and copying
/// are integer operations. Resolve with [`Symbol::as_str`]; `Deref<Target
/// = str>` makes `str` methods (`starts_with`, `len`, ...) work directly.
///
/// Ordering is **by text** (so sorted output matches the pre-interning
/// `String` order), while equality and hashing are by id — consistent,
/// since ids and texts are bijective.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern `s`, returning its symbol. The same text always returns the
    /// same symbol for the life of the process.
    ///
    /// A thread-local cache sits in front of the sharded global tables:
    /// repeat interns of the same text (the overwhelmingly common case —
    /// identifiers recur constantly within a source) cost one `FxHash`
    /// and one probe, with no lock and no atomics. Only first sightings
    /// per thread take the global path. Cache hits bypass the
    /// `intern.bytes_deduped` telemetry counter, which therefore counts
    /// cross-thread dedup only.
    pub fn intern(s: &str) -> Symbol {
        thread_local! {
            static CACHE: std::cell::RefCell<HashMap<&'static str, Symbol, FxBuildHasher>> =
                RefCell::new(HashMap::with_capacity_and_hasher(
                    2048,
                    FxBuildHasher::default(),
                ));
        }
        CACHE.with(|cache| match cache.try_borrow_mut() {
            Ok(mut cache) => {
                if let Some(&sym) = cache.get(s) {
                    return sym;
                }
                let sym = interner().intern(s);
                cache.insert(sym.as_str(), sym);
                sym
            }
            // Re-entrant call (e.g. from a `Debug` impl running inside
            // this frame): fall through to the global tables.
            Err(_) => interner().intern(s),
        })
    }

    /// The interned text. The returned reference is `'static`: symbol
    /// text is never freed.
    #[inline]
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }

    /// The raw id (the index into the intern table).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Whether this is the empty-string symbol.
    pub fn is_empty_sym(self) -> bool {
        self == sym::EMPTY
    }
}

impl Default for Symbol {
    fn default() -> Symbol {
        sym::EMPTY
    }
}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl serde::Serialize for Symbol {}
impl<'de> serde::Deserialize<'de> for Symbol {}

/// A fast, non-cryptographic hasher (FxHash-style multiply-xor), used for
/// the intern shards where DoS resistance is irrelevant and speed is not.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(SEED);
    }

    fn write_u32(&mut self, value: u32) {
        self.hash = (self.hash.rotate_left(5) ^ value as u64).wrapping_mul(SEED);
    }

    fn write_u64(&mut self, value: u64) {
        self.hash = (self.hash.rotate_left(5) ^ value).wrapping_mul(SEED);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`] — the right default for `Symbol` (and
/// other integer-like) keys on hot paths, where SipHash's per-hash setup
/// dominates the actual hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Intern the formatted text of `args` without materializing an
/// intermediate `String`: formatting lands in a thread-local scratch
/// buffer that is reused across calls.
///
/// ```
/// let s = intern::intern_fmt(format_args!("{} {}", "struct", "Point"));
/// assert_eq!(s.as_str(), "struct Point");
/// ```
pub fn intern_fmt(args: fmt::Arguments<'_>) -> Symbol {
    thread_local! {
        static SCRATCH: std::cell::RefCell<String> =
            const { std::cell::RefCell::new(String::new()) };
    }
    SCRATCH.with(|cell| {
        let Ok(mut buf) = cell.try_borrow_mut() else {
            // Re-entrant formatting (a `Display` impl that itself calls
            // `intern_fmt`): fall back to a fresh allocation.
            return Symbol::intern(&args.to_string());
        };
        buf.clear();
        fmt::Write::write_fmt(&mut *buf, args).expect("formatting into a String cannot fail");
        Symbol::intern(&buf)
    })
}

/// Slots in a [`SymbolCache`]; must be a power of two.
const SYMBOL_CACHE_SLOTS: usize = 2048;

/// A direct-mapped memo in front of [`Symbol::intern`] for tight loops.
///
/// [`Symbol::intern`] already keeps a thread-local hash map, but a map
/// probe (hash, bucket walk, key compare, `RefCell` discipline) is still
/// the dominant cost when interning every identifier of a source file.
/// This cache is one hash and one slot compare: hash the text, index a
/// fixed-size slot array, verify the hit by comparing against the slot
/// symbol's text. Collisions simply overwrite the slot — the worst case
/// is a redundant probe of the thread-local map, never a wrong symbol.
///
/// Intended use: own one per thread (or borrow a thread-local one) and
/// pass `&mut` into the hot loop, as the lexer does.
pub struct SymbolCache {
    /// `(text hash, symbol)` pairs; an empty slot is `(0, sym::EMPTY)`,
    /// which is self-consistent because the empty string hashes to 0.
    slots: Box<[(u64, Symbol); SYMBOL_CACHE_SLOTS]>,
}

impl SymbolCache {
    /// Create an empty cache.
    pub fn new() -> SymbolCache {
        SymbolCache { slots: Box::new([(0, sym::EMPTY); SYMBOL_CACHE_SLOTS]) }
    }

    /// Intern `s`, consulting the direct-mapped memo first.
    #[inline]
    pub fn intern(&mut self, s: &str) -> Symbol {
        let mut hasher = FxHasher::default();
        hasher.write(s.as_bytes());
        let hash = hasher.finish();
        let slot = &mut self.slots[hash as usize & (SYMBOL_CACHE_SLOTS - 1)];
        if slot.0 == hash && slot.1.as_str() == s {
            return slot.1;
        }
        let sym = Symbol::intern(s);
        *slot = (hash, sym);
        sym
    }
}

impl Default for SymbolCache {
    fn default() -> SymbolCache {
        SymbolCache::new()
    }
}

const SHARD_COUNT: usize = 16;

/// Symbols per chunk of the lock-free id → text table.
const TABLE_CHUNK: usize = 1 << 12;
/// Maximum number of chunks (bounds the table at ~16.7M symbols).
const TABLE_CHUNKS: usize = 1 << 12;

/// Append-only id → `&'static str` table with lock-free reads.
///
/// Texts live in fixed-size heap chunks that are allocated on demand and
/// never moved or freed, so a reader only needs one atomic chunk-pointer
/// load and one indexed load — no lock on the resolve path, which runs on
/// every `Symbol::as_str` (and therefore inside every text comparison).
/// Appends are serialized by the caller (the interner's storage lock).
struct Table {
    chunks: [AtomicPtr<&'static str>; TABLE_CHUNKS],
    len: AtomicUsize,
}

impl Table {
    fn new() -> Table {
        Table {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
        }
    }

    /// Append `s`, returning its id. Caller must hold the interner's
    /// storage lock: appends are serialized, only reads are lock-free.
    fn push(&self, s: &'static str) -> u32 {
        let id = self.len.load(Ordering::Relaxed);
        let (chunk_idx, slot) = (id / TABLE_CHUNK, id % TABLE_CHUNK);
        assert!(chunk_idx < TABLE_CHUNKS, "interner overflowed the symbol table");
        let mut chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            let boxed: Box<[&'static str; TABLE_CHUNK]> = Box::new([""; TABLE_CHUNK]);
            chunk = Box::into_raw(boxed).cast::<&'static str>();
            self.chunks[chunk_idx].store(chunk, Ordering::Release);
        }
        // SAFETY: `slot < TABLE_CHUNK`, the chunk was allocated with that
        // exact length, and appends are serialized by the storage lock, so
        // no other thread writes this slot.
        unsafe { chunk.add(slot).write(s) };
        self.len.store(id + 1, Ordering::Release);
        u32::try_from(id).expect("interner overflowed u32 symbols")
    }

    /// Read the text of id `id`. Lock-free.
    ///
    /// Sound for any id obtained from [`Table::push`]: the slot write
    /// happens-before the release of the `Symbol` to the caller, and
    /// passing a symbol between threads requires a synchronizing edge
    /// that carries the write along.
    #[inline]
    fn get(&self, id: u32) -> &'static str {
        let id = id as usize;
        let chunk = self.chunks[id / TABLE_CHUNK].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null() && id < self.len.load(Ordering::Acquire));
        // SAFETY: ids are only handed out by `push`, which initialized
        // this slot in an already-installed chunk.
        unsafe { chunk.add(id % TABLE_CHUNK).read() }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

struct Interner {
    /// text → symbol, sharded by text hash to cut cross-thread contention.
    shards: [Mutex<HashMap<&'static str, Symbol, FxBuildHasher>>; SHARD_COUNT],
    /// id → text. Append-only, lock-free reads.
    strings: Table,
    /// Backing bytes for every interned string. Never freed: the interner
    /// is a process singleton, which is what makes the `&'static`
    /// promotion in `intern` sound. This lock also serializes appends to
    /// `strings`.
    storage: Mutex<Bump>,
}

fn interner() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let interner = Interner {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            strings: Table::new(),
            storage: Mutex::new(Bump::new()),
        };
        for (i, text) in WELL_KNOWN.iter().enumerate() {
            let sym = interner.intern(text);
            assert_eq!(
                sym.0 as usize, i,
                "well-known symbol {text:?} interned out of order"
            );
        }
        interner
    })
}

impl Interner {
    fn shard_of(&self, s: &str) -> usize {
        let mut hasher = FxHasher::default();
        s.hash(&mut hasher);
        (hasher.finish() as usize) % SHARD_COUNT
    }

    fn intern(&self, s: &str) -> Symbol {
        let shard = &self.shards[self.shard_of(s)];
        let mut map = shard.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&sym) = map.get(s) {
            BYTES_DEDUPED.add(s.len() as u64);
            return sym;
        }
        let id = {
            let storage = self.storage.lock().unwrap_or_else(|p| p.into_inner());
            let copied = storage.alloc_str(s);
            // SAFETY: `storage` belongs to the process-global interner
            // created in `interner()`'s OnceLock, which is never dropped,
            // and the Bump arena never frees or moves its chunks. The
            // string therefore lives for the rest of the process.
            let stored: &'static str = unsafe { &*(copied as *const str) };
            // Append while still holding the storage lock, which doubles
            // as the table's append serializer.
            self.strings.push(stored)
        };
        let sym = Symbol(id);
        map.insert(self.strings.get(id), sym);
        SYMBOLS.incr();
        BYTES.add(s.len() as u64);
        sym
    }

    #[inline]
    fn resolve(&self, sym: Symbol) -> &'static str {
        self.strings.get(sym.0)
    }
}

/// Current interner statistics: `(unique symbols, unique bytes stored)`.
/// Unlike the telemetry counters these are exact even when telemetry is
/// disabled.
pub fn interner_stats() -> (usize, usize) {
    let i = interner();
    let symbols = i.strings.len();
    let bytes = i.storage.lock().unwrap_or_else(|p| p.into_inner()).allocated_bytes();
    (symbols, bytes)
}

macro_rules! well_known {
    ($($name:ident => $text:literal,)+) => {
        /// Texts of the pre-interned symbols, in id order.
        const WELL_KNOWN: &[&str] = &[$($text),+];

        #[allow(non_camel_case_types, dead_code, clippy::upper_case_acronyms)]
        #[repr(u32)]
        enum WkIdx { $($name),+ }

        /// Pre-interned well-known symbols with fixed ids: comparisons
        /// against these constants are integer compares with no hashing
        /// or locking.
        #[allow(missing_docs)] // each constant names the string it holds
        pub mod sym {
            use super::{Symbol, WkIdx};
            $(pub const $name: Symbol = Symbol(WkIdx::$name as u32);)+
        }
    };
}

well_known! {
    // The empty string is symbol 0, the `Default` symbol.
    EMPTY => "",
    // Normalization replacement names (ccd::normalize).
    C => "c",
    L => "l",
    I => "i",
    F => "f",
    M => "m",
    S => "s",
    E => "e",
    ERR => "err",
    UNDERSCORE => "_",
    STRING_LITERAL => "stringLiteral",
    MAPPING => "mapping",
    UINT => "uint",
    // Builtin globals and members the detectors and normalizer compare
    // against (msg.sender guards, transfer/call targets, ...).
    MSG => "msg",
    TX => "tx",
    BLOCK => "block",
    NOW => "now",
    THIS => "this",
    SUPER => "super",
    ABI => "abi",
    SENDER => "sender",
    VALUE => "value",
    DATA => "data",
    SIG => "sig",
    GAS => "gas",
    ORIGIN => "origin",
    GASPRICE => "gasprice",
    TIMESTAMP => "timestamp",
    NUMBER => "number",
    DIFFICULTY => "difficulty",
    COINBASE => "coinbase",
    GASLIMIT => "gaslimit",
    BLOCKHASH => "blockhash",
    TRANSFER => "transfer",
    SEND => "send",
    CALL => "call",
    DELEGATECALL => "delegatecall",
    CALLCODE => "callcode",
    STATICCALL => "staticcall",
    LENGTH => "length",
    PUSH => "push",
    POP => "pop",
    BALANCE => "balance",
    REQUIRE => "require",
    ASSERT => "assert",
    REVERT => "revert",
    THROW => "throw",
    SELFDESTRUCT => "selfdestruct",
    SUICIDE => "suicide",
    KECCAK256 => "keccak256",
    SHA3 => "sha3",
    SHA256 => "sha256",
    RIPEMD160 => "ripemd160",
    ECRECOVER => "ecrecover",
    ADDMOD => "addmod",
    MULMOD => "mulmod",
    GASLEFT => "gasleft",
    TYPE => "type",
    OWNER => "owner",
    // Member paths matched as whole `code` strings by the queries.
    MSG_SENDER => "msg.sender",
    MSG_VALUE => "msg.value",
    MSG_DATA => "msg.data",
    TX_ORIGIN => "tx.origin",
    BLOCK_TIMESTAMP => "block.timestamp",
    BLOCK_NUMBER => "block.number",
    // CPG property keys (graphquery lookups). "value" and "type" are
    // already interned above.
    CODE => "code",
    LOCAL_NAME => "localName",
    OPERATOR_CODE => "operatorCode",
    INDEX_KEY => "index",
    IS_INFERRED => "isInferred",
    KIND_KEY => "kind",
    VISIBILITY => "visibility",
    PRAGMA => "pragma",
    FN_KIND => "fn_kind",
    // Builder `extra` keys and unit facts.
    CONSTANT => "constant",
    MUTABILITY => "mutability",
    MODIFIERS => "modifiers",
    UNCHECKED => "unchecked",
    PREFIX => "prefix",
    SOLIDITY08 => "solidity08",
    SAFEMATH => "safemath",
    // Common literal/visibility texts.
    TRUE => "true",
    FALSE => "false",
    PUBLIC => "public",
    PRIVATE => "private",
    INTERNAL => "internal",
    EXTERNAL => "external",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_symbol() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn roundtrip_many() {
        let texts: Vec<String> = (0..5_000).map(|i| format!("roundtrip-{i}")).collect();
        let syms: Vec<Symbol> = texts.iter().map(|t| Symbol::intern(t)).collect();
        for (t, s) in texts.iter().zip(&syms) {
            assert_eq!(s.as_str(), t);
            assert_eq!(*s, Symbol::intern(t));
        }
    }

    #[test]
    fn well_known_have_fixed_ids() {
        assert_eq!(sym::EMPTY.as_u32(), 0);
        assert_eq!(sym::EMPTY.as_str(), "");
        assert_eq!(sym::MSG_SENDER.as_str(), "msg.sender");
        assert_eq!(sym::REQUIRE.as_str(), "require");
        assert_eq!(Symbol::intern("msg.sender"), sym::MSG_SENDER);
        assert_eq!(Symbol::default(), sym::EMPTY);
        // Fixed ids really are fixed: the table prefix is WELL_KNOWN.
        for (i, text) in WELL_KNOWN.iter().enumerate() {
            assert_eq!(Symbol::intern(text).as_u32() as usize, i);
        }
    }

    #[test]
    fn ordering_is_textual() {
        let mut syms = [
            Symbol::intern("pear"),
            Symbol::intern("apple"),
            Symbol::intern("banana"),
        ];
        syms.sort();
        let texts: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(texts, ["apple", "banana", "pear"]);
    }

    #[test]
    fn deref_and_str_compares() {
        let s = Symbol::intern("msg.sender");
        assert!(s.starts_with("msg."));
        assert_eq!(s.len(), 10);
        assert!(s == "msg.sender");
        assert!("msg.sender" == s);
        assert_eq!(format!("{s}"), "msg.sender");
        assert_eq!(format!("{s:?}"), "\"msg.sender\"");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..1_000)
                        .map(|i| Symbol::intern(&format!("concurrent-{}", (i + t) % 500)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                assert!(s.as_str().starts_with("concurrent-"));
            }
        }
        // Same text interned from different threads yields the same id.
        assert_eq!(
            Symbol::intern("concurrent-0"),
            Symbol::intern("concurrent-0")
        );
    }

    #[test]
    fn stats_grow() {
        let (before_syms, before_bytes) = interner_stats();
        Symbol::intern("stats-growth-probe-unique-string");
        let (after_syms, after_bytes) = interner_stats();
        assert!(after_syms > before_syms);
        assert!(after_bytes > before_bytes);
    }
}
