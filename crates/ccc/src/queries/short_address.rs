//! Short Address queries (Listings 5 and 6 of Appendix B).
//!
//! A transaction whose last argument is an address can be padded by the EVM
//! when the caller sends a truncated address, shifting the remaining
//! calldata. Functions taking an `address` parameter *before* an amount
//! parameter are exposed when both reach a transfer (call-site variant,
//! Listing 5) or a state write (state variant, Listing 6).

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, NodeId, NodeKind};

/// Parameters of the function enclosing `node`, ordered by index.
fn params_of(ctx: &Ctx, function: NodeId) -> Vec<NodeId> {
    let mut params: Vec<NodeId> = ctx
        .cpg
        .graph
        .ast_children_role(function, AstRole::Parameters)
        .collect();
    params.sort_by_key(|p| ctx.cpg.graph.node(*p).props.index.unwrap_or(usize::MAX));
    params
}

fn is_address_param(ctx: &Ctx, param: NodeId) -> bool {
    ctx.cpg
        .graph
        .node(param)
        .props
        .ty
        .as_deref()
        .map(|t| t.starts_with("address"))
        .unwrap_or(false)
}

/// The vulnerable parameter pair, if any: an address parameter at a lower
/// index than an integer amount parameter, both flowing into `sink`.
fn padded_pair(ctx: &Ctx, function: NodeId, sink: NodeId) -> Option<(NodeId, NodeId)> {
    let params = params_of(ctx, function);
    let sources = ctx.dfg_sources(sink);
    let mut address = None;
    let mut amount = None;
    for param in &params {
        if !sources.contains(param) {
            continue;
        }
        let props = &ctx.cpg.graph.node(*param).props;
        if is_address_param(ctx, *param) && address.is_none() {
            address = Some((*param, props.index.unwrap_or(0)));
        } else if props.ty.as_deref().map(|t| t.starts_with("uint") || t.starts_with("int")).unwrap_or(false)
        {
            amount = Some((*param, props.index.unwrap_or(0)));
        }
    }
    match (address, amount) {
        (Some((a, ai)), Some((m, mi))) if ai < mi => Some((a, m)),
        _ => None,
    }
}

/// Whether the function validates calldata length (the standard
/// `onlyPayloadSize` mitigation) — a guard involving `msg.data`.
fn validates_payload(ctx: &Ctx, sink: NodeId) -> bool {
    ctx.guards_before(sink)
        .into_iter()
        .any(|guard| ctx.guard_involves(guard, &["msg.data", "msg.data.length"]))
}

/// Listing 5 — address padding issues at call sites: both parameters reach
/// an external transfer call.
pub fn at_call_sites(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for call in ctx.calls_named(&["transfer", "send", "call", "transferFrom"]) {
        if !ctx.is_external_call(call) && ctx.cpg.graph.node(call).props.local_name != "transferFrom" {
            continue;
        }
        let Some(function) = ctx.function_of(call) else { continue };
        if !ctx.is_externally_callable(function) || ctx.in_constructor(call) {
            continue;
        }
        if padded_pair(ctx, function, call).is_none() {
            continue;
        }
        if validates_payload(ctx, call) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::ShortAddressCall, call));
    }
    findings
}

/// Listing 6 — writes to contract state vulnerable to address padding: the
/// address parameter keys a mapping write whose value comes from a
/// later amount parameter (classic vulnerable `transfer(address,uint)`
/// token implementations).
pub fn at_state_writes(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (writer, _field) in ctx.field_writes() {
        if ctx.cpg.graph.node(writer).kind != NodeKind::SubscriptExpression {
            continue;
        }
        let Some(function) = ctx.function_of(writer) else { continue };
        if !ctx.is_externally_callable(function) || ctx.in_constructor(writer) {
            continue;
        }
        // The subscript index is an address parameter; the written value
        // comes from a later integer parameter.
        let Some(index_node) = ctx
            .cpg
            .graph
            .ast_child(writer, AstRole::SubscriptExpression)
        else {
            continue;
        };
        let params = params_of(ctx, function);
        let index_sources = ctx.dfg_sources(index_node);
        let addr = params.iter().find(|p| {
            is_address_param(ctx, **p) && (index_sources.contains(*p) || index_node == **p)
        });
        let Some(addr) = addr else { continue };
        let addr_index = ctx.cpg.graph.node(*addr).props.index.unwrap_or(0);
        // The assignment writing through the subscript.
        let value_sources: std::collections::HashSet<NodeId> =
            ctx.dfg_sources(writer).into_iter().collect();
        let amount_after = params.iter().any(|p| {
            let props = &ctx.cpg.graph.node(*p).props;
            props.index.unwrap_or(0) > addr_index
                && props.ty.as_deref().map(|t| t.starts_with("uint") || t.starts_with("int")).unwrap_or(false)
                && value_sources.contains(p)
        });
        if !amount_after {
            continue;
        }
        if validates_payload(ctx, writer) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::ShortAddressStateWrite, writer));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str, f: fn(&Ctx) -> Vec<Finding>) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        f(&ctx)
    }

    #[test]
    fn vulnerable_transfer_call_site() {
        let findings = check(
            "contract C { function pay(address to, uint amount) public { \
               to.transfer(amount); } }",
            at_call_sites,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn payload_size_check_mitigates_call_site() {
        let findings = check(
            "contract C { function pay(address to, uint amount) public { \
               require(msg.data.length == 68); to.transfer(amount); } }",
            at_call_sites,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn amount_before_address_is_clean() {
        let findings = check(
            "contract C { function pay(uint amount, address to) public { \
               to.transfer(amount); } }",
            at_call_sites,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn vulnerable_token_transfer_state_write() {
        let findings = check(
            "contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               balances[msg.sender] -= value; \
               balances[to] += value; } }",
            at_state_writes,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn payload_check_mitigates_state_write() {
        let findings = check(
            "contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               require(msg.data.length >= 68); \
               balances[to] += value; } }",
            at_state_writes,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn internal_function_is_clean() {
        let findings = check(
            "contract Token { mapping(address => uint) balances; \
             function move_(address to, uint value) internal { \
               balances[to] += value; } }",
            at_state_writes,
        );
        assert!(findings.is_empty());
    }
}
