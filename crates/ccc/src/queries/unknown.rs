//! Unknown Unknowns query (Listing 15 of Appendix B): writes to local
//! structs that can unintentionally overwrite state variables.
//!
//! Before Solidity 0.5, a local struct or array declared without a data
//! location defaulted to `storage` — an *uninitialized storage pointer*
//! aliasing slot 0. Writing through it silently corrupts the first state
//! variables (a classic honeypot trick, cf. `Uninitialised Struct`).

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeKind};

/// Listing 15 — uninitialized local storage declarations that are written.
pub fn uninitialized_storage_pointer(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();

    // User-defined struct names declared in the unit.
    let struct_names: Vec<intern::Symbol> = g
        .nodes_of_kind(NodeKind::RecordDeclaration)
        .filter(|r| g.node(*r).props.record_kind.as_deref() == Some("struct"))
        .map(|r| g.node(r).props.local_name)
        .collect();

    for decl in g.nodes_of_kind(NodeKind::VariableDeclaration) {
        let node = g.node(decl);
        let storage_kw = node.props.extra.get("storage").map(|s| s.as_str());
        // Explicit memory/calldata is safe.
        if matches!(storage_kw, Some("memory") | Some("calldata")) {
            continue;
        }
        let ty = node.props.ty.unwrap_or_default();
        let is_aliasing_type = storage_kw == Some("storage")
            || struct_names.contains(&ty)
            || ty.ends_with("[]");
        if !is_aliasing_type {
            continue;
        }
        // Must be uninitialized: no INITIALIZER edge.
        if g.ast_child(decl, AstRole::Initializer).is_some() {
            continue;
        }
        // Must be written in a non-constructor function.
        let written = g.in_kind(decl, EdgeKind::Dfg).any(|writer| {
            matches!(
                g.node(writer).kind,
                NodeKind::DeclaredReferenceExpression
                    | NodeKind::MemberExpression
                    | NodeKind::SubscriptExpression
            ) && !ctx.in_constructor(writer)
        });
        if !written {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::UninitializedStoragePointer, decl));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        uninitialized_storage_pointer(&ctx)
    }

    #[test]
    fn uninitialized_struct_write_is_flagged() {
        let findings = check(
            "contract Wallet { address owner; uint unlockTime; \
             struct Deposit { uint amount; uint time; } \
             function deposit() public payable { \
               Deposit d; \
               d.amount = msg.value; \
               d.time = block.timestamp; } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn memory_struct_is_clean() {
        let findings = check(
            "contract Wallet { struct Deposit { uint amount; } \
             function deposit() public payable { \
               Deposit memory d; \
               d.amount = msg.value; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn initialized_storage_pointer_is_clean() {
        let findings = check(
            "contract Wallet { struct Deposit { uint amount; } \
             Deposit[] deposits; \
             function touch(uint i) public { \
               Deposit storage d = deposits[i]; \
               d.amount = 1; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn plain_value_local_is_clean() {
        let findings = check("function f() public { uint x; x = 1; }");
        assert!(findings.is_empty());
    }
}
