//! Denial of Service queries (Listings 8, 9, 11 and 13 of Appendix B).

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeId, NodeKind};

/// Whether a call's failure reverts the whole transaction: `transfer`
/// reverts intrinsically; `send`/`call` revert when their result feeds a
/// `require`/`assert` or a branch that rolls back.
fn failure_reverts(ctx: &Ctx, call: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    if g.node(call).props.local_name == "transfer" {
        return true;
    }
    let forward = g.reach_forward(call, |k| k == EdgeKind::Dfg, ctx.max_path);
    forward.into_iter().any(|n| {
        let node = g.node(n);
        match node.kind {
            NodeKind::CallExpression => {
                matches!(node.props.local_name.as_str(), "require" | "assert")
            }
            // `if (!ok) revert/throw` — the branch leads to a rollback.
            NodeKind::IfStatement => g
                .reach_forward(n, |k| k == EdgeKind::Eog, 8)
                .into_iter()
                .any(|m| g.node(m).kind == NodeKind::Rollback),
            _ => false,
        }
    })
}

/// Whether the call target is not attacker-chosen *per se* but stored or
/// external — i.e. a third party can make the call fail (contract without
/// payable fallback, reverting fallback, ...).
fn target_is_external(ctx: &Ctx, call: NodeId) -> bool {
    ctx.call_base(call).is_some()
}

/// Listing 8 — external calls whose failure prevents execution of other
/// money-transferring calls.
///
/// Base pattern: a revert-on-failure transfer EOG-followed by another
/// transfer. A single receiver that always reverts then blocks everyone
/// else's payout.
pub fn external_call_blocks_transfers(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for call in ctx.ether_transfers() {
        if !failure_reverts(ctx, call) || !target_is_external(ctx, call) {
            continue;
        }
        let after = g.reach_forward(call, |k| k == EdgeKind::Eog, ctx.max_path);
        let blocks_another = after.into_iter().any(|n| {
            n != call && g.node(n).kind == NodeKind::CallExpression && ctx.is_ether_transfer(n)
        });
        // A transfer inside a loop blocks the *other iterations'* transfers.
        let in_loop = g
            .enclosing(call, |n| n.kind.is_loop())
            .is_some();
        if blocks_another || in_loop {
            findings.push(Finding::new(ctx, QueryId::DosExternalCallTransfer, call));
        }
    }
    findings
}

/// Listing 9 — external calls whose failure prevents state changes.
///
/// Base pattern: a revert-on-failure external call EOG-followed by a field
/// write; if the call permanently fails, the state transition is wedged.
/// Mitigation: the state write happening before the call, or the call
/// result being stored instead of asserted (pull-payment pattern).
pub fn external_call_blocks_state(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for call in ctx.calls_named(&["call", "send", "transfer"]) {
        if !target_is_external(ctx, call) || !failure_reverts(ctx, call) {
            continue;
        }
        // Skip calls targeting msg.sender directly: the caller can only
        // wedge themselves, not third parties.
        if let Some(base) = ctx.call_base(call) {
            let base_code = ctx.cpg.graph.node(base).props.code.as_str();
            if base_code == "msg.sender" && !in_loop(ctx, call) {
                continue;
            }
        }
        let after = g.reach_forward(call, |k| k == EdgeKind::Eog, ctx.max_path);
        let field_write_after = ctx
            .field_writes()
            .into_iter()
            .any(|(writer, _)| after.contains(&writer));
        if field_write_after {
            findings.push(Finding::new(ctx, QueryId::DosExternalCallState, call));
        }
    }
    findings
}

fn in_loop(ctx: &Ctx, node: NodeId) -> bool {
    ctx.cpg.graph.enclosing(node, |n| n.kind.is_loop()).is_some()
}

/// Listing 11 — expensive loops that an attacker can inflate.
///
/// Base pattern: a loop whose body writes state or performs calls (gas per
/// iteration). Conditions of relevancy: the iteration count is bounded by a
/// large literal (> 100) or by attacker-influenced data (parameter or
/// growable collection length).
pub fn expensive_loop(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for l in g.node_ids().filter(|n| g.node(*n).kind.is_loop()) {
        // Body cost: a state write, external call or emit inside the loop.
        let body = g.descendants(l);
        let expensive = body.iter().any(|n| {
            let node = g.node(*n);
            match node.kind {
                NodeKind::CallExpression => !matches!(
                    node.props.local_name.as_str(),
                    "require" | "assert" | "keccak256" | "sha3"
                ),
                NodeKind::EmitStatement => true,
                _ => false,
            }
        }) || ctx
            .field_writes()
            .into_iter()
            .any(|(writer, _)| body.contains(&writer));
        if !expensive {
            continue;
        }
        let Some(cond) = g.ast_child(l, AstRole::Condition) else { continue };
        // Large literal bound.
        let large_literal = ctx.dfg_sources(cond).into_iter().chain([cond]).any(|n| {
            let node = g.node(n);
            node.kind == NodeKind::Literal
                && node
                    .props
                    .value
                    .as_deref()
                    .and_then(|v| v.parse::<u128>().ok())
                    .map(|v| v > 100)
                    .unwrap_or(false)
        });
        // Attacker-influenced bound: a public parameter or a collection
        // length (via `.length` member) flows into the condition.
        let param_bound = ctx.flows_from_public_param(cond).is_some();
        let collection_bound = ctx
            .dfg_sources(cond)
            .into_iter()
            .any(|n| g.node(n).props.local_name == "length");
        if !(large_literal || param_bound || collection_bound) {
            continue;
        }
        // Mitigation: a converging loop that only runs in a constructor.
        if ctx.in_constructor(l) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::DosExpensiveLoop, l));
    }
    findings
}

/// Listing 13 — collections that are used for transfers and can be cleared
/// outside contract initialization.
///
/// If anyone can clear (or an owner can griefingly clear) the array that a
/// payout loop iterates, pending payouts are destroyed.
pub fn clearable_collection(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for field in g.nodes_of_kind(NodeKind::FieldDeclaration) {
        let is_collection = g
            .node(field)
            .props
            .ty
            .as_deref()
            .map(|t| t.ends_with("[]") || t.starts_with("mapping("))
            .unwrap_or(false);
        if !is_collection {
            continue;
        }
        // Used for transfers: field data flows into a transferring call.
        let feeds_transfer = g
            .reach_forward(field, |k| k == EdgeKind::Dfg, ctx.max_path)
            .into_iter()
            .any(|n| g.node(n).kind == NodeKind::CallExpression && ctx.is_ether_transfer(n));
        if !feeds_transfer {
            continue;
        }
        // Cleared outside a constructor: a `delete` on the *whole*
        // collection, a `.length = 0` write, or wholesale reassignment.
        // Writes to single entries (`balances[x] = 0`) are normal
        // bookkeeping, not clearing.
        let cleared = g.references_of(field).chain(g.in_kind(field, EdgeKind::Dfg)).find(|r| {
            if ctx.in_constructor(*r) {
                return false;
            }
            let whole_collection = match g.node(*r).kind {
                NodeKind::DeclaredReferenceExpression => true,
                NodeKind::MemberExpression => g.node(*r).props.local_name == "length",
                _ => false,
            };
            if !whole_collection {
                return false;
            }
            // delete collection;
            let deleted = g.in_kind(*r, EdgeKind::Ast(AstRole::Input)).any(|op| {
                g.node(op).props.operator_code.as_deref() == Some("delete")
            });
            // collection.length = 0; or collection = new ...;
            let reassigned = g
                .in_kind(*r, EdgeKind::Dfg)
                .any(|op| {
                    let node = g.node(op);
                    node.kind == NodeKind::BinaryOperator
                        && node.props.operator_code.as_deref() == Some("=")
                        && !ctx.in_constructor(op)
                });
            deleted || reassigned
        });
        if let Some(clear_site) = cleared {
            findings.push(Finding::new(ctx, QueryId::DosClearableCollection, clear_site));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str, f: fn(&Ctx) -> Vec<Finding>) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        f(&ctx)
    }

    #[test]
    fn payout_loop_is_flagged() {
        let findings = check(
            "contract C { address[] winners; mapping(address => uint) prizes; \
             function payAll(uint n) public { \
               for (uint i = 0; i < n; i++) { \
                 winners[i].transfer(prizes[winners[i]]); } } }",
            external_call_blocks_transfers,
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn single_withdraw_to_sender_is_clean() {
        let findings = check(
            "contract C { mapping(address => uint) balances; \
             function withdraw() public { \
               uint amount = balances[msg.sender]; \
               balances[msg.sender] = 0; \
               msg.sender.transfer(amount); } }",
            external_call_blocks_transfers,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn king_of_ether_pattern_is_flagged() {
        // Refund to the previous king must succeed before a new king is
        // crowned — the previous king can wedge the game.
        let findings = check(
            "contract King { address king; uint prize; \
             function claim() public payable { \
               require(msg.value > prize); \
               king.transfer(prize); \
               king = msg.sender; prize = msg.value; } }",
            external_call_blocks_state,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn state_before_call_is_clean() {
        let findings = check(
            "contract C { mapping(address => uint) balances; \
             function withdraw() public { \
               uint amount = balances[msg.sender]; \
               balances[msg.sender] = 0; \
               msg.sender.transfer(amount); } }",
            external_call_blocks_state,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unbounded_loop_over_param_is_flagged() {
        let findings = check(
            "contract C { uint total; \
             function burn(uint rounds) public { \
               for (uint i = 0; i < rounds; i++) { total += i; } } }",
            expensive_loop,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn small_constant_loop_is_clean() {
        let findings = check(
            "contract C { uint total; \
             function f() public { for (uint i = 0; i < 10; i++) { total += i; } } }",
            expensive_loop,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn loop_over_growable_array_is_flagged() {
        let findings = check(
            "contract C { address[] holders; mapping(address => uint) owed; \
             function register() public { holders.push(msg.sender); } \
             function payout() public { \
               for (uint i = 0; i < holders.length; i++) { \
                 holders[i].send(owed[holders[i]]); } } }",
            expensive_loop,
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn clearable_payout_array_is_flagged() {
        let findings = check(
            "contract C { address[] payees; \
             function reset() public { delete payees; } \
             function pay() public { payees[0].transfer(1); } }",
            clearable_collection,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn constructor_initialization_is_clean() {
        let findings = check(
            "contract C { address[] payees; \
             constructor() { delete payees; } \
             function pay() public { payees[0].transfer(1); } }",
            clearable_collection,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
