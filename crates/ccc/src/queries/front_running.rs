//! Front Running query (Listing 14 of Appendix B).
//!
//! A transaction is front-runnable when a miner (or any observer of the
//! mempool) can submit the same call and obtain the same benefit — e.g.
//! claiming a puzzle bounty, registering a name, or becoming a beneficiary
//! — because eligibility does not depend on the sender's prior state.

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeId, NodeKind};

/// Whether a guard ties the benefit to the sender's own prior state:
/// a condition reading a field *subscripted by* `msg.sender` (balances,
/// allowances, ...) or otherwise mixing `msg.sender` with state.
fn benefit_is_sender_specific(ctx: &Ctx, site: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    for guard in ctx.guards_before(site) {
        for cond in ctx.guard_condition(guard) {
            // A subscript expression indexed by msg.sender in the condition
            // cone means the check is about the sender themself.
            let cone: Vec<NodeId> = ctx.dfg_sources(cond).into_iter().chain([cond]).collect();
            for n in &cone {
                if g.node(*n).kind == NodeKind::SubscriptExpression {
                    if let Some(index) = g.ast_child(*n, AstRole::SubscriptExpression) {
                        if ctx.flows_from_code(index, &["msg.sender"]) {
                            return true;
                        }
                    }
                }
            }
            if ctx.flows_from_code(cond, &["msg.sender"]) {
                return true;
            }
        }
    }
    false
}

/// Listing 14 — code where a miner can obtain the same beneficial state
/// change as any other transaction sender.
///
/// Base patterns: (a) an ether transfer to `msg.sender` whose amount does
/// not derive from `msg.sender`-specific state, or (b) a state write that
/// stores `msg.sender` as a beneficiary. Mitigation: a guard that is
/// sender-specific.
pub fn front_runnable_benefit(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();

    // (a) Ether paid out to msg.sender, eligibility not sender-specific.
    for call in ctx.ether_transfers() {
        let Some(base) = ctx.call_base(call) else { continue };
        if !ctx.flows_from_code(base, &["msg.sender"]) {
            continue;
        }
        if ctx.in_constructor(call) {
            continue;
        }
        // A payout gated on a secret/parameter (guessing games, bounties)
        // is claimable by whoever submits first — unless gated on the
        // sender's own state.
        let has_guard = !ctx.guards_before(call).is_empty();
        if !has_guard {
            // Unconditional self-payout is a faucet, not front-running.
            continue;
        }
        if benefit_is_sender_specific(ctx, call) {
            continue;
        }
        // The amount must not be msg.value (refunds are not a benefit).
        if let Some(value) = ctx.value_option(call) {
            if ctx.flows_from_code(value, &["msg.value"]) {
                continue;
            }
        }
        findings.push(Finding::new(ctx, QueryId::FrontRunnableBenefit, call));
    }

    // (b) msg.sender stored as beneficiary without sender-specific gating.
    for (writer, field) in ctx.field_writes() {
        if ctx.in_constructor(writer) {
            continue;
        }
        // The write stores msg.sender itself.
        let Some(op) = g
            .in_kind(writer, EdgeKind::Dfg)
            .find(|n| g.node(*n).kind == NodeKind::BinaryOperator)
        else {
            continue;
        };
        let Some(rhs) = g.ast_child(op, AstRole::Rhs) else { continue };
        let stores_sender = g.node(rhs).props.code == "msg.sender";
        if !stores_sender {
            continue;
        }
        // Becoming the beneficiary must be worth something: the field is
        // used for transfers elsewhere.
        let field_feeds_transfer = g
            .reach_forward(field, |k| k == EdgeKind::Dfg, ctx.max_path)
            .into_iter()
            .any(|n| g.node(n).kind == NodeKind::CallExpression && ctx.is_ether_transfer(n));
        if !field_feeds_transfer {
            continue;
        }
        if benefit_is_sender_specific(ctx, op) || ctx.is_access_guarded(op) {
            continue;
        }
        // Paying for the slot with msg.value is an auction, still
        // front-runnable, so it stays flagged.
        findings.push(Finding::new(ctx, QueryId::FrontRunnableBenefit, op));
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        front_runnable_benefit(&ctx)
    }

    #[test]
    fn guessing_game_payout_is_flagged() {
        let findings = check(
            "contract Game { bytes32 answerHash; uint prize; \
             function guess(string solution) public { \
               require(keccak256(solution) == answerHash); \
               msg.sender.transfer(prize); } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn balance_withdrawal_is_clean() {
        let findings = check(
            "contract Bank { mapping(address => uint) balances; \
             function withdraw() public { \
               require(balances[msg.sender] > 0); \
               uint amount = balances[msg.sender]; \
               balances[msg.sender] = 0; \
               msg.sender.transfer(amount); } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn beneficiary_registration_is_flagged() {
        let findings = check(
            "contract Claim { address winner; uint prize; \
             function claim(uint code) public { \
               require(code == 42); winner = msg.sender; } \
             function pay() public { winner.transfer(prize); } }",
        );
        assert!(!findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn owner_guarded_registration_is_clean() {
        let findings = check(
            "contract C { address owner; address payee; \
             function setSelf() public { \
               require(msg.sender == owner); payee = msg.sender; } \
             function pay() public { payee.transfer(1); } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
