//! Access Control queries (Listings 3, 4, 12 and 19 of Appendix B).

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeKind};

/// Listing 3 — unrestricted writes to state variables used for access
/// control.
///
/// Base pattern: a field that is compared against `msg.sender` in some
/// guard (i.e. it stores an owner/admin identity) is written in a function.
/// Condition of relevancy: the written value is attacker-controlled.
/// Mitigations: the write happens in a constructor, or behind a sender
/// check.
pub fn unrestricted_write(ctx: &Ctx) -> Vec<Finding> {
    let ac_fields = ctx.access_control_fields();
    let mut findings = Vec::new();
    for (writer, field) in ctx.field_writes() {
        if !ac_fields.contains(&field) {
            continue;
        }
        if ctx.in_constructor(writer) {
            continue;
        }
        // The assignment writing through this reference.
        let Some(op) = ctx
            .cpg
            .graph
            .in_kind(writer, EdgeKind::Dfg)
            .find(|n| ctx.cpg.graph.node(*n).kind == NodeKind::BinaryOperator)
        else {
            continue;
        };
        if !ctx.attacker_controlled(op) {
            continue;
        }
        if ctx.is_access_guarded(op) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::AcUnrestrictedWrite, op));
    }
    findings
}

/// Listing 4 — unrestricted access to functions that destroy the contract.
///
/// Base pattern: a reachable `selfdestruct`/`suicide` call. Mitigations:
/// constructor context or a sender-identity guard on the path.
pub fn unprotected_selfdestruct(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for call in ctx.calls_named(&["selfdestruct", "suicide"]) {
        if ctx.in_constructor(call) {
            continue;
        }
        let Some(function) = ctx.function_of(call) else { continue };
        if !ctx.is_externally_callable(function) {
            continue;
        }
        if ctx.is_access_guarded(call) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::AcSelfDestruct, call));
    }
    findings
}

/// Listing 12 — call delegation where inputs are not properly sanitized
/// (the Parity "Default Proxy Delegate" pattern).
///
/// Base pattern: a path through a default function reaching a
/// `delegatecall`/`callcode` that persists (does not end in a rollback).
/// Condition of relevancy: the caller controls the call target through
/// `msg.data`. Mitigation: a check on `msg.data` that can divert the path.
pub fn default_proxy_delegate(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for call in ctx.calls_named(&["delegatecall", "callcode"]) {
        let Some(function) = ctx.function_of(call) else { continue };
        if !ctx.is_default_function(function) {
            continue;
        }
        // Caller controls the dispatch: msg.data flows into the arguments.
        let forwards_msg_data = g
            .ast_children_role(call, AstRole::Arguments)
            .any(|arg| ctx.flows_from_code(arg, &["msg.data"]));
        if !forwards_msg_data {
            continue;
        }
        // Mitigation: a guard on msg.data before the call.
        let guarded = ctx
            .guards_before(call)
            .into_iter()
            .any(|guard| ctx.guard_involves(guard, &["msg.data", "msg.data.length", "msg.sig"]));
        if guarded {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::AcDefaultProxyDelegate, call));
    }
    findings
}

/// Listing 19 — uses of `tx.origin` for branching.
///
/// Base pattern: a branching node influenced by both `tx.origin` and
/// state-derived data — the phishing-prone authorization pattern.
pub fn tx_origin_branching(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for cmp in g.nodes_of_kind(NodeKind::BinaryOperator) {
        let props = &g.node(cmp).props;
        if !matches!(props.operator_code.as_deref(), Some("==") | Some("!=")) {
            continue;
        }
        if !ctx.flows_from_code(cmp, &["tx.origin"]) {
            continue;
        }
        if !ctx.feeds_guard(cmp) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::AcTxOrigin, cmp));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::Ctx;
    use cpg::Cpg;

    fn check(src: &str, f: fn(&Ctx) -> Vec<Finding>) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        f(&ctx)
    }

    #[test]
    fn unguarded_owner_write_is_flagged() {
        let findings = check(
            "contract C { address owner; \
             constructor() { owner = msg.sender; } \
             function setOwner(address o) public { owner = o; } \
             function withdraw() public { require(msg.sender == owner); \
               msg.sender.transfer(this.balance); } }",
            unrestricted_write,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].query, QueryId::AcUnrestrictedWrite);
    }

    #[test]
    fn guarded_owner_write_is_clean() {
        let findings = check(
            "contract C { address owner; \
             constructor() { owner = msg.sender; } \
             function setOwner(address o) public { \
               require(msg.sender == owner); owner = o; } \
             function withdraw() public { require(msg.sender == owner); \
               msg.sender.transfer(this.balance); } }",
            unrestricted_write,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn modifier_guard_counts_after_expansion() {
        let findings = check(
            "contract C { address owner; \
             modifier onlyOwner() { require(msg.sender == owner); _; } \
             constructor() { owner = msg.sender; } \
             function setOwner(address o) public onlyOwner() { owner = o; } \
             function withdraw() public onlyOwner() { msg.sender.transfer(1); } }",
            unrestricted_write,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn constructor_write_is_clean() {
        let findings = check(
            "contract C { address owner; \
             constructor() { owner = msg.sender; } \
             function w() public { require(msg.sender == owner); x = 1; } }",
            unrestricted_write,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unprotected_selfdestruct_is_flagged() {
        let findings = check(
            "contract C { function kill() public { selfdestruct(msg.sender); } }",
            unprotected_selfdestruct,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn guarded_selfdestruct_is_clean() {
        let findings = check(
            "contract C { address owner; \
             function kill() public { require(msg.sender == owner); \
               selfdestruct(owner); } }",
            unprotected_selfdestruct,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn modifier_guarded_selfdestruct_is_clean() {
        let findings = check(
            "contract C { address owner; \
             modifier onlyOwner() { require(msg.sender == owner); _; } \
             function kill() public onlyOwner() { selfdestruct(owner); } }",
            unprotected_selfdestruct,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn paper_delegate_snippet_is_flagged() {
        // The snippet from §4.4 of the paper.
        let findings = check(
            "function() {lib.delegatecall(msg.data);}",
            default_proxy_delegate,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].query, QueryId::AcDefaultProxyDelegate);
    }

    #[test]
    fn sanitized_delegate_is_clean() {
        let findings = check(
            "contract C { function() payable { \
               require(msg.data.length == 0); \
               lib.delegatecall(msg.data); } }",
            default_proxy_delegate,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn named_function_delegate_is_not_default_proxy() {
        let findings = check(
            "contract C { function fwd() public { lib.delegatecall(msg.data); } }",
            default_proxy_delegate,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn tx_origin_auth_is_flagged() {
        let findings = check(
            "contract C { address owner; \
             function pay() public { require(tx.origin == owner); \
               msg.sender.transfer(1); } }",
            tx_origin_branching,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn tx_origin_unused_for_branching_is_clean() {
        let findings = check(
            "contract C { address last; function f() public { last = tx.origin; } }",
            tx_origin_branching,
        );
        assert!(findings.is_empty());
    }
}
