//! Bad Randomness query (Listing 7 of Appendix B).
//!
//! Miner-influenced values (`block.timestamp`, `block.number`,
//! `block.difficulty`, `block.coinbase`, `blockhash(..)`) are predictable
//! and must not seed randomness. The query flags such sources when they
//! (a) flow into the return of a function whose name suggests randomness,
//! (b) are mixed into an entropy computation (hash or modulo) whose result
//! matters, or (c) decide whether or how much ether is transferred.

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{NodeId, NodeKind};

/// Miner-influenced member codes.
pub const RANDOM_SOURCES: &[&str] = &[
    "block.timestamp",
    "block.number",
    "block.difficulty",
    "block.coinbase",
];

/// All bad-randomness source nodes of the unit: the listed member
/// expressions plus `blockhash(..)` calls.
pub fn source_nodes(ctx: &Ctx) -> Vec<NodeId> {
    let g = &ctx.cpg.graph;
    let mut sources: Vec<NodeId> = g
        .nodes_of_kind(NodeKind::MemberExpression)
        .filter(|n| RANDOM_SOURCES.contains(&g.node(*n).props.code.as_str()))
        .collect();
    sources.extend(ctx.calls_named(&["blockhash"]));
    sources
}

/// Whether the node flows into an entropy computation: a hash call
/// (`keccak256`/`sha3`/`sha256`) or a modulo operation.
fn feeds_entropy_computation(ctx: &Ctx, source: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let forward = g.reach_forward(source, |k| k == cpg::EdgeKind::Dfg, ctx.max_path);
    forward.into_iter().any(|n| {
        let node = g.node(n);
        match node.kind {
            NodeKind::CallExpression => {
                matches!(node.props.local_name.as_str(), "keccak256" | "sha3" | "sha256")
            }
            NodeKind::BinaryOperator => node.props.operator_code.as_deref() == Some("%"),
            _ => false,
        }
    })
}

/// Whether the node flows into the return value of a function whose name
/// contains `rand`.
fn feeds_random_function_return(ctx: &Ctx, source: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let forward = g.reach_forward(source, |k| k == cpg::EdgeKind::Dfg, ctx.max_path);
    forward
        .into_iter()
        .filter(|n| g.node(*n).kind == NodeKind::ReturnStatement)
        .any(|ret| {
            g.enclosing_function(ret)
                .map(|f| g.node(f).props.local_name.to_lowercase().contains("rand"))
                .unwrap_or(false)
        })
}

/// Whether the node (transitively) influences an ether transfer: flows into
/// the value/target of a transfer, or into a guard that dominates one.
fn influences_transfer(ctx: &Ctx, source: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let forward = g.reach_forward(source, |k| k == cpg::EdgeKind::Dfg, ctx.max_path);
    // Direct flow into a transferring call.
    for n in &forward {
        if g.node(*n).kind == NodeKind::CallExpression && ctx.is_ether_transfer(*n) {
            return true;
        }
    }
    // Flow into a branch that leads to a transfer on one side only.
    for n in forward.iter().chain(std::iter::once(&source)) {
        let node = g.node(*n);
        let branches = matches!(
            node.kind,
            NodeKind::IfStatement | NodeKind::ConditionalExpression
        ) || (node.kind == NodeKind::CallExpression
            && matches!(node.props.local_name.as_str(), "require" | "assert"));
        if !branches {
            continue;
        }
        let after = g.reach_forward(*n, |k| k == cpg::EdgeKind::Eog, ctx.max_path);
        if after
            .into_iter()
            .any(|m| g.node(m).kind == NodeKind::CallExpression && ctx.is_ether_transfer(m))
        {
            return true;
        }
    }
    false
}

/// Listing 7 — usages of bad sources of randomness.
pub fn bad_randomness(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for source in source_nodes(ctx) {
        let entropy = feeds_entropy_computation(ctx, source);
        let named_random = feeds_random_function_return(ctx, source);
        // A legitimate timestamp read (e.g. `updatedAt = now`) is not
        // randomness; require an entropy computation or a rand-named
        // function, and the result influencing a transfer or guard makes it
        // exploitable.
        if !(entropy || named_random) {
            continue;
        }
        if !(influences_transfer(ctx, source) || named_random || ctx.feeds_guard(source)) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::BadRandomnessSource, source));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        bad_randomness(&ctx)
    }

    #[test]
    fn lottery_with_timestamp_modulo_is_flagged() {
        let findings = check(
            "contract Lottery { address[] players; \
             function draw() public { \
               uint winner = uint(keccak256(block.timestamp)) % players.length; \
               players[winner].transfer(this.balance); } }",
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn rand_function_with_block_number_is_flagged() {
        let findings = check(
            "function random() public returns (uint) { return uint(blockhash(block.number - 1)); }",
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn timestamp_bookkeeping_is_clean() {
        // Legitimate block-number/timestamp use (the FP class the paper
        // discusses in §4.6.2): storing a timestamp is not randomness.
        let findings = check(
            "contract C { uint updatedAt; \
             function touch() public { updatedAt = block.timestamp; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn coin_flip_with_difficulty_is_flagged() {
        let findings = check(
            "contract Flip { function play() public payable { \
               uint r = uint(keccak256(block.difficulty, block.timestamp)) % 2; \
               if (r == 1) { msg.sender.transfer(2 ether); } } }",
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn block_number_deadline_is_clean() {
        let findings = check(
            "contract C { uint deadline; \
             function expired() public returns (bool) { return block.number > deadline; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
