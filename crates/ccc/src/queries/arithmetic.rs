//! Arithmetic query (Listing 16 of Appendix B): operations that can over-
//! or underflow.
//!
//! Base pattern: an additive/multiplicative operation on integers. Condition
//! of relevancy: an externally callable function's parameter influences it
//! and the result matters (persisted to a field, deciding a rollback, or
//! passed onward). Mitigations: Solidity >= 0.8 checked arithmetic (unless
//! inside `unchecked`), a SafeMath-style library, or a guarding comparison
//! on the operands before the operation.

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeId, NodeKind};

/// Operators that can wrap.
const OVERFLOW_OPS: &[&str] = &["+", "-", "*", "**", "+=", "-=", "*="];

fn is_integer_typed(ctx: &Ctx, node: NodeId) -> bool {
    match ctx.cpg.graph.node(node).props.ty.as_deref() {
        Some(t) => t.starts_with("uint") || t.starts_with("int"),
        // Untyped (inferred snippet data) is assumed integer, matching the
        // paper's normalization default of `uint`.
        None => true,
    }
}

/// Whether the operation's result is consumed in a way that matters.
fn result_matters(ctx: &Ctx, op: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let forward = g.reach_forward(op, |k| k == EdgeKind::Dfg, ctx.max_path);
    forward.into_iter().any(|n| {
        let node = g.node(n);
        matches!(
            node.kind,
            NodeKind::FieldDeclaration
                | NodeKind::CallExpression
                | NodeKind::ReturnStatement
                | NodeKind::KeyValueExpression
                | NodeKind::SpecifiedExpression
                | NodeKind::IfStatement
                | NodeKind::Rollback
        )
    })
}

/// Whether a comparison over the operands guards the operation — the
/// `require(balance >= amount)` idiom before `balance -= amount`.
fn operands_guarded(ctx: &Ctx, op: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    // Declarations feeding the operation.
    let operand_decls: Vec<NodeId> = ctx
        .dfg_sources(op)
        .into_iter()
        .filter(|n| g.node(*n).kind.is_declaration())
        .collect();
    if operand_decls.is_empty() {
        return false;
    }
    for guard in ctx.guards_before(op) {
        for cond in ctx.guard_condition(guard) {
            // The guard condition must be a comparison involving at least
            // one of the operands' declarations.
            let cone = ctx.dfg_sources(cond);
            let involves_operand = operand_decls.iter().any(|d| cone.contains(d));
            if !involves_operand {
                continue;
            }
            let is_comparison = std::iter::once(cond)
                .chain(cone.iter().copied())
                .any(|n| {
                    matches!(
                        g.node(n).props.operator_code.as_deref(),
                        Some("<") | Some(">") | Some("<=") | Some(">=")
                    )
                });
            if is_comparison {
                return true;
            }
        }
    }
    false
}

/// Listing 16 — arithmetic operations that can over- or underflow.
pub fn arithmetic_overflow(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    // Unit-level mitigations.
    let checked_arithmetic = ctx.cpg.solidity_08();
    let safemath = ctx.cpg.uses_safemath();
    let mut findings = Vec::new();
    for op in g.nodes_of_kind(NodeKind::BinaryOperator) {
        let node = g.node(op);
        let Some(operator) = node.props.operator_code.as_deref() else { continue };
        if !OVERFLOW_OPS.contains(&operator) {
            continue;
        }
        let unchecked_block = node.props.extra.get("unchecked").map(|s| s.as_str()) == Some("true");
        if checked_arithmetic && !unchecked_block {
            continue;
        }
        if safemath {
            continue;
        }
        if !is_integer_typed(ctx, op) {
            continue;
        }
        // String concatenation heuristics: skip ops over string literals.
        let lhs = g.ast_child(op, AstRole::Lhs);
        let rhs = g.ast_child(op, AstRole::Rhs);
        let stringy = [lhs, rhs].into_iter().flatten().any(|o| {
            g.node(o).props.ty.as_deref() == Some("string")
        });
        if stringy {
            continue;
        }
        // Attacker influence: a public function parameter reaches the
        // operation (constants folding away is not modelled — literal-only
        // expressions are excluded below).
        if ctx.flows_from_public_param(op).is_none() {
            continue;
        }
        let all_literals = [lhs, rhs]
            .into_iter()
            .flatten()
            .all(|o| g.node(o).kind == NodeKind::Literal);
        if all_literals {
            continue;
        }
        if !result_matters(ctx, op) {
            continue;
        }
        if operands_guarded(ctx, op) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::ArithmeticOverflow, op));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        arithmetic_overflow(&ctx)
    }

    #[test]
    fn unguarded_subtraction_is_flagged() {
        let findings = check(
            "contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               balances[msg.sender] -= value; \
               balances[to] += value; } }",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn guarded_subtraction_is_clean() {
        let findings = check(
            "contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               require(balances[msg.sender] >= value); \
               balances[msg.sender] -= value; \
               balances[to] += value; } }",
        );
        // The subtraction is guarded; the addition's overflow needs the
        // total supply to wrap, which the paper's query also reports —
        // here the guard involves `value`, which covers both operands.
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn solidity_08_is_clean() {
        let cpg = Cpg::from_source(
            "pragma solidity ^0.8.0; \
             contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               balances[to] += value; } }",
        )
        .unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        assert!(arithmetic_overflow(&ctx).is_empty());
    }

    #[test]
    fn unchecked_block_in_08_is_flagged() {
        let cpg = Cpg::from_source(
            "pragma solidity ^0.8.0; \
             contract Token { mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               unchecked { balances[to] += value; } } }",
        )
        .unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        assert_eq!(arithmetic_overflow(&ctx).len(), 1);
    }

    #[test]
    fn safemath_is_clean() {
        let findings = check(
            "contract Token { using SafeMath for uint256; \
             mapping(address => uint) balances; \
             function transfer(address to, uint value) public { \
               balances[to] += value; } }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn internal_only_flow_is_clean() {
        let findings = check(
            "contract C { uint total; \
             function bump(uint x) internal { total += x; } }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn literal_arithmetic_is_clean() {
        let findings = check(
            "contract C { uint total; function f(uint x) public { total = 2 + 3; g(x); } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
