//! The 17 vulnerability queries of CCC, one module per DASP category
//! (cf. §4.4 and Appendix B of the paper).

pub mod access_control;
pub mod arithmetic;
pub mod dos;
pub mod front_running;
pub mod randomness;
pub mod reentrancy;
pub mod short_address;
pub mod time;
pub mod unchecked;
pub mod unknown;

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;

/// Run a single query against a context.
pub fn run_query(ctx: &Ctx, query: QueryId) -> Vec<Finding> {
    let _span = if telemetry::enabled() {
        Some(telemetry::span(format!("query/{query:?}")))
    } else {
        None
    };
    let _stage = telemetry::trace::stage(query.name());
    let findings = dispatch_query(ctx, query);
    if !findings.is_empty() {
        telemetry::trace::annotate("findings", findings.len());
    }
    if telemetry::enabled() && !findings.is_empty() {
        telemetry::counter_add(&format!("ccc.findings.{query:?}"), findings.len() as u64);
    }
    findings
}

fn dispatch_query(ctx: &Ctx, query: QueryId) -> Vec<Finding> {
    match query {
        QueryId::AcUnrestrictedWrite => access_control::unrestricted_write(ctx),
        QueryId::AcSelfDestruct => access_control::unprotected_selfdestruct(ctx),
        QueryId::AcDefaultProxyDelegate => access_control::default_proxy_delegate(ctx),
        QueryId::AcTxOrigin => access_control::tx_origin_branching(ctx),
        QueryId::ShortAddressCall => short_address::at_call_sites(ctx),
        QueryId::ShortAddressStateWrite => short_address::at_state_writes(ctx),
        QueryId::BadRandomnessSource => randomness::bad_randomness(ctx),
        QueryId::DosExternalCallTransfer => dos::external_call_blocks_transfers(ctx),
        QueryId::DosExternalCallState => dos::external_call_blocks_state(ctx),
        QueryId::DosExpensiveLoop => dos::expensive_loop(ctx),
        QueryId::DosClearableCollection => dos::clearable_collection(ctx),
        QueryId::UncheckedCall => unchecked::unchecked_call(ctx),
        QueryId::FrontRunnableBenefit => front_running::front_runnable_benefit(ctx),
        QueryId::UninitializedStoragePointer => unknown::uninitialized_storage_pointer(ctx),
        QueryId::ArithmeticOverflow => arithmetic::arithmetic_overflow(ctx),
        QueryId::Reentrancy => reentrancy::reentrancy(ctx),
        QueryId::TimestampDependence => time::timestamp_dependence(ctx),
    }
}
