//! Unchecked Low Level Calls query (Listing 10 of Appendix B).
//!
//! `send`, `call`, `delegatecall`, `callcode` and `staticcall` return a
//! success flag instead of reverting. Ignoring that flag silently swallows
//! failures (the #4 DASP category and by far the largest label set in
//! SmartBugs Curated).

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{EdgeKind, NodeId, NodeKind};

/// Low-level calls whose boolean result must be checked. `transfer` is
/// excluded: it reverts on failure by itself.
const CHECKED_CALLS: &[&str] = &["send", "call", "delegatecall", "callcode", "staticcall"];

/// Whether the call result is consumed: it flows into a guard, an
/// assignment, a return, a variable declaration or a logical operation.
fn result_is_used(ctx: &Ctx, call: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    g.out_kind(call, EdgeKind::Dfg).any(|user| {
        let node = g.node(user);
        match node.kind {
            NodeKind::CallExpression => {
                matches!(node.props.local_name.as_str(), "require" | "assert")
            }
            NodeKind::Rollback => true,
            NodeKind::IfStatement
            | NodeKind::WhileStatement
            | NodeKind::DoStatement
            | NodeKind::ConditionalExpression
            | NodeKind::ReturnStatement
            | NodeKind::VariableDeclaration
            | NodeKind::TupleExpression => true,
            NodeKind::BinaryOperator | NodeKind::UnaryOperator => true,
            NodeKind::DeclaredReferenceExpression
            | NodeKind::MemberExpression
            | NodeKind::SubscriptExpression => true,
            _ => false,
        }
    })
}

/// Listing 10 — critical calls whose return values are ignored.
pub fn unchecked_call(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for call in ctx.calls_named(CHECKED_CALLS) {
        // Only genuine low-level calls on a base (`a.send(..)`), not
        // user-defined functions that happen to be named `call`.
        if ctx.call_base(call).is_none() {
            continue;
        }
        if result_is_used(ctx, call) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::UncheckedCall, call));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        unchecked_call(&ctx)
    }

    #[test]
    fn bare_send_is_flagged() {
        let findings = check("function f(address to) public { to.send(1 ether); }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].query, QueryId::UncheckedCall);
    }

    #[test]
    fn required_send_is_clean() {
        let findings = check("function f(address to) public { require(to.send(1 ether)); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn if_checked_call_is_clean() {
        let findings = check(
            "function f(address to) public { if (!to.send(1)) { revert(); } }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn assigned_result_is_clean() {
        let findings = check(
            "function f(address to) public { bool ok = to.call{value: 1}(\"\"); g(ok); }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn transfer_is_not_flagged() {
        let findings = check("function f(address to) public { to.transfer(1); }");
        assert!(findings.is_empty());
    }

    #[test]
    fn bare_low_level_call_is_flagged() {
        let findings = check("function f(address t, bytes d) public { t.call(d); }");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn tuple_destructured_result_is_clean() {
        let findings = check(
            "function f(address t) public { (bool ok, bytes memory ret) = t.call(\"\"); require(ok); }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
