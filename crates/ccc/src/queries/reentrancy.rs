//! Reentrancy query (Listing 17 of Appendix B): call paths through external
//! calls vulnerable to reentrancy attacks.
//!
//! Base pattern: a gas-forwarding external call (`call`, `callcode`,
//! `delegatecall`) followed — on the `EOG|INVOKES|RETURNS` closure — by a
//! write to a state variable. The callee can re-enter before the state is
//! updated (the DAO pattern). Conditions of relevancy: the call target is
//! address-typed and not a compile-time constant (the attacker can be, or
//! can influence, the callee). Mitigations: emit-only effects after the
//! call, constructor-fixed targets, and mutex locks.

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{AstRole, EdgeKind, NodeId, NodeKind};

/// Whether the call target is effectively constant: a literal address or a
/// field only written in constructors (the Listing 17 exclusion of sources
/// that are literals or constructor parameters).
fn target_is_fixed(ctx: &Ctx, base: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let mut cone: Vec<NodeId> = ctx.dfg_sources(base).into_iter().collect();
    cone.push(base);
    // If msg.sender / tx.origin or a public param reaches the base, the
    // target is attacker-influencable: not fixed.
    if ctx.flows_from_code(base, &["msg.sender", "tx.origin"])
        || ctx.flows_from_public_param(base).is_some()
    {
        return false;
    }
    // Field-held targets: fixed only if every write happens in a
    // constructor.
    for n in &cone {
        if g.node(*n).kind == NodeKind::FieldDeclaration {
            let written_outside_ctor = g.in_kind(*n, EdgeKind::Dfg).any(|writer| {
                matches!(
                    g.node(writer).kind,
                    NodeKind::DeclaredReferenceExpression
                        | NodeKind::MemberExpression
                        | NodeKind::SubscriptExpression
                ) && !ctx.in_constructor(writer)
            });
            if written_outside_ctor {
                return false;
            }
        }
    }
    // Mapping/array reads keyed by attacker data are not fixed either.
    for n in &cone {
        if g.node(*n).kind == NodeKind::SubscriptExpression {
            if let Some(index) = g.ast_child(*n, AstRole::SubscriptExpression) {
                if ctx.attacker_controlled(index) {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether a mutex-style lock guards the call: a boolean field is both
/// checked in a guard before the call and written before the call.
fn mutex_locked(ctx: &Ctx, call: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let before = g.reach_backward(call, |k| k == EdgeKind::Eog, ctx.max_path);
    // Fields written before the call...
    let written_before: Vec<NodeId> = ctx
        .field_writes()
        .into_iter()
        .filter(|(writer, _)| before.contains(writer))
        .map(|(_, field)| field)
        .collect();
    if written_before.is_empty() {
        return false;
    }
    // ...that also appear in a guard before the call.
    for guard in ctx.guards_before(call) {
        for cond in ctx.guard_condition(guard) {
            let cone = ctx.dfg_sources(cond);
            if written_before.iter().any(|f| cone.contains(f)) {
                // Only boolean-ish lock fields qualify; balance checks
                // (`require(balances[msg.sender] >= x)`) do not lock.
                let is_lock = written_before.iter().any(|f| {
                    cone.contains(f)
                        && g.node(*f)
                            .props
                            .ty
                            .as_deref()
                            .map(|t| t == "bool")
                            .unwrap_or(false)
                });
                if is_lock {
                    return true;
                }
            }
        }
    }
    false
}

/// Listing 17 — call paths through external calls vulnerable to reentrancy.
pub fn reentrancy(ctx: &Ctx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for call in ctx.calls_named(&["call", "callcode", "delegatecall"]) {
        let Some(base) = ctx.call_base(call) else { continue };
        // Only value-bearing or raw calls on address-typed bases; a
        // delegatecall into a fixed library is handled by Listing 12.
        if target_is_fixed(ctx, base) {
            continue;
        }
        // State write after the call on the interprocedural closure.
        let after = ctx.eog_interproc_after(call);
        let write_after = ctx
            .field_writes()
            .into_iter()
            .find(|(writer, _)| after.contains(writer));
        let Some((writer, _field)) = write_after else { continue };
        let _ = writer;
        if mutex_locked(ctx, call) {
            continue;
        }
        findings.push(Finding::new(ctx, QueryId::Reentrancy, call));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        reentrancy(&ctx)
    }

    #[test]
    fn dao_pattern_is_flagged() {
        let findings = check(
            "contract Dao { mapping(address => uint) balances; \
             function withdraw() public { \
               uint amount = balances[msg.sender]; \
               msg.sender.call{value: amount}(\"\"); \
               balances[msg.sender] = 0; } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].query, QueryId::Reentrancy);
    }

    #[test]
    fn checks_effects_interactions_is_clean() {
        let findings = check(
            "contract Bank { mapping(address => uint) balances; \
             function withdraw() public { \
               uint amount = balances[msg.sender]; \
               balances[msg.sender] = 0; \
               msg.sender.call{value: amount}(\"\"); } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn mutex_lock_is_clean() {
        let findings = check(
            "contract Bank { bool locked; mapping(address => uint) balances; \
             function withdraw() public { \
               require(!locked); \
               locked = true; \
               msg.sender.call{value: balances[msg.sender]}(\"\"); \
               balances[msg.sender] = 0; \
               locked = false; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn transfer_is_not_reentrant() {
        // transfer forwards 2300 gas — not enough to re-enter.
        let findings = check(
            "contract Bank { mapping(address => uint) balances; \
             function withdraw() public { \
               msg.sender.transfer(balances[msg.sender]); \
               balances[msg.sender] = 0; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn constructor_fixed_target_is_clean() {
        let findings = check(
            "contract C { address lib; uint hits; \
             constructor(address l) { lib = l; } \
             function f(bytes d) public { lib.call(d); hits += 1; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn settable_target_is_flagged() {
        let findings = check(
            "contract C { address lib; uint hits; \
             function setLib(address l) public { lib = l; } \
             function f(bytes d) public { lib.call(d); hits += 1; } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn paper_figure_7_snippet_is_flagged() {
        // The Ethereum Stack Exchange snippet of Figure 7 (reentrancy
        // before zeroing the balance, legacy .call.value form).
        let findings = check(
            "function withdrawBalance() public { \
               uint amountToWithdraw = userBalances[msg.sender]; \
               if (!(msg.sender.call.value(amountToWithdraw)())) { throw; } \
               userBalances[msg.sender] = 0; }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}
