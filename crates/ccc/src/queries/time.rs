//! Time Manipulation query (Listing 18 of Appendix B): transactions where a
//! miner can choose the timestamp to change the outcome.
//!
//! `block.timestamp` (and `now`) can be shifted by ~15 seconds by the miner
//! producing the block. When a comparison over the timestamp decides
//! whether ether moves or state changes, the miner can influence the
//! outcome of the transaction.

use crate::dasp::QueryId;
use crate::helpers::Ctx;
use crate::Finding;
use cpg::{EdgeKind, NodeId, NodeKind};

/// Timestamp sources. `now` is normalized to `block.timestamp` by the CPG
/// builder; `block.number` as a proxy for time is also flagged.
const TIME_SOURCES: &[&str] = &["block.timestamp", "block.number"];

fn time_source_nodes(ctx: &Ctx) -> Vec<NodeId> {
    let g = &ctx.cpg.graph;
    g.nodes_of_kind(NodeKind::MemberExpression)
        .filter(|n| TIME_SOURCES.contains(&g.node(*n).props.code.as_str()))
        .collect()
}

/// Whether the branch/guard influenced by the timestamp has a consequence
/// worth manipulating: an ether transfer or a state write on one side.
fn branch_has_consequence(ctx: &Ctx, branch: NodeId) -> bool {
    let g = &ctx.cpg.graph;
    let after = g.reach_forward(branch, |k| k == EdgeKind::Eog, ctx.max_path);
    let transfers = after
        .iter()
        .any(|n| g.node(*n).kind == NodeKind::CallExpression && ctx.is_ether_transfer(*n));
    let writes = ctx
        .field_writes()
        .into_iter()
        .any(|(writer, _)| after.contains(&writer));
    transfers || writes
}

/// Listing 18 — timestamp-dependent outcomes.
pub fn timestamp_dependence(ctx: &Ctx) -> Vec<Finding> {
    let g = &ctx.cpg.graph;
    let mut findings = Vec::new();
    for source in time_source_nodes(ctx) {
        // The timestamp must flow into a comparison...
        let forward = g.reach_forward(source, |k| k == EdgeKind::Dfg, ctx.max_path);
        let comparison = forward.iter().copied().find(|n| {
            matches!(
                g.node(*n).props.operator_code.as_deref(),
                Some("<") | Some(">") | Some("<=") | Some(">=") | Some("==") | Some("!=")
            )
        });
        let Some(comparison) = comparison else { continue };
        // ...that feeds a guard or branch...
        if !ctx.feeds_guard(comparison) {
            continue;
        }
        // ...whose outcome matters. The guard node itself is found on the
        // forward EOG of the comparison.
        let guard_matters = g
            .reach_forward(comparison, |k| k == EdgeKind::Eog, 4)
            .into_iter()
            .chain([comparison])
            .any(|n| branch_has_consequence(ctx, n));
        if !guard_matters {
            continue;
        }
        // Equality against an exact timestamp is un-influencable in
        // practice but the paper's query reports it too (it is miner
        // pickable) — keep it.
        findings.push(Finding::new(ctx, QueryId::TimestampDependence, source));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    fn check(src: &str) -> Vec<Finding> {
        let cpg = Cpg::from_snippet(src).unwrap();
        let ctx = Ctx::new(&cpg, usize::MAX);
        timestamp_dependence(&ctx)
    }

    #[test]
    fn timestamp_gated_payout_is_flagged() {
        let findings = check(
            "contract Sale { uint start; \
             function buy() public payable { \
               require(block.timestamp >= start); \
               msg.sender.transfer(1); } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn now_alias_is_flagged() {
        let findings = check(
            "contract C { uint deadline; uint pot; \
             function close() public { \
               if (now > deadline) { msg.sender.transfer(pot); } } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn timestamp_storage_is_clean() {
        let findings = check(
            "contract C { uint lastSeen; \
             function ping() public { lastSeen = block.timestamp; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn branch_without_consequence_is_clean() {
        let findings = check(
            "contract C { function fresh(uint t) public returns (bool) { \
               return block.timestamp > t; } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
