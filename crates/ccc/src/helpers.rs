//! Shared graph predicates used by the vulnerability queries.
//!
//! Each helper mirrors a sub-pattern that recurs across the Appendix B
//! queries: external calls, ether transfers, attacker-controlled data,
//! access-control guards, field writes, and rollback-guarded branches.

use cpg::{AstRole, Cpg, EdgeKind, NodeId, NodeKind};
use std::collections::HashSet;

/// Low-level call names that reach external code.
pub const EXTERNAL_CALL_NAMES: &[&str] =
    &["call", "delegatecall", "callcode", "staticcall", "send", "transfer"];

/// Calls that forward enough gas for the callee to re-enter.
pub const REENTRANT_CALL_NAMES: &[&str] = &["call", "delegatecall", "callcode"];

/// Builtin member codes that an attacker controls directly.
pub const ATTACKER_SOURCES: &[&str] = &["msg.sender", "msg.value", "msg.data", "tx.origin"];

/// Analysis context: the graph plus the maximum data-flow path length.
///
/// `max_path` implements the paper's path-reduction mechanism (§6.3): the
/// second validation phase re-runs queries with iteratively reduced maximal
/// data-flow path lengths to escape path explosion.
pub struct Ctx<'a> {
    /// The analyzed CPG.
    pub cpg: &'a Cpg,
    /// Maximum number of hops for transitive `DFG`/`EOG` traversals.
    pub max_path: usize,
}

impl<'a> Ctx<'a> {
    /// Create a context with the given path bound.
    pub fn new(cpg: &'a Cpg, max_path: usize) -> Self {
        Ctx { cpg, max_path }
    }

    fn g(&self) -> &cpg::Graph {
        &self.cpg.graph
    }

    // ----- calls ------------------------------------------------------------

    /// All call expressions whose local name is in `names`.
    pub fn calls_named(&self, names: &[&str]) -> Vec<NodeId> {
        self.g()
            .nodes_of_kind(NodeKind::CallExpression)
            .filter(|c| names.contains(&self.g().node(*c).props.local_name.as_str()))
            .collect()
    }

    /// The base expression of a method call (`a.b` in `a.b(x)`), if any.
    pub fn call_base(&self, call: NodeId) -> Option<NodeId> {
        self.g().ast_child(call, AstRole::Base)
    }

    /// Whether the call carries a `{value: ..}` option (or folded legacy
    /// `.value(..)`), i.e. sends ether.
    pub fn has_value_option(&self, call: NodeId) -> bool {
        let Some(spec) = self.g().ast_child(call, AstRole::Specifiers) else {
            return false;
        };
        self.g()
            .ast_children(spec)
            .any(|kv| self.g().node(kv).props.local_name == "value")
    }

    /// The value expression of a `{value: ..}` option.
    pub fn value_option(&self, call: NodeId) -> Option<NodeId> {
        let spec = self.g().ast_child(call, AstRole::Specifiers)?;
        let kv = self
            .g()
            .ast_children(spec)
            .find(|kv| self.g().node(*kv).props.local_name == "value")?;
        self.g().ast_child(kv, AstRole::Value)
    }

    /// Whether the call transfers ether: `send`/`transfer`, or a low-level
    /// call with a value option.
    pub fn is_ether_transfer(&self, call: NodeId) -> bool {
        let name = self.g().node(call).props.local_name.as_str();
        match name {
            "send" | "transfer" => self.call_base(call).is_some(),
            "call" | "callcode" => self.has_value_option(call),
            _ => false,
        }
    }

    /// All ether-transferring call sites of the unit.
    pub fn ether_transfers(&self) -> Vec<NodeId> {
        self.calls_named(&["send", "transfer", "call", "callcode"])
            .into_iter()
            .filter(|c| self.is_ether_transfer(*c))
            .collect()
    }

    /// Whether the call reaches external code (any low-level call, or a
    /// method call on an address-typed / unresolved contract-typed base).
    pub fn is_external_call(&self, call: NodeId) -> bool {
        let name = self.g().node(call).props.local_name.as_str();
        if EXTERNAL_CALL_NAMES.contains(&name) && self.call_base(call).is_some() {
            return true;
        }
        // A method call on a base that is not `this` and does not resolve
        // within the unit (no INVOKES edge) is external.
        if self.g().node(call).kind == NodeKind::CallExpression {
            if let Some(base) = self.call_base(call) {
                let base_code = &self.g().node(base).props.code;
                let resolved = self
                    .g()
                    .out_kind(call, EdgeKind::Invokes)
                    .next()
                    .is_some();
                return base_code != "this" && !resolved;
            }
        }
        false
    }

    // ----- data flow ---------------------------------------------------------

    /// Backward data-flow cone of a node, bounded by `max_path`.
    pub fn dfg_sources(&self, node: NodeId) -> HashSet<NodeId> {
        self.g().reach_backward(node, |k| k == EdgeKind::Dfg, self.max_path)
    }

    /// Whether data from a node whose `code` is in `codes` flows into `node`.
    pub fn flows_from_code(&self, node: NodeId, codes: &[&str]) -> bool {
        if codes.contains(&self.g().node(node).props.code.as_str()) {
            return true;
        }
        self.dfg_sources(node)
            .into_iter()
            .any(|src| codes.contains(&self.g().node(src).props.code.as_str()))
    }

    /// Whether a parameter of an externally callable, non-constructor
    /// function flows into `node`; returns the parameter.
    pub fn flows_from_public_param(&self, node: NodeId) -> Option<NodeId> {
        let mut sources: Vec<NodeId> = self.dfg_sources(node).into_iter().collect();
        sources.push(node);
        sources
            .into_iter()
            .filter(|src| self.g().node(*src).kind == NodeKind::ParamVariableDeclaration)
            .find(|param| {
                let Some(f) = self.g().ast_parent(*param) else { return false };
                if self.g().node(f).kind == NodeKind::ConstructorDeclaration {
                    return false;
                }
                !matches!(
                    self.g().node(f).props.visibility.as_deref(),
                    Some("internal") | Some("private")
                )
            })
    }

    /// Whether the node's value is attacker-controlled: derived from
    /// `msg.*`/`tx.origin` or from a public function parameter.
    pub fn attacker_controlled(&self, node: NodeId) -> bool {
        self.flows_from_code(node, ATTACKER_SOURCES)
            || self.flows_from_public_param(node).is_some()
    }

    /// All (writer node, field) pairs: references, member or subscript
    /// expressions through which a field declaration is written.
    pub fn field_writes(&self) -> Vec<(NodeId, NodeId)> {
        let mut writes = Vec::new();
        for field in self.g().nodes_of_kind(NodeKind::FieldDeclaration) {
            for writer in self.g().in_kind(field, EdgeKind::Dfg) {
                if matches!(
                    self.g().node(writer).kind,
                    NodeKind::DeclaredReferenceExpression
                        | NodeKind::MemberExpression
                        | NodeKind::SubscriptExpression
                ) {
                    writes.push((writer, field));
                }
            }
        }
        writes
    }

    /// Fields read inside access-control guards: a field whose value flows
    /// into a comparison against `msg.sender`/`tx.origin` that itself guards
    /// a `require`/`assert` or branch.
    pub fn access_control_fields(&self) -> HashSet<NodeId> {
        let mut fields = HashSet::new();
        for cmp in self.g().nodes_of_kind(NodeKind::BinaryOperator) {
            let props = &self.g().node(cmp).props;
            if !matches!(props.operator_code.as_deref(), Some("==") | Some("!=")) {
                continue;
            }
            // One side derived from msg.sender/tx.origin...
            if !self.flows_from_code(cmp, &["msg.sender", "tx.origin"]) {
                continue;
            }
            // ...and the comparison feeds a guard.
            if !self.feeds_guard(cmp) {
                continue;
            }
            for src in self.dfg_sources(cmp) {
                if self.g().node(src).kind == NodeKind::FieldDeclaration {
                    fields.insert(src);
                }
            }
        }
        fields
    }

    /// Whether an expression's value flows into a `require`/`assert` call or
    /// a branching statement condition.
    pub fn feeds_guard(&self, node: NodeId) -> bool {
        let mut forward: Vec<NodeId> = self
            .g()
            .reach_forward(node, |k| k == EdgeKind::Dfg, self.max_path)
            .into_iter()
            .collect();
        forward.push(node);
        forward.into_iter().any(|n| {
            let target = self.g().node(n);
            match target.kind {
                NodeKind::CallExpression => {
                    matches!(target.props.local_name.as_str(), "require" | "assert")
                }
                NodeKind::IfStatement
                | NodeKind::WhileStatement
                | NodeKind::DoStatement
                | NodeKind::ForStatement
                | NodeKind::ConditionalExpression => true,
                _ => false,
            }
        })
    }

    // ----- guards ------------------------------------------------------------

    /// Guard nodes (require/assert calls and `if` statements) that are
    /// evaluation-order-before `node` within its function.
    pub fn guards_before(&self, node: NodeId) -> Vec<NodeId> {
        let before = self.g().reach_backward(node, |k| k == EdgeKind::Eog, self.max_path);
        before
            .into_iter()
            .filter(|n| {
                let candidate = self.g().node(*n);
                match candidate.kind {
                    NodeKind::CallExpression => {
                        matches!(candidate.props.local_name.as_str(), "require" | "assert")
                    }
                    NodeKind::IfStatement => true,
                    _ => false,
                }
            })
            .collect()
    }

    /// The condition-carrying inputs of a guard: arguments of a require
    /// call, or the condition child of an `if`.
    pub fn guard_condition(&self, guard: NodeId) -> Vec<NodeId> {
        match self.g().node(guard).kind {
            NodeKind::CallExpression => {
                self.g().ast_children_role(guard, AstRole::Arguments).collect()
            }
            _ => self
                .g()
                .ast_child(guard, AstRole::Condition)
                .into_iter()
                .collect(),
        }
    }

    /// Whether a guard's condition involves the sender identity
    /// (`msg.sender` or `tx.origin`) — the canonical access-control check.
    pub fn guard_checks_sender(&self, guard: NodeId) -> bool {
        self.guard_condition(guard)
            .into_iter()
            .any(|cond| self.flows_from_code(cond, &["msg.sender", "tx.origin"]))
    }

    /// Whether a guard's condition involves data derived from `codes` or
    /// from a field subscripted by such data.
    pub fn guard_involves(&self, guard: NodeId, codes: &[&str]) -> bool {
        self.guard_condition(guard)
            .into_iter()
            .any(|cond| self.flows_from_code(cond, codes))
    }

    /// Whether `node` sits behind a sender-identity access check: some
    /// guard before it compares `msg.sender`/`tx.origin`. This is the
    /// "mitigations and exceptions" part of the access-control queries.
    pub fn is_access_guarded(&self, node: NodeId) -> bool {
        self.guards_before(node)
            .into_iter()
            .any(|guard| self.guard_checks_sender(guard))
    }

    /// Whether the node's enclosing function is a constructor (writes during
    /// initialization are legitimate).
    pub fn in_constructor(&self, node: NodeId) -> bool {
        self.g()
            .enclosing_function(node)
            .map(|f| self.g().node(f).kind == NodeKind::ConstructorDeclaration)
            .unwrap_or(false)
    }

    /// The function node enclosing `node`.
    pub fn function_of(&self, node: NodeId) -> Option<NodeId> {
        self.g().enclosing_function(node)
    }

    /// Whether the function is callable from outside: `public`, `external`
    /// or unspecified visibility (pre-0.5 default is public).
    pub fn is_externally_callable(&self, function: NodeId) -> bool {
        !matches!(
            self.g().node(function).props.visibility.as_deref(),
            Some("internal") | Some("private")
        )
    }

    /// Whether a function is a default function (fallback/receive/unnamed),
    /// the entry point of the Default Proxy Delegate pattern (Listing 12).
    pub fn is_default_function(&self, function: NodeId) -> bool {
        let props = &self.g().node(function).props;
        props.local_name.is_empty()
            && matches!(
                props.extra.get("fn_kind").map(|s| s.as_str()),
                Some("fallback") | Some("receive")
            )
    }

    /// Whether the function contains a check on `msg.data` (typically
    /// `msg.data.length`) feeding a guard — the Listing 12 mitigation.
    pub fn checks_msg_data(&self, function: NodeId) -> bool {
        self.g().descendants(function).into_iter().any(|n| {
            let node = self.g().node(n);
            node.props.code.starts_with("msg.data") && self.feeds_guard(n)
        })
    }

    /// Nodes evaluation-order reachable from `from`, crossing into called
    /// functions (`EOG|INVOKES|RETURNS*`, the Listing 17 closure).
    pub fn eog_interproc_after(&self, from: NodeId) -> HashSet<NodeId> {
        self.g().reach_forward(
            from,
            |k| matches!(k, EdgeKind::Eog | EdgeKind::Invokes | EdgeKind::Returns),
            self.max_path,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(cpg: &Cpg) -> Ctx<'_> {
        Ctx::new(cpg, usize::MAX)
    }

    #[test]
    fn ether_transfer_detection() {
        let cpg = Cpg::from_snippet(
            "to.transfer(1);\nto.send(2);\nto.call{value: 3}(\"\");\nto.call(data);",
        )
        .unwrap();
        let ctx = ctx_of(&cpg);
        let transfers = ctx.ether_transfers();
        assert_eq!(transfers.len(), 3); // plain call without value excluded
    }

    #[test]
    fn attacker_controlled_via_msg_sender() {
        let cpg = Cpg::from_snippet("function f() public { target = msg.sender; g(target); }")
            .unwrap();
        let ctx = ctx_of(&cpg);
        let call = ctx.calls_named(&["g"])[0];
        let arg = cpg.graph.ast_child(call, AstRole::Arguments).unwrap();
        assert!(ctx.attacker_controlled(arg));
    }

    #[test]
    fn attacker_controlled_via_public_param() {
        let cpg =
            Cpg::from_snippet("function f(address to) public { to.transfer(1); }").unwrap();
        let ctx = ctx_of(&cpg);
        let call = ctx.calls_named(&["transfer"])[0];
        let base = ctx.call_base(call).unwrap();
        assert!(ctx.attacker_controlled(base));
    }

    #[test]
    fn internal_params_are_not_attacker_controlled() {
        let cpg = Cpg::from_snippet(
            "contract C { function f(address to) internal { to.transfer(1); } }",
        )
        .unwrap();
        let ctx = ctx_of(&cpg);
        let call = ctx.calls_named(&["transfer"])[0];
        let base = ctx.call_base(call).unwrap();
        assert!(!ctx.attacker_controlled(base));
    }

    #[test]
    fn guards_before_finds_require() {
        let cpg = Cpg::from_snippet(
            "function f() public { require(msg.sender == owner); x = 1; }",
        )
        .unwrap();
        let ctx = ctx_of(&cpg);
        let write = cpg
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| cpg.graph.node(*n).props.code == "x = 1")
            .unwrap();
        assert!(ctx.is_access_guarded(write));
    }

    #[test]
    fn unguarded_write_detected() {
        let cpg = Cpg::from_snippet("function f() public { owner = msg.sender; }").unwrap();
        let ctx = ctx_of(&cpg);
        let write = cpg
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .next()
            .unwrap();
        assert!(!ctx.is_access_guarded(write));
    }

    #[test]
    fn access_control_fields_found() {
        let cpg = Cpg::from_snippet(
            "contract C { address owner; \
             function w() public { require(msg.sender == owner); x = 1; } }",
        )
        .unwrap();
        let ctx = ctx_of(&cpg);
        let fields = ctx.access_control_fields();
        assert_eq!(fields.len(), 1);
        let field = *fields.iter().next().unwrap();
        assert_eq!(cpg.graph.node(field).props.local_name, "owner");
    }

    #[test]
    fn field_writes_exclude_reads() {
        let cpg = Cpg::from_snippet(
            "contract C { uint total; \
             function w(uint x) public { total = x; } \
             function r() public returns (uint) { return total; } }",
        )
        .unwrap();
        let ctx = ctx_of(&cpg);
        let writes = ctx.field_writes();
        assert_eq!(writes.len(), 1);
    }

    #[test]
    fn path_limit_cuts_long_flows() {
        // A long chain of assignments; with a tiny max_path the source no
        // longer reaches the sink (path-reduction semantics of §6.3).
        let cpg = Cpg::from_snippet(
            "function f() public { a = msg.sender; b = a; c = b; d = c; e = d; g(e); }",
        )
        .unwrap();
        let full = Ctx::new(&cpg, usize::MAX);
        let call = full.calls_named(&["g"])[0];
        let arg = cpg.graph.ast_child(call, AstRole::Arguments).unwrap();
        assert!(full.flows_from_code(arg, &["msg.sender"]));
        let limited = Ctx::new(&cpg, 2);
        assert!(!limited.flows_from_code(arg, &["msg.sender"]));
    }

    #[test]
    fn default_function_detection() {
        let cpg = Cpg::from_snippet("contract C { function() payable {} }").unwrap();
        let ctx = ctx_of(&cpg);
        let default_fns: Vec<NodeId> = cpg
            .graph
            .nodes_of_kind(NodeKind::FunctionDeclaration)
            .filter(|f| ctx.is_default_function(*f))
            .collect();
        assert_eq!(default_fns.len(), 1);
    }
}
