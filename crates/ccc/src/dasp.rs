//! The DASP Top-10 taxonomy and the 17 query identifiers of CCC (§4.4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The Decentralized Application Security Project Top-10 categories (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dasp {
    /// Lacking restrictions to sensitive functionality.
    AccessControl,
    /// Over- and underflows.
    Arithmetic,
    /// Use of predictable values for randomness.
    BadRandomness,
    /// Operations that allow attackers to hinder contract execution.
    DenialOfService,
    /// Benefiting from preempting someone else's transaction.
    FrontRunning,
    /// Repeated/nested execution through external contract calls.
    Reentrancy,
    /// Functions vulnerable to transaction-address padding attacks.
    ShortAddresses,
    /// Predictable effects due to miner-chosen timestamps.
    TimeManipulation,
    /// Unchecked return values of critical functions.
    UncheckedLowLevelCalls,
    /// Everything else.
    UnknownUnknowns,
}

impl Dasp {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dasp::AccessControl => "Access Control",
            Dasp::Arithmetic => "Arithmetic",
            Dasp::BadRandomness => "Bad Randomness",
            Dasp::DenialOfService => "Denial of Service",
            Dasp::FrontRunning => "Front Running",
            Dasp::Reentrancy => "Reentrancy",
            Dasp::ShortAddresses => "Short Addresses",
            Dasp::TimeManipulation => "Time Manipulation",
            Dasp::UncheckedLowLevelCalls => "Unchecked Low Level Calls",
            Dasp::UnknownUnknowns => "Unknown Unknowns",
        }
    }

    /// All ten categories, in the paper's Table 1 order.
    pub const ALL: &'static [Dasp] = &[
        Dasp::AccessControl,
        Dasp::Arithmetic,
        Dasp::BadRandomness,
        Dasp::DenialOfService,
        Dasp::FrontRunning,
        Dasp::Reentrancy,
        Dasp::ShortAddresses,
        Dasp::TimeManipulation,
        Dasp::UncheckedLowLevelCalls,
        Dasp::UnknownUnknowns,
    ];
}

impl fmt::Display for Dasp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 17 vulnerability queries of CCC, one per Appendix B listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueryId {
    /// Listing 3 — unrestricted writes to state used for access control.
    AcUnrestrictedWrite,
    /// Listing 4 — unrestricted access to contract-destroying functions.
    AcSelfDestruct,
    /// Listing 12 — call delegation with unsanitized input (default proxy).
    AcDefaultProxyDelegate,
    /// Listing 19 — `tx.origin` used for branching.
    AcTxOrigin,
    /// Listing 5 — address padding issues at call sites.
    ShortAddressCall,
    /// Listing 6 — state writes vulnerable to address padding.
    ShortAddressStateWrite,
    /// Listing 7 — bad sources of randomness.
    BadRandomnessSource,
    /// Listing 8 — external call failure blocking money transfers.
    DosExternalCallTransfer,
    /// Listing 9 — external call failure blocking state changes.
    DosExternalCallState,
    /// Listing 11 — attacker-inflatable expensive loops.
    DosExpensiveLoop,
    /// Listing 13 — clearable collections used for transfers.
    DosClearableCollection,
    /// Listing 10 — critical calls with ignored return values.
    UncheckedCall,
    /// Listing 14 — miner/front-runner can claim the same benefit.
    FrontRunnableBenefit,
    /// Listing 15 — writes through uninitialized local storage pointers.
    UninitializedStoragePointer,
    /// Listing 16 — over/underflowable arithmetic.
    ArithmeticOverflow,
    /// Listing 17 — call paths vulnerable to reentrancy.
    Reentrancy,
    /// Listing 18 — miner-controllable timestamp changes the outcome.
    TimestampDependence,
}

impl QueryId {
    /// The DASP category this query reports into.
    pub fn category(self) -> Dasp {
        match self {
            QueryId::AcUnrestrictedWrite
            | QueryId::AcSelfDestruct
            | QueryId::AcDefaultProxyDelegate
            | QueryId::AcTxOrigin => Dasp::AccessControl,
            QueryId::ShortAddressCall | QueryId::ShortAddressStateWrite => Dasp::ShortAddresses,
            QueryId::BadRandomnessSource => Dasp::BadRandomness,
            QueryId::DosExternalCallTransfer
            | QueryId::DosExternalCallState
            | QueryId::DosExpensiveLoop
            | QueryId::DosClearableCollection => Dasp::DenialOfService,
            QueryId::UncheckedCall => Dasp::UncheckedLowLevelCalls,
            QueryId::FrontRunnableBenefit => Dasp::FrontRunning,
            QueryId::UninitializedStoragePointer => Dasp::UnknownUnknowns,
            QueryId::ArithmeticOverflow => Dasp::Arithmetic,
            QueryId::Reentrancy => Dasp::Reentrancy,
            QueryId::TimestampDependence => Dasp::TimeManipulation,
        }
    }

    /// Appendix B listing number of the query.
    pub fn listing(self) -> u32 {
        match self {
            QueryId::AcUnrestrictedWrite => 3,
            QueryId::AcSelfDestruct => 4,
            QueryId::ShortAddressCall => 5,
            QueryId::ShortAddressStateWrite => 6,
            QueryId::BadRandomnessSource => 7,
            QueryId::DosExternalCallTransfer => 8,
            QueryId::DosExternalCallState => 9,
            QueryId::UncheckedCall => 10,
            QueryId::DosExpensiveLoop => 11,
            QueryId::AcDefaultProxyDelegate => 12,
            QueryId::DosClearableCollection => 13,
            QueryId::FrontRunnableBenefit => 14,
            QueryId::UninitializedStoragePointer => 15,
            QueryId::ArithmeticOverflow => 16,
            QueryId::Reentrancy => 17,
            QueryId::TimestampDependence => 18,
            QueryId::AcTxOrigin => 19,
        }
    }

    /// Stable identifier of the query, as used in the versioned JSON
    /// encoding of the analysis API (`pipeline::api`).
    pub fn name(self) -> &'static str {
        match self {
            QueryId::AcUnrestrictedWrite => "AcUnrestrictedWrite",
            QueryId::AcSelfDestruct => "AcSelfDestruct",
            QueryId::AcDefaultProxyDelegate => "AcDefaultProxyDelegate",
            QueryId::AcTxOrigin => "AcTxOrigin",
            QueryId::ShortAddressCall => "ShortAddressCall",
            QueryId::ShortAddressStateWrite => "ShortAddressStateWrite",
            QueryId::BadRandomnessSource => "BadRandomnessSource",
            QueryId::DosExternalCallTransfer => "DosExternalCallTransfer",
            QueryId::DosExternalCallState => "DosExternalCallState",
            QueryId::DosExpensiveLoop => "DosExpensiveLoop",
            QueryId::DosClearableCollection => "DosClearableCollection",
            QueryId::UncheckedCall => "UncheckedCall",
            QueryId::FrontRunnableBenefit => "FrontRunnableBenefit",
            QueryId::UninitializedStoragePointer => "UninitializedStoragePointer",
            QueryId::ArithmeticOverflow => "ArithmeticOverflow",
            QueryId::Reentrancy => "Reentrancy",
            QueryId::TimestampDependence => "TimestampDependence",
        }
    }

    /// The inverse of [`QueryId::name`]: resolve a detector name from a
    /// request. `None` for unknown names (the caller turns this into an
    /// `AnalysisError::Query`).
    pub fn parse_name(name: &str) -> Option<QueryId> {
        QueryId::ALL.iter().copied().find(|q| q.name() == name)
    }

    /// Short description for reports.
    pub fn description(self) -> &'static str {
        match self {
            QueryId::AcUnrestrictedWrite => {
                "unrestricted write to a state variable used for access control"
            }
            QueryId::AcSelfDestruct => "unrestricted access to a contract-destroying function",
            QueryId::AcDefaultProxyDelegate => {
                "default function delegates calls without sanitizing msg.data"
            }
            QueryId::AcTxOrigin => "tx.origin used for authorization branching",
            QueryId::ShortAddressCall => "address padding issue at a call site",
            QueryId::ShortAddressStateWrite => "state write vulnerable to address padding",
            QueryId::BadRandomnessSource => "predictable value used as randomness source",
            QueryId::DosExternalCallTransfer => {
                "external call failure prevents other money transfers"
            }
            QueryId::DosExternalCallState => "external call failure prevents state changes",
            QueryId::DosExpensiveLoop => "expensive loop inflatable by an attacker",
            QueryId::DosClearableCollection => {
                "collection used for transfers can be cleared outside initialization"
            }
            QueryId::UncheckedCall => "return value of a critical call is ignored",
            QueryId::FrontRunnableBenefit => {
                "beneficial state change claimable by any transaction sender"
            }
            QueryId::UninitializedStoragePointer => {
                "write through a local struct that may alias state variables"
            }
            QueryId::ArithmeticOverflow => "arithmetic operation can over- or underflow",
            QueryId::Reentrancy => "state write after a reentrant external call",
            QueryId::TimestampDependence => {
                "miner-chosen timestamp changes the transaction outcome"
            }
        }
    }

    /// All 17 queries, in listing order.
    pub const ALL: &'static [QueryId] = &[
        QueryId::AcUnrestrictedWrite,
        QueryId::AcSelfDestruct,
        QueryId::ShortAddressCall,
        QueryId::ShortAddressStateWrite,
        QueryId::BadRandomnessSource,
        QueryId::DosExternalCallTransfer,
        QueryId::DosExternalCallState,
        QueryId::UncheckedCall,
        QueryId::DosExpensiveLoop,
        QueryId::AcDefaultProxyDelegate,
        QueryId::DosClearableCollection,
        QueryId::FrontRunnableBenefit,
        QueryId::UninitializedStoragePointer,
        QueryId::ArithmeticOverflow,
        QueryId::Reentrancy,
        QueryId::TimestampDependence,
        QueryId::AcTxOrigin,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seventeen_queries_cover_all_ten_categories() {
        assert_eq!(QueryId::ALL.len(), 17);
        let categories: HashSet<Dasp> = QueryId::ALL.iter().map(|q| q.category()).collect();
        assert_eq!(categories.len(), Dasp::ALL.len());
    }

    #[test]
    fn listing_numbers_are_unique_and_in_appendix_range() {
        let listings: HashSet<u32> = QueryId::ALL.iter().map(|q| q.listing()).collect();
        assert_eq!(listings.len(), 17);
        assert!(listings.iter().all(|l| (3..=19).contains(l)));
    }
}
