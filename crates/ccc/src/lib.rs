//! CCC — the CPG Contract Checker.
//!
//! Pattern-based vulnerability detection over code property graphs,
//! applicable to full contracts *and* incomplete, non-compilable snippets
//! (§4 of the paper). Each of the 17 queries follows the three-part design
//! of §4.3:
//!
//! 1. a **base pattern** over syntax, data flow and evaluation order,
//! 2. **conditions of relevancy** (e.g. attacker-controlled inputs,
//!    ether at stake), and
//! 3. **mitigations and exceptions** expressed as negated sub-patterns
//!    (access guards, payload-size checks, SafeMath, mutexes, ...).
//!
//! ```
//! use ccc::{Checker, Dasp};
//!
//! let findings = Checker::new()
//!     .check_snippet("function() {lib.delegatecall(msg.data);}")
//!     .unwrap();
//! assert_eq!(findings[0].category(), Dasp::AccessControl);
//! ```


#![warn(missing_docs)]

pub mod cypherlike;
pub mod dasp;
pub mod helpers;
pub mod queries;

pub use dasp::{Dasp, QueryId};
pub use solidity::AnalysisError;

use cpg::{Cpg, NodeId};
use helpers::Ctx;
use serde::{Deserialize, Serialize};

/// A reported vulnerability location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The query that produced the finding.
    pub query: QueryId,
    /// The reported node.
    pub node: NodeId,
    /// Canonical code of the reported node.
    pub code: String,
    /// 1-based source line of the reported node.
    pub line: u32,
}

impl Finding {
    pub(crate) fn new(ctx: &Ctx, query: QueryId, node: NodeId) -> Finding {
        let n = ctx.cpg.graph.node(node);
        Finding {
            query,
            node,
            code: n.props.code.to_string(),
            line: ctx.cpg.graph.line_of(n.span),
        }
    }

    /// The DASP category of the finding.
    pub fn category(&self) -> Dasp {
        self.query.category()
    }
}

/// Result of an isolated check: the findings that survived, plus the
/// detectors that panicked (each already converted to a typed error).
#[derive(Debug)]
pub struct CheckOutcome {
    /// Findings from all detectors that completed.
    pub findings: Vec<Finding>,
    /// Detectors that panicked, with the panic converted to
    /// [`AnalysisError::Internal`].
    pub detector_errors: Vec<(QueryId, AnalysisError)>,
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Maximum transitive path length for `DFG`/`EOG` traversals. Reducing
    /// it implements the paper's second validation phase (§6.3): escaping
    /// path explosion at the cost of long-range flows.
    pub max_path: usize,
    /// Queries to run; `None` runs all 17.
    pub queries: Option<Vec<QueryId>>,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig { max_path: usize::MAX, queries: None }
    }
}

/// The vulnerability checker.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    config: CheckerConfig,
}

impl Checker {
    /// A checker with default configuration (all 17 queries, unbounded
    /// paths).
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with a reduced maximal data-flow path length.
    pub fn with_max_path(max_path: usize) -> Checker {
        Checker {
            config: CheckerConfig { max_path, ..CheckerConfig::default() },
        }
    }

    /// A checker restricted to a set of queries — used by the validation
    /// pipeline to re-check only the vulnerability found in a snippet
    /// (§6.3). Borrows the slice; the checker keeps its own copy of the
    /// (at most 17 `Copy`) ids.
    pub fn with_queries(queries: &[QueryId]) -> Checker {
        Checker {
            config: CheckerConfig {
                queries: Some(queries.to_vec()),
                ..CheckerConfig::default()
            },
        }
    }

    /// Access the configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Restrict the queries of this checker.
    pub fn restrict(mut self, queries: &[QueryId]) -> Checker {
        self.config.queries = Some(queries.to_vec());
        self
    }

    /// Set the path bound of this checker.
    pub fn bounded(mut self, max_path: usize) -> Checker {
        self.config.max_path = max_path;
        self
    }

    /// Run the configured queries over a translated CPG.
    ///
    /// Each detector runs isolated: a panicking query (a poisoned
    /// contract, an injected fault) is dropped and counted instead of
    /// unwinding through the caller. Use [`Checker::check_isolated`] when
    /// the per-detector failures themselves matter (the `pipeline::api`
    /// facade does, so a degraded scan surfaces as a typed error instead
    /// of a silently shorter finding list).
    pub fn check(&self, cpg: &Cpg) -> Vec<Finding> {
        self.check_isolated(cpg).findings
    }

    /// Run the configured queries, isolating each detector with
    /// `catch_unwind` and reporting per-detector failures alongside the
    /// surviving findings.
    pub fn check_isolated(&self, cpg: &Cpg) -> CheckOutcome {
        static CHECKS: telemetry::Counter = telemetry::Counter::new("ccc.checks");
        static CANDIDATES: telemetry::Counter = telemetry::Counter::new("ccc.candidates");
        static FINDINGS: telemetry::Counter = telemetry::Counter::new("ccc.findings");
        static DETECTOR_PANICS: telemetry::Counter =
            telemetry::Counter::new("ccc.detector_panics");
        let _span = telemetry::span("ccc/check");
        let _stage = telemetry::trace::stage("ccc-check");
        CHECKS.incr();
        let ctx = Ctx::new(cpg, self.config.max_path);
        let queries: &[QueryId] = match &self.config.queries {
            Some(qs) => qs,
            None => QueryId::ALL,
        };
        let mut findings = Vec::new();
        let mut detector_errors = Vec::new();
        for query in queries {
            let unit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Chaos hook: an injected error at `ccc/detector` escalates
                // to a panic so it flows through the same isolation path.
                if let Some(message) = faultinject::fire("ccc/detector") {
                    panic!("faultinject: {message}");
                }
                queries::run_query(&ctx, *query)
            }));
            match unit {
                Ok(batch) => findings.extend(batch),
                Err(payload) => {
                    DETECTOR_PANICS.incr();
                    detector_errors.push((
                        *query,
                        AnalysisError::from_panic(
                            payload,
                            &format!("detector {}", query.name()),
                        ),
                    ));
                }
            }
        }
        CANDIDATES.add(findings.len() as u64);
        findings.sort_by_key(|f| (f.line, f.query));
        findings.dedup();
        FINDINGS.add(findings.len() as u64);
        CheckOutcome { findings, detector_errors }
    }

    /// Parse a snippet tolerantly, translate and check it.
    pub fn check_snippet(&self, src: &str) -> Result<Vec<Finding>, AnalysisError> {
        Ok(self.check(&Cpg::from_snippet(src)?))
    }

    /// Parse a full source, translate and check it.
    pub fn check_source(&self, src: &str) -> Result<Vec<Finding>, AnalysisError> {
        Ok(self.check(&Cpg::from_source(src)?))
    }

    /// A proxy for the cost of analyzing a CPG, used by the validation
    /// pipeline to simulate the paper's per-contract timeouts (graph size
    /// times connectivity approximates the pattern-matching search space).
    pub fn analysis_cost(cpg: &Cpg) -> u64 {
        let nodes = cpg.graph.node_count() as u64;
        let edges = cpg.graph.edge_count() as u64;
        nodes.saturating_mul(edges.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_check_on_vulnerable_bank_finds_reentrancy() {
        let findings = Checker::new()
            .check_snippet(
                "contract Dao { mapping(address => uint) balances; \
                 function withdraw() public { \
                   uint amount = balances[msg.sender]; \
                   msg.sender.call{value: amount}(\"\"); \
                   balances[msg.sender] = 0; } }",
            )
            .unwrap();
        assert!(findings.iter().any(|f| f.query == QueryId::Reentrancy));
    }

    #[test]
    fn restricted_checker_only_runs_selected_queries() {
        let src = "contract C { function f(address to) public { to.send(1); } \
                   function kill() public { selfdestruct(msg.sender); } }";
        let all = Checker::new().check_snippet(src).unwrap();
        assert!(all.iter().any(|f| f.query == QueryId::UncheckedCall));
        assert!(all.iter().any(|f| f.query == QueryId::AcSelfDestruct));
        let only_unchecked = Checker::with_queries(&[QueryId::UncheckedCall])
            .check_snippet(src)
            .unwrap();
        assert!(only_unchecked.iter().all(|f| f.query == QueryId::UncheckedCall));
        assert!(!only_unchecked.is_empty());
    }

    #[test]
    fn findings_carry_location_and_code() {
        let findings = Checker::new()
            .check_snippet("function f(address to) public {\n to.send(1 ether)\n}")
            .unwrap();
        let f = findings.iter().find(|f| f.query == QueryId::UncheckedCall).unwrap();
        assert_eq!(f.line, 2);
        assert!(f.code.contains("send"));
    }

    #[test]
    fn clean_contract_has_no_findings() {
        let findings = Checker::new()
            .check_source(
                "pragma solidity ^0.8.0; \
                 contract Safe { \
                   address owner; \
                   mapping(address => uint) balances; \
                   constructor() { owner = msg.sender; } \
                   function deposit() public payable { balances[msg.sender] += msg.value; } \
                   function withdraw(uint amount) public { \
                     require(balances[msg.sender] >= amount); \
                     balances[msg.sender] -= amount; \
                     msg.sender.transfer(amount); } }",
            )
            .unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn snippet_level_analysis_works_on_statements() {
        // A bare-statement snippet (§4.6.1 Statements dataset shape).
        let findings = Checker::new()
            .check_snippet("to.send(msg.value)")
            .unwrap();
        assert!(findings.iter().any(|f| f.query == QueryId::UncheckedCall));
    }

    #[test]
    fn analysis_cost_grows_with_contract_size() {
        let small = Cpg::from_snippet("x = 1;").unwrap();
        let large = Cpg::from_snippet(
            &"function f(uint a) public { total += a; } ".repeat(20),
        )
        .unwrap();
        assert!(Checker::analysis_cost(&large) > Checker::analysis_cost(&small));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use cpg::BuildOptions;

    /// The §4.2.2 ablation: without modifier expansion, modifier-based
    /// access guards are invisible and the access-control queries
    /// misreport — expansion is what makes snippet-level modifier use
    /// analyzable.
    #[test]
    fn modifier_expansion_is_needed_for_guard_detection() {
        let src = "contract C { address owner; \
                   modifier onlyOwner() { require(msg.sender == owner); _; } \
                   constructor() { owner = msg.sender; } \
                   function kill() public onlyOwner() { selfdestruct(owner); } }";
        let unit = solidity::parse_snippet(src).unwrap();
        let checker = Checker::with_queries(&[QueryId::AcSelfDestruct]);

        let expanded = Cpg::from_unit_with(&unit, BuildOptions { expand_modifiers: true });
        assert!(
            checker.check(&expanded).is_empty(),
            "with expansion the modifier guard must be seen"
        );

        let unexpanded = Cpg::from_unit_with(&unit, BuildOptions { expand_modifiers: false });
        assert!(
            !checker.check(&unexpanded).is_empty(),
            "without expansion the guard is invisible and the selfdestruct is flagged"
        );
    }
}
