//! Declarative versions of CCC base patterns, in the query language of
//! [`graphquery`].
//!
//! The paper expresses its 17 vulnerability searches as Cypher queries over
//! a Neo4j database (§4.3, Appendix B). The programmatic detectors in
//! [`crate::queries`] are the authoritative implementation here (they need
//! bounded traversals for the §6.3 path reduction); this module carries the
//! declarative *base patterns* of several queries so that (a) the pattern
//! language of the paper stays executable, and (b) the engine's semantics
//! can be cross-checked against the programmatic results.
//!
//! Mitigation sub-patterns (`WHERE NOT EXISTS { ... }`) are included where
//! the query language can express them; the remaining conditions of
//! relevancy live only in the programmatic detectors.

use crate::dasp::QueryId;
use cpg::Cpg;
use graphquery::query_cpg;

/// A declarative base pattern: the query text plus the variable that names
/// the reported node.
#[derive(Debug, Clone, Copy)]
pub struct BasePattern {
    /// The query it belongs to.
    pub query: QueryId,
    /// Query text in the [`graphquery`] language.
    pub text: &'static str,
    /// The RETURN variable holding the finding location.
    pub var: &'static str,
}

/// Declarative base patterns for the queries whose shape the language can
/// carry. Each returns candidate locations; the programmatic detector
/// prunes them with its conditions of relevancy and mitigations.
pub const BASE_PATTERNS: &[BasePattern] = &[
    // Listing 19 — tx.origin used for branching: a comparison fed by
    // tx.origin whose result feeds a require/assert guard.
    BasePattern {
        query: QueryId::AcTxOrigin,
        text: "MATCH (t:MemberExpression {code: 'tx.origin'})-[:DFG*]->(b:BinaryOperator) \
               MATCH (b)-[:DFG*]->(g:CallExpression) \
               WHERE b.operatorCode IN ['==', '!='] \
                 AND g.localName IN ['require', 'assert'] \
               RETURN b",
        var: "b",
    },
    // Listing 10 — critical calls whose return value is ignored: a
    // low-level call with a base and no outgoing data flow.
    BasePattern {
        query: QueryId::UncheckedCall,
        text: "MATCH (c:CallExpression)-[:BASE]->(base) \
               WHERE c.localName IN ['send', 'call', 'delegatecall', 'callcode', 'staticcall'] \
                 AND NOT EXISTS { (c)-[:DFG]->(user) } \
               RETURN c",
        var: "c",
    },
    // Listing 12 — default proxy delegate: a default function reaching a
    // delegatecall whose argument carries msg.data.
    BasePattern {
        query: QueryId::AcDefaultProxyDelegate,
        text: "MATCH (f:FunctionDeclaration)-[:EOG*]->(c:CallExpression) \
               MATCH (c)-[:ARGUMENTS]->(a) \
               WHERE f.localName = '' \
                 AND c.localName IN ['delegatecall', 'callcode'] \
                 AND (a.code = 'msg.data' \
                      OR EXISTS { (m:MemberExpression {code: 'msg.data'})-[:DFG*]->(a) }) \
               RETURN c",
        var: "c",
    },
    // Listing 7 (fragment) — bad randomness sources flowing into an
    // entropy computation (hash call or modulo).
    BasePattern {
        query: QueryId::BadRandomnessSource,
        text: "MATCH (r:MemberExpression)-[:DFG*]->(e) \
               WHERE r.code IN ['block.timestamp', 'block.number', 'block.difficulty', 'block.coinbase'] \
                 AND (e.localName IN ['keccak256', 'sha3', 'sha256'] OR e.operatorCode = '%') \
               RETURN r",
        var: "r",
    },
    // Listing 17 (fragment) — reentrancy: a gas-forwarding call followed on
    // the interprocedural order by a write into a field.
    BasePattern {
        query: QueryId::Reentrancy,
        text: "MATCH (c:CallExpression)-[:EOG|INVOKES|RETURNS*]->(w)-[:DFG]->(f:FieldDeclaration) \
               WHERE c.localName IN ['call', 'callcode', 'delegatecall'] \
                 AND EXISTS { (c)-[:BASE]->(b) } \
               RETURN c",
        var: "c",
    },
    // Listing 4 (fragment) — reachable selfdestruct.
    BasePattern {
        query: QueryId::AcSelfDestruct,
        text: "MATCH (c:CallExpression) \
               WHERE c.localName IN ['selfdestruct', 'suicide'] \
               RETURN c",
        var: "c",
    },
    // Listing 16 (fragment) — arithmetic over attacker-reachable data: an
    // overflowable operation fed by a function parameter.
    BasePattern {
        query: QueryId::ArithmeticOverflow,
        text: "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(b:BinaryOperator) \
               WHERE b.operatorCode IN ['+', '-', '*', '**', '+=', '-=', '*='] \
               RETURN b",
        var: "b",
    },
    // Listing 11 (fragment) — loops whose condition is fed by a parameter
    // or a collection length.
    BasePattern {
        query: QueryId::DosExpensiveLoop,
        text: "MATCH (l)-[:CONDITION]->(cond) \
               WHERE ('ForStatement' IN labels(l) OR 'WhileStatement' IN labels(l)) \
                 AND (EXISTS { (p:ParamVariableDeclaration)-[:DFG*]->(cond) } \
                      OR EXISTS { (m:MemberExpression {localName: 'length'})-[:DFG*]->(cond) }) \
               RETURN l",
        var: "l",
    },
    // Listing 3 (fragment) — writes to a field that elsewhere gates access
    // (compared against msg.sender).
    BasePattern {
        query: QueryId::AcUnrestrictedWrite,
        text: "MATCH (w:DeclaredReferenceExpression)-[:DFG]->(f:FieldDeclaration) \
               WHERE EXISTS { (f)-[:DFG*]->(cmp:BinaryOperator {operatorCode: '=='}) \
                              WHERE EXISTS { (m:MemberExpression {code: 'msg.sender'})-[:DFG*]->(cmp) } } \
               RETURN w",
        var: "w",
    },
    // Listing 8 (fragment) — a revert-on-failure transfer followed by
    // another money-transferring call.
    BasePattern {
        query: QueryId::DosExternalCallTransfer,
        text: "MATCH (c1:CallExpression)-[:EOG*]->(c2:CallExpression) \
               WHERE c1.localName = 'transfer' \
                 AND c2.localName IN ['transfer', 'send', 'call'] \
                 AND c1 <> c2 \
               RETURN c1",
        var: "c1",
    },
    // Listing 5 (fragment) — a function taking an address parameter whose
    // body transfers ether.
    BasePattern {
        query: QueryId::ShortAddressCall,
        text: "MATCH (f:FunctionDeclaration)-[:PARAMETERS]->(p:ParamVariableDeclaration) \
               MATCH (f)-[:EOG*]->(c:CallExpression) \
               WHERE p.type = 'address' AND c.localName IN ['transfer', 'send'] \
               RETURN c",
        var: "c",
    },
    // Listing 14 (fragment) — ether paid out to msg.sender.
    BasePattern {
        query: QueryId::FrontRunnableBenefit,
        text: "MATCH (c:CallExpression)-[:BASE]->(b:MemberExpression {code: 'msg.sender'}) \
               WHERE c.localName IN ['transfer', 'send', 'call'] \
               RETURN c",
        var: "c",
    },
    // Listing 13 (fragment) — a whole collection deleted outside
    // initialization.
    BasePattern {
        query: QueryId::DosClearableCollection,
        text: "MATCH (u:UnaryOperator {operatorCode: 'delete'})-[:INPUT]->(r)-[:DFG]->(f:FieldDeclaration) \
               RETURN u",
        var: "u",
    },
    // Listing 18 (fragment) — timestamp flowing into a comparison that
    // guards a branch.
    BasePattern {
        query: QueryId::TimestampDependence,
        text: "MATCH (t:MemberExpression {code: 'block.timestamp'})-[:DFG*]->(b:BinaryOperator) \
               WHERE b.operatorCode IN ['<', '>', '<=', '>=', '==', '!='] \
                 AND (EXISTS { (b)-[:DFG*]->(i:IfStatement) } \
                      OR EXISTS { (b)-[:DFG*]->(g:CallExpression) WHERE g.localName IN ['require', 'assert'] }) \
               RETURN t",
        var: "t",
    },
];

/// Run a declarative base pattern over a CPG, returning the matched node
/// count.
pub fn run_base_pattern(cpg: &Cpg, pattern: &BasePattern) -> usize {
    query_cpg(&cpg.graph, pattern.text, pattern.var)
        .map(|hits| hits.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::Ctx;
    use crate::queries::run_query;

    fn pattern_of(query: QueryId) -> &'static BasePattern {
        BASE_PATTERNS.iter().find(|p| p.query == query).unwrap()
    }

    #[test]
    fn all_patterns_parse() {
        for pattern in BASE_PATTERNS {
            graphquery::parse_query(pattern.text)
                .unwrap_or_else(|e| panic!("{:?}: {e}", pattern.query));
        }
    }

    /// On a positive instance, the declarative base pattern must fire
    /// whenever the programmatic detector does (the base pattern is a
    /// superset: it lacks the mitigation pruning).
    #[test]
    fn base_patterns_cover_programmatic_findings() {
        let samples: &[(QueryId, &str)] = &[
            (
                QueryId::AcTxOrigin,
                "contract C { address owner; function w() public { \
                 require(tx.origin == owner); msg.sender.transfer(1); } }",
            ),
            (
                QueryId::UncheckedCall,
                "function f(address to) public { to.send(1 ether); }",
            ),
            (
                QueryId::AcDefaultProxyDelegate,
                "function() {lib.delegatecall(msg.data);}",
            ),
            (
                QueryId::BadRandomnessSource,
                "contract L { address[] ps; function d() public { \
                 uint w = uint(keccak256(block.timestamp)) % ps.length; \
                 ps[w].transfer(1); } }",
            ),
            (
                QueryId::Reentrancy,
                "contract D { mapping(address => uint) b; function w() public { \
                 msg.sender.call{value: b[msg.sender]}(\"\"); b[msg.sender] = 0; } }",
            ),
            (
                QueryId::AcSelfDestruct,
                "contract K { function kill() public { selfdestruct(msg.sender); } }",
            ),
            (
                QueryId::TimestampDependence,
                "contract T { uint start; uint pot; function go() public { \
                 require(block.timestamp >= start); msg.sender.transfer(pot); } }",
            ),
            (
                QueryId::ArithmeticOverflow,
                "contract C { mapping(address => uint) bal; \
                 function t(address to, uint v) public { bal[msg.sender] -= v; \
                 bal[to] += v; } }",
            ),
            (
                QueryId::DosExpensiveLoop,
                "contract C { address[] hs; mapping(address => uint) owed; \
                 function pay() public { for (uint i = 0; i < hs.length; i++) { \
                 hs[i].transfer(owed[hs[i]]); } } }",
            ),
            (
                QueryId::AcUnrestrictedWrite,
                "contract C { address owner; \
                 constructor() { owner = msg.sender; } \
                 function set(address o) public { owner = o; } \
                 function w() public { require(msg.sender == owner); \
                 msg.sender.transfer(this.balance); } }",
            ),
            (
                QueryId::DosExternalCallTransfer,
                "contract C { address a; address b; uint x; uint y; \
                 function payBoth() public { a.transfer(x); b.transfer(y); } }",
            ),
            (
                QueryId::ShortAddressCall,
                "contract C { function pay(address to, uint amount) public { \
                 to.transfer(amount); } }",
            ),
            (
                QueryId::FrontRunnableBenefit,
                "contract G { bytes32 h; uint prize; function solve(string s) public { \
                 require(keccak256(s) == h); msg.sender.transfer(prize); } }",
            ),
            (
                QueryId::DosClearableCollection,
                "contract C { address[] ps; function reset() public { delete ps; } \
                 function pay() public { ps[0].transfer(1 ether); } }",
            ),
        ];
        for (query, source) in samples {
            let cpg = Cpg::from_snippet(source).unwrap();
            let ctx = Ctx::new(&cpg, usize::MAX);
            let programmatic = run_query(&ctx, *query);
            assert!(
                !programmatic.is_empty(),
                "{query:?}: programmatic detector silent on its own sample"
            );
            let declarative = run_base_pattern(&cpg, pattern_of(*query));
            assert!(
                declarative >= 1,
                "{query:?}: declarative base pattern missed the sample"
            );
        }
    }

    /// Mitigated samples: the declarative pattern may or may not fire (it
    /// has no mitigation pruning for some queries), but the programmatic
    /// detector must stay silent — confirming that the Rust detectors, not
    /// the raw base patterns, are the source of truth.
    #[test]
    fn programmatic_detectors_prune_mitigations() {
        let samples: &[(QueryId, &str)] = &[
            (
                QueryId::UncheckedCall,
                "function f(address to) public { require(to.send(1 ether)); }",
            ),
            (
                QueryId::AcSelfDestruct,
                "contract K { address owner; function kill() public { \
                 require(msg.sender == owner); selfdestruct(owner); } }",
            ),
            (
                QueryId::AcDefaultProxyDelegate,
                "contract C { function() payable { require(msg.data.length == 0); \
                 lib.delegatecall(msg.data); } }",
            ),
        ];
        for (query, source) in samples {
            let cpg = Cpg::from_snippet(source).unwrap();
            let ctx = Ctx::new(&cpg, usize::MAX);
            let programmatic = run_query(&ctx, *query);
            assert!(
                programmatic.is_empty(),
                "{query:?}: mitigation not pruned: {programmatic:?}"
            );
        }
    }
}
