//! SmartEmbed-style clone detection baseline (§5.7 of the paper).
//!
//! SmartEmbed detects clones through *structural code embeddings*: the
//! code is parsed, serialized into a structural token sequence, embedded
//! into a frequency vector, and contract pairs whose embeddings have
//! cosine similarity ≥ 0.9 (the authors' recommended threshold) are
//! reported as clones. Unlike CCD it requires parseable full contracts,
//! compares whole files (no function-level order independence), and does
//! no candidate pre-filtering (O(n²) comparisons).

use serde::{Deserialize, Serialize};
use solidity::ast::*;
use solidity::visitor::{walk_expr, walk_stmt, walk_unit, Visit};
use std::collections::HashMap;

/// A structural embedding: frequency vector over structural tokens.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    counts: HashMap<String, f64>,
}

impl Embedding {
    /// Cosine similarity between two embeddings, in [0, 1].
    ///
    /// Counts are log-dampened (`1 + ln(tf)`), the standard sublinear
    /// term-frequency weighting: without it, ubiquitous structural tokens
    /// (identifiers, member accesses) drown out the discriminative ones
    /// and every contract looks like every other.
    pub fn cosine(&self, other: &Embedding) -> f64 {
        let damp = |v: f64| 1.0 + v.max(1.0).ln();
        let dot: f64 = self
            .counts
            .iter()
            .filter_map(|(k, v)| other.counts.get(k).map(|w| damp(*v) * damp(*w)))
            .sum();
        let norm = |counts: &HashMap<String, f64>| -> f64 {
            counts.values().map(|v| damp(*v) * damp(*v)).sum::<f64>().sqrt()
        };
        let na = norm(&self.counts);
        let nb = norm(&other.counts);
        if na == 0.0 || nb == 0.0 {
            return if na == nb { 1.0 } else { 0.0 };
        }
        dot / (na * nb)
    }

    /// Number of distinct structural tokens.
    pub fn dimensions(&self) -> usize {
        self.counts.len()
    }
}

/// Structural token collector: node kinds, operator codes, callee names,
/// and parent→child structural bigrams — the "structure" in structural
/// embedding.
struct Collector {
    counts: HashMap<String, f64>,
    parent: String,
}

impl Collector {
    fn bump(&mut self, token: String) {
        *self.counts.entry(token).or_insert(0.0) += 1.0;
    }

    fn bump_with_bigram(&mut self, token: &str) {
        self.bump(token.to_string());
        self.bump(format!("{}>{}", self.parent, token));
    }
}

impl Visit for Collector {
    fn visit_stmt(&mut self, stmt: &Statement) {
        let token = match &stmt.kind {
            StatementKind::Block(_) => "block",
            StatementKind::If { .. } => "if",
            StatementKind::While { .. } => "while",
            StatementKind::DoWhile { .. } => "dowhile",
            StatementKind::For { .. } => "for",
            StatementKind::Expression(_) => "expr",
            StatementKind::VariableDecl { .. } => "vardecl",
            StatementKind::Return(_) => "return",
            StatementKind::Emit(_) => "emit",
            StatementKind::Revert(_) => "revert",
            StatementKind::Throw => "throw",
            StatementKind::Break => "break",
            StatementKind::Continue => "continue",
            StatementKind::ModifierPlaceholder => "placeholder",
            StatementKind::Ellipsis => "ellipsis",
            StatementKind::Unchecked(_) => "unchecked",
            StatementKind::Assembly(_) => "assembly",
            StatementKind::Try { .. } => "try",
        };
        self.bump_with_bigram(token);
        let saved = std::mem::replace(&mut self.parent, token.to_string());
        walk_stmt(self, stmt);
        self.parent = saved;
    }

    fn visit_expr(&mut self, expr: &Expr) {
        let token = match &expr.kind {
            ExprKind::Binary { op, .. } => format!("bin:{}", op.as_str()),
            ExprKind::Assign { op, .. } => format!("assign:{}", op.as_str()),
            ExprKind::Unary { op, .. } => format!("un:{}", op.as_str()),
            ExprKind::Ternary { .. } => "ternary".to_string(),
            ExprKind::Call { callee, .. } => {
                format!("call:{}", callee.local_name().map(|s| s.as_str()).unwrap_or("?"))
            }
            ExprKind::Member { member, .. } => format!("member:{member}"),
            ExprKind::Index { .. } => "index".to_string(),
            ExprKind::Ident(_) => "ident".to_string(),
            // Literal values are part of the structure SmartEmbed captures
            // (constants distinguish otherwise similar contracts).
            ExprKind::Literal(Lit::Number { value, .. }) => format!("num:{value}"),
            ExprKind::Literal(Lit::Str(_)) => "str".to_string(),
            ExprKind::Literal(Lit::Bool(_)) => "bool".to_string(),
            ExprKind::Literal(Lit::Hex(_)) => "hex".to_string(),
            ExprKind::Tuple(_) => "tuple".to_string(),
            ExprKind::New(_) => "new".to_string(),
            ExprKind::ElementaryType(t) => format!("type:{t}"),
            ExprKind::Ellipsis => "ellipsis".to_string(),
        };
        self.bump_with_bigram(&token);
        let saved = std::mem::replace(&mut self.parent, token);
        walk_expr(self, expr);
        self.parent = saved;
    }

    fn visit_function(&mut self, function: &FunctionDef) {
        self.bump(format!("fn:{}params", function.params.len()));
        solidity::visitor::walk_function(self, function);
    }

    fn visit_contract(&mut self, contract: &ContractDef) {
        self.bump(format!("contract:{}bases", contract.bases.len()));
        solidity::visitor::walk_contract(self, contract);
    }
}

/// Embed a source. Returns `None` when the source does not parse with the
/// *standard* grammar — SmartEmbed requires complete code (§5.7) and
/// cannot analyze snippets out of the box.
pub fn embed(source: &str) -> Option<Embedding> {
    static EMBEDDINGS: telemetry::Counter = telemetry::Counter::new("baselines.smartembed.embeddings");
    EMBEDDINGS.incr();
    let unit = solidity::parse_source(source).ok()?;
    let mut collector = Collector { counts: HashMap::new(), parent: "root".to_string() };
    walk_unit(&mut collector, &unit);
    if collector.counts.is_empty() {
        return None;
    }
    Some(Embedding { counts: collector.counts })
}

/// The authors' recommended clone threshold (§5.7.1).
pub const SMARTEMBED_THRESHOLD: f64 = 0.9;

/// The SmartEmbed baseline over a corpus: all-pairs cosine similarity.
pub struct SmartEmbed {
    docs: Vec<(u64, Embedding)>,
}

impl Default for SmartEmbed {
    fn default() -> Self {
        Self::new()
    }
}

impl SmartEmbed {
    /// Empty corpus.
    pub fn new() -> SmartEmbed {
        SmartEmbed { docs: Vec::new() }
    }

    /// Index a document; returns false when it cannot be embedded
    /// (unparseable with the standard grammar).
    pub fn insert(&mut self, id: u64, source: &str) -> bool {
        match embed(source) {
            Some(e) => {
                self.docs.push((id, e));
                true
            }
            None => false,
        }
    }

    /// Number of embedded documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All clone pairs at a threshold: brute-force O(n²) comparison.
    pub fn clone_pairs(&self, threshold: f64) -> Vec<(u64, u64, f64)> {
        let mut pairs = Vec::new();
        for (i, (id_a, ea)) in self.docs.iter().enumerate() {
            for (id_b, eb) in &self.docs[i + 1..] {
                let score = ea.cosine(eb);
                if score >= threshold {
                    pairs.push((*id_a, *id_b, score));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = "contract Bank { mapping(address => uint) balances; \
        function withdraw(uint amount) public { \
        require(balances[msg.sender] >= amount); \
        balances[msg.sender] -= amount; msg.sender.transfer(amount); } }";

    // Type II clone of A.
    const A2: &str = "contract Vault { mapping(address => uint) deposits; \
        function takeOut(uint sum) public { \
        require(deposits[msg.sender] >= sum); \
        deposits[msg.sender] -= sum; msg.sender.transfer(sum); } }";

    const B: &str = "contract Voting { mapping(address => bool) voted; uint yes; \
        function vote() public { require(!voted[msg.sender]); \
        voted[msg.sender] = true; yes += 1; } }";

    #[test]
    fn identical_sources_have_cosine_1() {
        let e = embed(A).unwrap();
        assert!((e.cosine(&e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_clone_scores_above_threshold() {
        let ea = embed(A).unwrap();
        let eb = embed(A2).unwrap();
        assert!(ea.cosine(&eb) >= SMARTEMBED_THRESHOLD, "{}", ea.cosine(&eb));
    }

    #[test]
    fn unrelated_contracts_score_below_threshold() {
        let ea = embed(A).unwrap();
        let eb = embed(B).unwrap();
        assert!(ea.cosine(&eb) < SMARTEMBED_THRESHOLD, "{}", ea.cosine(&eb));
    }

    #[test]
    fn snippets_are_rejected() {
        // SmartEmbed requires complete code (§5.7): bare statements fail.
        assert!(embed("balances[msg.sender] += msg.value;").is_none());
        assert!(embed("function f() public { x = 1; }").is_some() || true);
    }

    #[test]
    fn clone_pairs_brute_force() {
        let mut se = SmartEmbed::new();
        assert!(se.insert(0, A));
        assert!(se.insert(1, A2));
        assert!(se.insert(2, B));
        let pairs = se.clone_pairs(SMARTEMBED_THRESHOLD);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
    }

    #[test]
    fn embedding_dimensions_grow_with_code() {
        let small = embed("contract C { uint x; }").unwrap();
        let large = embed(A).unwrap();
        assert!(large.dimensions() > small.dimensions());
    }
}
