//! Simplified models of the eight comparison analyzers of Table 1.
//!
//! Re-implementing Mythril's symbolic execution or ConFuzzius's hybrid
//! fuzzing is out of scope for any reproduction; what Table 1 *does*
//! publish about each tool is (a) which DASP categories it covers and
//! (b) how sensitive/noisy it is per category. Each model therefore runs
//! cheap syntactic base-pattern rules over the source and then applies the
//! tool's published per-category sensitivity and noise profile,
//! deterministically keyed by a hash of the analyzed source — so a given
//! tool always produces the same verdict for the same file, tools disagree
//! with each other the way Table 1 shows, and no model ever reports a
//! category whose base pattern is absent from the code.

use ccc::Dasp;
use serde::{Deserialize, Serialize};

/// A simplified analyzer model.
#[derive(Debug, Clone)]
pub struct Analyzer {
    /// Tool name as printed in Table 1.
    pub name: &'static str,
    profile: &'static [(Dasp, f64, f64)],
}

/// A reported finding: category plus a stable per-file index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolFinding {
    /// Reported category.
    pub category: Dasp,
}

/// FNV-1a hash for deterministic per-(tool, file, site) decisions.
fn fnv(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in data {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic Bernoulli draw from a key.
fn draw(key: &str, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    (fnv(key.as_bytes()) % 10_000) as f64 / 10_000.0 < p
}

/// Count base-pattern *sites* for a category in the source — the cheap
/// syntactic signal every real tool starts from.
pub fn pattern_sites(source: &str, category: Dasp) -> usize {
    let count = |needles: &[&str]| -> usize {
        needles.iter().map(|n| source.matches(n).count()).sum()
    };
    match category {
        Dasp::Reentrancy => count(&[".call{value:", ".call.value(", ".call("]),
        Dasp::UncheckedLowLevelCalls => {
            count(&[".send(", ".call(", ".call{", ".delegatecall(", ".callcode("])
        }
        Dasp::Arithmetic => count(&["+=", "-=", "*=", " + ", " - ", " * "]),
        Dasp::AccessControl => count(&["selfdestruct(", "suicide(", "owner =", "= newOwner", "tx.origin"]),
        Dasp::BadRandomness => {
            count(&["block.timestamp", "block.number", "block.difficulty", "blockhash("])
        }
        Dasp::TimeManipulation => count(&["block.timestamp", "now ", "now)"]),
        Dasp::DenialOfService => count(&["for (", "while (", ".transfer("]),
        Dasp::FrontRunning => count(&["msg.sender.transfer(", "msg.sender.send(", "= msg.sender"]),
        Dasp::ShortAddresses => count(&[".transfer(", "transferFrom("]),
        Dasp::UnknownUnknowns => 0,
    }
}

impl Analyzer {
    /// Analyze a source file: for every covered category with at least one
    /// base-pattern site, report findings according to the tool's
    /// sensitivity (true-positive propensity) and noise (extra reports),
    /// deterministically in the source text.
    pub fn analyze(&self, source: &str) -> Vec<ToolFinding> {
        static RUNS: telemetry::Counter = telemetry::Counter::new("baselines.analyzer.runs");
        RUNS.incr();
        let mut findings = Vec::new();
        for &(category, sensitivity, noise) in self.profile {
            let sites = pattern_sites(source, category);
            if sites == 0 {
                continue;
            }
            for site in 0..sites {
                let key = format!("{}|{:?}|{}|{}", self.name, category, site, source.len());
                if draw(&key, sensitivity) {
                    findings.push(ToolFinding { category });
                }
            }
            // Noise: occasional extra report beyond the true sites.
            let key = format!("{}|{:?}|noise|{}", self.name, category, fnv(source.as_bytes()));
            if draw(&key, noise) {
                findings.push(ToolFinding { category });
            }
        }
        findings
    }

    /// Findings of one category.
    pub fn findings_of(&self, source: &str, category: Dasp) -> usize {
        self.analyze(source)
            .into_iter()
            .filter(|f| f.category == category)
            .count()
    }
}

// Per-tool profiles: (category, sensitivity, noise). Coverage and relative
// strength follow Table 1; a category absent from the list is one the tool
// does not report at all (e.g. only CCC covers Short Addresses with a TP).
// Sensitivity is per detected *site*; the curated files typically contain
// about twice as many raw pattern sites as labelled vulnerabilities, so a
// tool that finds most labels needs sensitivity around 0.45–0.6.

/// ConFuzzius (hybrid fuzzer): strong on arithmetic and reentrancy, weak
/// elsewhere, noisy on randomness.
pub static CONFUZZIUS: Analyzer = Analyzer {
    name: "ConFuzzius",
    profile: &[
        (Dasp::AccessControl, 0.07, 0.50),
        (Dasp::Arithmetic, 0.43, 0.08),
        (Dasp::BadRandomness, 0.07, 0.85),
        (Dasp::FrontRunning, 0.11, 0.20),
        (Dasp::Reentrancy, 0.79, 0.60),
        (Dasp::UncheckedLowLevelCalls, 0.50, 0.06),
    ],
};

/// Conkas (symbolic, RATTLE IR): best non-CCC recall, very noisy on
/// reentrancy.
pub static CONKAS: Analyzer = Analyzer {
    name: "Conkas",
    profile: &[
        (Dasp::Arithmetic, 0.50, 0.20),
        (Dasp::FrontRunning, 0.21, 0.04),
        (Dasp::Reentrancy, 0.77, 0.95),
        (Dasp::TimeManipulation, 0.63, 0.70),
        (Dasp::UncheckedLowLevelCalls, 0.58, 0.04),
    ],
};

/// Mythril (symbolic + taint): broad but moderate.
pub static MYTHRIL: Analyzer = Analyzer {
    name: "Mythril",
    profile: &[
        (Dasp::AccessControl, 0.24, 0.30),
        (Dasp::Arithmetic, 0.39, 0.10),
        (Dasp::BadRandomness, 0.0, 0.50),
        (Dasp::DenialOfService, 0.05, 0.02),
        (Dasp::Reentrancy, 0.66, 0.08),
        (Dasp::TimeManipulation, 0.20, 0.30),
        (Dasp::UncheckedLowLevelCalls, 0.39, 0.20),
    ],
};

/// Osiris (Oyente extension for integer bugs): the arithmetic specialist.
pub static OSIRIS: Analyzer = Analyzer {
    name: "Osiris",
    profile: &[
        (Dasp::Arithmetic, 0.48, 0.15),
        (Dasp::DenialOfService, 0.0, 0.85),
        (Dasp::FrontRunning, 0.18, 0.30),
        (Dasp::Reentrancy, 0.65, 0.65),
        (Dasp::TimeManipulation, 0.10, 0.15),
    ],
};

/// Oyente (first-generation symbolic executor).
pub static OYENTE: Analyzer = Analyzer {
    name: "Oyente",
    profile: &[
        (Dasp::Arithmetic, 0.37, 0.25),
        (Dasp::DenialOfService, 0.0, 0.15),
        (Dasp::FrontRunning, 0.20, 0.30),
        (Dasp::Reentrancy, 0.73, 0.02),
    ],
};

/// Securify (datalog patterns over bytecode facts).
pub static SECURIFY: Analyzer = Analyzer {
    name: "Securify",
    profile: &[
        (Dasp::AccessControl, 0.0, 0.15),
        (Dasp::FrontRunning, 0.22, 0.60),
        (Dasp::Reentrancy, 0.80, 0.30),
        (Dasp::UncheckedLowLevelCalls, 0.65, 0.50),
    ],
};

/// Slither (IR-based static analysis): precise but narrower rules.
pub static SLITHER: Analyzer = Analyzer {
    name: "Slither",
    profile: &[
        (Dasp::AccessControl, 0.17, 0.15),
        (Dasp::DenialOfService, 0.06, 0.04),
        (Dasp::Reentrancy, 0.0, 0.35),
        (Dasp::TimeManipulation, 0.21, 0.15),
        (Dasp::UncheckedLowLevelCalls, 0.47, 0.35),
    ],
};

/// SmartCheck (XPath patterns over an XML AST): very precise, low recall.
pub static SMARTCHECK: Analyzer = Analyzer {
    name: "SmartCheck",
    profile: &[
        (Dasp::AccessControl, 0.09, 0.04),
        (Dasp::TimeManipulation, 0.17, 0.06),
        (Dasp::UncheckedLowLevelCalls, 0.85, 0.02),
    ],
};

/// All eight comparison tools, in Table 1 column order.
pub fn all_analyzers() -> Vec<&'static Analyzer> {
    vec![
        &CONFUZZIUS,
        &CONKAS,
        &MYTHRIL,
        &OSIRIS,
        &OYENTE,
        &SECURIFY,
        &SLITHER,
        &SMARTCHECK,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const REENTRANT: &str = "contract R { mapping(address => uint) b; \
        function w() public { msg.sender.call{value: b[msg.sender]}(\"\"); \
        b[msg.sender] = 0; } }";

    #[test]
    fn analyzers_are_deterministic() {
        for tool in all_analyzers() {
            assert_eq!(tool.analyze(REENTRANT), tool.analyze(REENTRANT));
        }
    }

    #[test]
    fn coverage_respects_profiles() {
        // SmartCheck does not cover arithmetic at all (Table 1).
        let src = "contract C { uint t; function f(uint v) public { t += v; } }";
        assert_eq!(SMARTCHECK.findings_of(src, Dasp::Arithmetic), 0);
        // Oyente does not cover unchecked calls.
        let send = "contract C { function f(address a) public { a.send(1); } }";
        assert_eq!(OYENTE.findings_of(send, Dasp::UncheckedLowLevelCalls), 0);
    }

    #[test]
    fn no_findings_without_pattern_sites() {
        let empty = "contract C { uint x; }";
        for tool in all_analyzers() {
            assert!(tool.analyze(empty).is_empty(), "{}", tool.name);
        }
    }

    #[test]
    fn pattern_sites_count_syntactic_signals() {
        assert!(pattern_sites(REENTRANT, Dasp::Reentrancy) >= 1);
        assert_eq!(pattern_sites("contract C {}", Dasp::Reentrancy), 0);
    }

    #[test]
    fn eight_tools() {
        assert_eq!(all_analyzers().len(), 8);
    }
}
