//! Baseline comparison tools.
//!
//! The paper validates CCC against eight vulnerability analyzers on
//! SmartBugs Curated (Table 1) and CCD against SmartEmbed on the honeypot
//! dataset (Table 3). This crate provides working stand-ins for both:
//!
//! * [`analyzers`] — simplified models of ConFuzzius, Conkas, Mythril,
//!   Osiris, Oyente, Securify, Slither and SmartCheck, driven by cheap
//!   syntactic base patterns plus each tool's published per-category
//!   coverage/sensitivity/noise profile (derived from Table 1 — the only
//!   public per-tool data).
//! * [`smartembed`] — a genuine structural-code-embedding clone detector
//!   (frequency vectors over structural tokens and parent–child bigrams,
//!   cosine similarity at the authors' 0.9 threshold) that, like the real
//!   SmartEmbed, cannot analyze incomplete snippets.


#![warn(missing_docs)]

pub mod analyzers;
pub mod smartembed;

pub use analyzers::{all_analyzers, Analyzer, ToolFinding};
pub use smartembed::{embed, Embedding, SmartEmbed, SMARTEMBED_THRESHOLD};
