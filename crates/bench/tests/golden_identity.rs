//! Byte-identity regression harness for the interned frontend rebuild.
//!
//! Runs the full `pipeline::api` analyze path (17 CCC detectors) over the
//! honeypot corpus plus a small CCD parameter sweep, renders both to a
//! canonical JSON document, and compares it byte-for-byte against the
//! golden file committed *before* the interning rebuild. Any change to
//! detector output (finding set, lines, codes) or clone scores (tp/fp/fn
//! per grid cell) fails this test.
//!
//! Regenerate with `GOLDEN_REGEN=1 cargo test -p bench --test golden_identity`.

use ccd::{parameter_grid, sweep, LabelledCorpus};
use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};

/// Honeypot contracts scanned through the detector battery.
const SCAN_DOCS: usize = 80;
/// Honeypot contracts in the CCD sweep corpus.
const SWEEP_DOCS: usize = 20;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("frontend_identity.json")
}

fn sweep_corpus(n: usize) -> LabelledCorpus {
    let ds = bench::honeypots();
    let mut corpus = LabelledCorpus::default();
    for hp in ds.contracts.iter().take(n) {
        corpus.add_document(hp.id, hp.source.clone());
    }
    for (i, a) in ds.contracts.iter().take(n).enumerate() {
        for b in ds.contracts.iter().take(n).skip(i + 1) {
            if a.ty == b.ty {
                corpus.add_clone_pair(a.id, b.id);
            }
        }
    }
    corpus
}

/// Render the current tree's detector findings and sweep scores as one
/// canonical JSON document.
fn render_current() -> String {
    let ds = bench::honeypots();
    let engine = AnalysisEngine::new(AnalysisConfig::default());

    let mut out = String::from("{\n  \"scan\": [\n");
    for (i, hp) in ds.contracts.iter().take(SCAN_DOCS).enumerate() {
        let response = engine
            .analyze(&AnalysisRequest::scan(hp.source.clone()))
            .unwrap_or_else(|e| panic!("honeypot {} failed to analyze: {e}", hp.id));
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"id\": {}, \"response\": {}}}",
            hp.id,
            response.to_json()
        ));
    }
    out.push_str("\n  ],\n  \"sweep\": [\n");

    let corpus = sweep_corpus(SWEEP_DOCS);
    let points = sweep(&corpus);
    assert_eq!(points.len(), parameter_grid().len());
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"params\": \"{:?}\", \"tp\": {}, \"fp\": {}, \"fn\": {}}}",
            p.params, p.tp, p.fp, p.fn_
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[test]
fn findings_and_sweep_scores_match_golden() {
    let current = render_current();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &current).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); regenerate with GOLDEN_REGEN=1", path.display()));
    if current != golden {
        // Locate the first diverging line for a readable failure.
        for (i, (c, g)) in current.lines().zip(golden.lines()).enumerate() {
            assert_eq!(c, g, "first divergence at golden line {}", i + 1);
        }
        assert_eq!(current.len(), golden.len(), "document lengths diverge");
        panic!("golden mismatch that line comparison did not localize");
    }
}
