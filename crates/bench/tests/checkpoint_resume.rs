//! Kill-and-resume tests for the `tables` batch binary: a run cut short
//! leaves a valid journal, and `--resume` reproduces byte-identical
//! output to an uninterrupted run.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SCALE: &str = "0.02";

fn tables() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tables"))
}

fn temp_journal(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("sodd_resume_{tag}_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.display().to_string()
}

fn run_capture(args: &[&str]) -> (String, String) {
    let output = tables().args(args).output().expect("tables runs");
    assert!(output.status.success(), "tables {args:?} failed: {output:?}");
    (
        String::from_utf8(output.stdout).expect("stdout utf-8"),
        String::from_utf8(output.stderr).expect("stderr utf-8"),
    )
}

#[test]
fn partial_run_resumes_byte_identically() {
    let journal = temp_journal("partial");
    // Reference: one uninterrupted run of both targets.
    let (reference, _) = run_capture(&["figure2", "figure5", "--scale", SCALE]);

    // Phase 1 stands in for a run killed after its first shard: only
    // figure2 completes and lands in the journal.
    run_capture(&["figure2", "--scale", SCALE, "--checkpoint", &journal]);

    // Phase 2 resumes: figure2 is replayed from the journal, figure5 is
    // computed, and the combined stdout is byte-identical.
    let (resumed, stderr) = run_capture(&[
        "figure2", "figure5", "--scale", SCALE, "--checkpoint", &journal, "--resume",
    ]);
    assert_eq!(resumed, reference, "resumed output must be byte-identical");
    assert!(
        stderr.contains("[resume] replaying figure2 from checkpoint"),
        "figure2 must come from the journal, not recomputation: {stderr}"
    );
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(std::path::Path::new(&journal).with_extension("tmp"));
}

#[test]
fn sigkilled_run_resumes_byte_identically() {
    let journal = temp_journal("sigkill");
    let (reference, _) = run_capture(&["figure2", "table4", "--scale", SCALE]);

    // Start the batch, wait for the first shard to be journaled, then
    // SIGKILL the process mid-batch.
    let mut child = tables()
        .args(["figure2", "table4", "--scale", SCALE, "--checkpoint", &journal])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("tables spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(text) = std::fs::read_to_string(&journal) {
            if text.contains("\"name\":\"figure2\"") {
                break;
            }
        }
        if let Ok(Some(_)) = child.try_wait() {
            break; // Finished before we could kill it — resume still must work.
        }
        assert!(Instant::now() < deadline, "first shard never reached the journal");
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let (resumed, stderr) = run_capture(&[
        "figure2", "table4", "--scale", SCALE, "--checkpoint", &journal, "--resume",
    ]);
    assert_eq!(resumed, reference, "post-kill resume must be byte-identical");
    assert!(
        stderr.contains("[resume] replaying"),
        "at least one shard must replay from the journal: {stderr}"
    );
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(std::path::Path::new(&journal).with_extension("tmp"));
}
