//! End-to-end checks of the `tables` binary's telemetry surface:
//! disabled-mode output is byte-identical, `--out` tees faithfully, and
//! `--telemetry` appends the report tables and writes parsable JSON.

use std::process::Command;

fn run_tables(args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tables"));
    cmd.args(args);
    cmd.env_remove("TELEMETRY");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let output = cmd.output().expect("tables binary runs");
    assert!(output.status.success(), "tables failed: {:?}", output.status);
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sodd_{}_{name}", std::process::id()))
}

#[test]
fn output_is_byte_identical_with_telemetry_off_or_absent() {
    let plain = run_tables(&["figure5"], &[]);
    assert!(plain.contains("Figure 5"), "sanity: {plain}");
    // TELEMETRY=0 is a hard kill switch: even --telemetry must not change
    // a byte of the table output.
    let killed = run_tables(&["figure5", "--telemetry"], &[("TELEMETRY", "0")]);
    assert_eq!(plain, killed);
    let env_off = run_tables(&["figure5"], &[("TELEMETRY", "0")]);
    assert_eq!(plain, env_off);
}

#[test]
fn out_flag_tees_stdout_to_file() {
    let path = scratch_path("tee.txt");
    let stdout = run_tables(&["figure5", "--out", path.to_str().unwrap()], &[]);
    let teed = std::fs::read_to_string(&path).expect("tee file written");
    let _ = std::fs::remove_file(&path);
    assert_eq!(stdout, teed);
}

#[test]
fn telemetry_flag_appends_report_and_writes_json() {
    let json_path = scratch_path("run.json");
    let stdout = run_tables(
        &["figure5", "--telemetry", "--telemetry-out", json_path.to_str().unwrap()],
        &[],
    );
    assert!(stdout.contains("== Telemetry"), "telemetry tables appended: {stdout}");
    let text = std::fs::read_to_string(&json_path).expect("JSON report written");
    let _ = std::fs::remove_file(&json_path);
    let doc = telemetry::json::parse(&text).expect("report parses");
    assert_eq!(
        doc.get("version").and_then(telemetry::json::Value::as_f64),
        Some(1.0)
    );
    // figure5 fingerprints two snippets through the CCD frontend.
    let counters = doc.get("counters").and_then(telemetry::json::Value::as_array).unwrap();
    assert!(counters.iter().any(|c| {
        c.get("name").and_then(telemetry::json::Value::as_str) == Some("ccd.fingerprints")
    }));
}
