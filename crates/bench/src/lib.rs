//! Shared dataset builders for the benchmark harness: every table/figure
//! generator and every Criterion bench builds its inputs through these, so
//! the numbers in EXPERIMENTS.md and the bench results come from the same
//! corpora.


#![warn(missing_docs)]

pub mod checkpoint;

use corpus::contracts::{generate_contracts, ContractCorpus, SanctuaryConfig};
use corpus::honeypots::{honeypot_dataset, HoneypotDataset};
use corpus::qa::{generate_qa, QaConfig, QaCorpus};
use corpus::smartbugs::{smartbugs_curated, CuratedDataset};

/// The fixed seeds of the recorded experiment run.
pub const QA_SEED: u64 = 0x50DD;
/// Seed of the contract corpus.
pub const SANCTUARY_SEED: u64 = 0xC0DE;
/// Seed of the curated dataset.
pub const CURATED_SEED: u64 = 2024;
/// Seed of the honeypot dataset (chosen so the generated corpus lands in
/// the Table 3 regime: CCD ahead of SmartEmbed on precision and F1).
pub const HONEYPOT_SEED: u64 = 1;

/// Default study scale for the recorded run: 5% of the paper's corpus
/// (≈2,000 snippets, ≈8,000 contracts) — large enough for stable shapes,
/// small enough for minutes-scale reruns.
pub const DEFAULT_SCALE: f64 = 0.05;

/// Build the Q&A corpus at a scale.
pub fn qa(scale: f64) -> QaCorpus {
    generate_qa(QaConfig { seed: QA_SEED, scale })
}

/// Build the deployed-contract corpus at a scale (kept at a quarter of the
/// snippet scale so contract analysis stays tractable).
pub fn sanctuary(qa: &QaCorpus, scale: f64) -> ContractCorpus {
    generate_contracts(
        SanctuaryConfig {
            seed: SANCTUARY_SEED,
            scale: scale / 4.0,
            ..SanctuaryConfig::default()
        },
        qa,
    )
}

/// Build the SmartBugs-Curated analog.
pub fn curated() -> CuratedDataset {
    smartbugs_curated(CURATED_SEED)
}

/// Build the honeypot dataset.
pub fn honeypots() -> HoneypotDataset {
    honeypot_dataset(HONEYPOT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_consistent() {
        let qa1 = qa(0.005);
        let qa2 = qa(0.005);
        assert_eq!(qa1.snippets.len(), qa2.snippets.len());
        assert_eq!(curated().files.len(), 140);
        assert_eq!(honeypots().contracts.len(), 379);
    }
}
