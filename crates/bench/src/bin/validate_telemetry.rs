//! Validate a telemetry run report (`BENCH_run.json`).
//!
//! ```text
//! cargo run --release -p bench --bin validate_telemetry -- BENCH_run.json
//! ```
//!
//! Checks, against the schema emitted by `telemetry::Snapshot::to_json`:
//!
//! 1. the document parses and carries schema `version` 1,
//! 2. every one of the 17 CCC detectors ([`ccc::QueryId::ALL`]) has a span
//!    whose path ends in `query/{QueryId:?}` (suffix match — the prefix
//!    depends on which pipeline stage invoked the checker),
//! 3. the CCD sweep score-cache and banded edit-distance pruning counters
//!    are present.
//!
//! Exits non-zero with a message on the first violation; used by `ci.sh`
//! as the telemetry smoke check.

use ccc::QueryId;
use telemetry::json::{parse, Value};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_run.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|error| fail(&format!("cannot read {path}: {error}")));
    let doc = parse(&text).unwrap_or_else(|error| fail(&format!("{path} is not JSON: {error}")));

    if doc.get("version").and_then(Value::as_f64) != Some(1.0) {
        fail(&format!("{path}: missing or unexpected schema version"));
    }

    let span_paths: Vec<&str> = doc
        .get("spans")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&format!("{path}: no spans array")))
        .iter()
        .filter_map(|s| s.get("path").and_then(Value::as_str))
        .collect();
    for query in QueryId::ALL {
        let suffix = format!("query/{query:?}");
        if !span_paths.iter().any(|p| p.ends_with(&suffix)) {
            fail(&format!("{path}: no span for detector {query:?} (suffix {suffix})"));
        }
    }

    let counter_names: Vec<&str> = doc
        .get("counters")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&format!("{path}: no counters array")))
        .iter()
        .filter_map(|c| c.get("name").and_then(Value::as_str))
        .collect();
    for required in [
        "ccd.sweep.score_cache.hits",
        "ccd.sweep.score_cache.misses",
        "fuzzyhash.dp.completed",
    ] {
        if !counter_names.contains(&required) {
            fail(&format!("{path}: missing counter {required}"));
        }
    }
    // Which prune exit fires depends on the corpus; at least one must.
    if !counter_names.iter().any(|n| n.starts_with("fuzzyhash.prune.")) {
        fail(&format!("{path}: no fuzzyhash.prune.* counter recorded"));
    }

    println!(
        "{path}: ok — {} spans ({} detectors), {} counters",
        span_paths.len(),
        QueryId::ALL.len(),
        counter_names.len()
    );
}

fn fail(message: &str) -> ! {
    eprintln!("validate_telemetry: {message}");
    std::process::exit(1);
}
