//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin tables -- all
//! cargo run --release -p bench --bin tables -- table1 table9
//! cargo run --release -p bench --bin tables -- table7 --scale 0.05
//! cargo run --release -p bench --bin tables -- all --telemetry --out tables.txt
//! cargo run --release -p bench --bin tables -- all --checkpoint run.journal --resume
//! ```
//!
//! Tables 1–3 and 9 run on the fixed benchmark datasets; Tables 4–8 and
//! Figure 9 run the study pipeline at the given scale (default 0.05).
//! Several targets may be given at once. `--out PATH` tees everything
//! printed to stdout into PATH. `--telemetry` enables telemetry
//! collection, appends the rendered telemetry tables, and writes the JSON
//! run report to `--telemetry-out` (default `BENCH_run.json`); the
//! `TELEMETRY=0` environment kill switch overrides the flag.
//!
//! `--checkpoint PATH` journals each completed target's output to PATH
//! (atomically, after every target), and `--resume` replays completed
//! targets from the journal byte-for-byte instead of recomputing them —
//! a batch run killed mid-flight loses at most the target in progress.

use bench::checkpoint::Journal;
use ccc::Dasp;
use ccd::CcdParams;
use pipeline::eval_ccc::{evaluate_all_baselines, evaluate_ccc, evaluate_snippet_levels};
use pipeline::eval_ccd::{evaluate_ccd, evaluate_smartembed, sweep_ccd};
use pipeline::report::{f3, pct, Table};
use pipeline::{adoptions, correlations, dedup_contracts, run_audit, run_funnel, run_study, StudyConfig};
use corpus::honeypots::HoneypotType;
use corpus::smartbugs::{derive_functions, derive_statements};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};

/// Optional tee target: `--out PATH` duplicates everything printed to
/// stdout into this file.
static OUT_FILE: OnceLock<Mutex<std::fs::File>> = OnceLock::new();

/// While a checkpointed shard runs, everything emitted is also captured
/// here so the journal can replay it verbatim on `--resume`.
static CAPTURE: Mutex<Option<String>> = Mutex::new(None);

/// Print one line to stdout and, when `--out` is set, to the tee file.
fn emit_line(line: std::fmt::Arguments) {
    let text = line.to_string();
    println!("{text}");
    if let Some(file) = OUT_FILE.get() {
        let mut file = file.lock().expect("tee file lock");
        let _ = writeln!(file, "{text}");
    }
    if let Some(buffer) = CAPTURE.lock().expect("capture lock").as_mut() {
        buffer.push_str(&text);
        buffer.push('\n');
    }
}

/// Re-emit a shard's recorded output exactly as it was first printed —
/// the captured text is a concatenation of `emit_line` lines, so writing
/// it raw reproduces the original bytes on stdout and in the tee file.
fn emit_replay(output: &str) {
    print!("{output}");
    let _ = std::io::stdout().flush();
    if let Some(file) = OUT_FILE.get() {
        let mut file = file.lock().expect("tee file lock");
        let _ = file.write_all(output.as_bytes());
    }
}

/// Shard orchestration: run each table/figure target through
/// [`Shards::run`], which replays journaled output on resume and captures
/// + records fresh output otherwise.
struct Shards {
    journal: Option<Journal>,
}

impl Shards {
    /// Whether `name` already completed in a resumed journal.
    fn done(&self, name: &str) -> bool {
        self.journal.as_ref().is_some_and(|j| j.completed(name).is_some())
    }

    fn run(&mut self, name: &str, run: impl FnOnce()) {
        let Some(journal) = &mut self.journal else {
            run();
            return;
        };
        if let Some(output) = journal.completed(name) {
            eprintln!("[resume] replaying {name} from checkpoint");
            let output = output.to_string();
            emit_replay(&output);
            return;
        }
        *CAPTURE.lock().expect("capture lock") = Some(String::new());
        run();
        let output = CAPTURE
            .lock()
            .expect("capture lock")
            .take()
            .unwrap_or_default();
        journal.record(name, &output);
    }
}

macro_rules! outln {
    () => { emit_line(format_args!("")) };
    ($($arg:tt)*) => { emit_line(format_args!($($arg)*)) };
}

struct Args {
    whats: Vec<String>,
    scale: f64,
    out: Option<String>,
    telemetry: bool,
    telemetry_out: String,
    checkpoint: Option<String>,
    resume: bool,
}

fn parse_args() -> Args {
    let mut whats = Vec::new();
    let mut scale = bench::DEFAULT_SCALE;
    let mut out = None;
    let mut telemetry = false;
    let mut telemetry_out = "BENCH_run.json".to_string();
    let mut checkpoint = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(bench::DEFAULT_SCALE);
            }
            "--out" => out = args.next(),
            "--telemetry" => telemetry = true,
            "--telemetry-out" => {
                if let Some(path) = args.next() {
                    telemetry_out = path;
                }
            }
            "--checkpoint" => checkpoint = args.next(),
            "--resume" => resume = true,
            other => whats.push(other.to_string()),
        }
    }
    if whats.is_empty() {
        whats.push("all".to_string());
    }
    Args { whats, scale, out, telemetry, telemetry_out, checkpoint, resume }
}

fn main() {
    let args = parse_args();
    telemetry::init_from_env();
    if args.telemetry {
        telemetry::enable();
    }
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(file) => {
                let _ = OUT_FILE.set(Mutex::new(file));
            }
            Err(error) => {
                eprintln!("cannot open --out {path}: {error}");
                std::process::exit(1);
            }
        }
    }
    let run_all = args.whats.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || args.whats.iter().any(|w| w == name);

    // The journal key ties recorded shards to the parameters that shape
    // their output; a scale change invalidates the journal.
    let mut shards = Shards {
        journal: args
            .checkpoint
            .as_ref()
            .map(|path| Journal::open(path, &format!("scale={}", args.scale), args.resume)),
    };

    if wants("table1") {
        shards.run("table1", table1);
    }
    if wants("table2") {
        shards.run("table2", table2);
    }
    if wants("table3") {
        shards.run("table3", table3);
    }
    if wants("table9") || wants("figure9") {
        shards.run("table9", table9_figure9);
    }
    if wants("figure2") {
        shards.run("figure2", figure2);
    }
    if wants("figure5") {
        shards.run("figure5", figure5);
    }
    if ["table4", "table5", "table6", "table7", "table8", "study"].iter().any(|w| wants(w)) {
        study_tables(args.scale, &args.whats, run_all, &mut shards);
    }

    // Appended only when explicitly requested *and* the TELEMETRY=0 kill
    // switch did not win, so default output stays byte-identical.
    if args.telemetry && telemetry::enabled() {
        let snapshot = telemetry::snapshot();
        outln!("{}", pipeline::telemetry_report::render(&snapshot));
        match std::fs::write(&args.telemetry_out, snapshot.to_json()) {
            Ok(()) => eprintln!("[telemetry] wrote {}", args.telemetry_out),
            Err(error) => {
                eprintln!("cannot write {}: {error}", args.telemetry_out);
                std::process::exit(1);
            }
        }
    }
}

// ===== Table 1: CCC vs 8 tools on the curated dataset =======================

fn table1() {
    eprintln!("[table1] building curated dataset and running 9 tools...");
    let dataset = bench::curated();
    let ccc = evaluate_ccc(&dataset);
    let baselines = evaluate_all_baselines(&dataset);

    let mut table = Table::new("Table 1 — tool comparison on SmartBugs-Curated analog (TP/FP)")
        .header(&{
            let mut h = vec!["Category", "#", "CCC"];
            for b in &baselines {
                h.push(Box::leak(b.tool.clone().into_boxed_str()));
            }
            h
        });
    for category in Dasp::ALL {
        if *category == Dasp::UnknownUnknowns {
            continue;
        }
        let labels = dataset.labels_of(*category);
        let mut row = vec![category.name().to_string(), labels.to_string()];
        let cell = |result: &pipeline::eval_ccc::ToolResult| -> String {
            result
                .per_category
                .get(category)
                .map(|c| format!("{}/{}", c.tp, c.fp))
                .unwrap_or_else(|| "0/0".to_string())
        };
        row.push(cell(&ccc));
        for b in &baselines {
            row.push(cell(b));
        }
        table.row(row);
    }
    let mut totals = vec!["Total".to_string(), dataset.total_labels().to_string()];
    let mut prs = vec!["Precision/Recall".to_string(), String::new()];
    for result in std::iter::once(&ccc).chain(&baselines) {
        let t = result.total();
        totals.push(format!("{}/{}", t.tp, t.fp));
        prs.push(format!("{}/{}", pct(t.precision()), pct(t.recall())));
    }
    table.row(totals);
    table.row(prs);
    outln!("{}", table.render());
}

// ===== Table 2: snippet-level datasets =======================================

fn table2() {
    eprintln!("[table2] deriving Functions/Statements datasets...");
    let original = bench::curated();
    let functions = derive_functions(&original);
    let statements = derive_statements(&original);
    let rows = evaluate_snippet_levels(&original, &functions, &statements);
    let mut table = Table::new("Table 2 — CCC on Original / Functions / Statements")
        .header(&["Dataset", "TP", "FP", "Precision", "Recall"]);
    for row in rows {
        table.row(vec![
            row.dataset,
            row.confusion.tp.to_string(),
            row.confusion.fp.to_string(),
            pct(row.confusion.precision()),
            pct(row.confusion.recall()),
        ]);
    }
    outln!("{}", table.render());
}

// ===== Table 3: CCD vs SmartEmbed on honeypots ================================

fn table3() {
    eprintln!("[table3] running CCD and SmartEmbed over the honeypot dataset...");
    let dataset = bench::honeypots();
    let ccd = evaluate_ccd(&dataset, CcdParams::best());
    let smartembed = evaluate_smartembed(&dataset);
    let mut table = Table::new("Table 3 — SmartEmbed vs CCD on honeypots (TP/FP per type)")
        .header(&["Honeypot Type", "SmartEmbed", "CCD"]);
    for ty in HoneypotType::ALL {
        let cell = |r: &pipeline::eval_ccd::HoneypotResult| {
            r.per_type
                .get(ty)
                .map(|c| format!("{}/{}", c.tp, c.fp))
                .unwrap_or_default()
        };
        table.row(vec![ty.name().to_string(), cell(&smartembed), cell(&ccd)]);
    }
    let (ts, tc) = (smartembed.total(), ccd.total());
    table.row(vec![
        "Total".into(),
        format!("{}/{}", ts.tp, ts.fp),
        format!("{}/{}", tc.tp, tc.fp),
    ]);
    table.row(vec![
        "Precision".into(),
        f3(ts.precision()),
        f3(tc.precision()),
    ]);
    table.row(vec!["Recall".into(), f3(ts.recall()), f3(tc.recall())]);
    table.row(vec!["F1".into(), f3(ts.f1()), f3(tc.f1())]);
    outln!("{}", table.render());
}

// ===== Table 9 + Figure 9: the parameter sweep ================================

fn table9_figure9() {
    eprintln!("[table9/figure9] sweeping 75 parameter combinations...");
    let dataset = bench::honeypots();
    let rows = sweep_ccd(&dataset);
    let smartembed = evaluate_smartembed(&dataset).total();

    let mut table = Table::new(
        "Table 9 / Figure 9 — CCD parameter sweep (precision/recall per N, eta, epsilon)",
    )
    .header(&["N", "eta", "eps", "Precision", "Recall", "F1"]);
    for row in &rows {
        table.row(vec![
            row.params.ngram_size.to_string(),
            format!("{:.1}", row.params.eta),
            format!("{:.1}", row.params.epsilon / 100.0),
            f3(row.precision),
            f3(row.recall),
            f3(row.f1),
        ]);
    }
    outln!("{}", table.render());
    outln!(
        "SmartEmbed reference lines (Fig. 9): precision {} recall {}",
        f3(smartembed.precision()),
        f3(smartembed.recall())
    );
    let best = rows
        .iter()
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap())
        .unwrap();
    outln!(
        "best F1 combination: N={} eta={:.1} eps={:.1} (P {} R {} F1 {})\n",
        best.params.ngram_size,
        best.params.eta,
        best.params.epsilon / 100.0,
        f3(best.precision),
        f3(best.recall),
        f3(best.f1)
    );
}

// ===== Figures 2 and 5 ========================================================

fn figure2() {
    outln!("== Figure 2 — CPG of `if (msg.sender == owner) {{}}` ==");
    let cpg = cpg::Cpg::from_snippet("if (msg.sender == owner) {}").unwrap();
    outln!(
        "{}",
        cpg::dot::to_dot_filtered(&cpg.graph, |k| k != cpg::NodeKind::TranslationUnit)
    );
}

fn figure5() {
    outln!("== Figure 5 — similar snippets, similar fingerprints ==");
    let unsafe_src = "contract Unsafe { function unsafeWithdraw(uint value) { \
                      msg.sender.transfer(value); } }";
    let safe_src = "contract Unsafe { function unsafeWithdraw(uint value) { \
                    msg.sender.transfer(value); } \
                    address deployer; constructor() { deployer = msg.sender; } }";
    let a = ccd::CloneDetector::fingerprint_source(unsafe_src).unwrap();
    let b = ccd::CloneDetector::fingerprint_source(safe_src).unwrap();
    outln!("without constructor: {a}");
    outln!("with constructor:    {b}");
    outln!(
        "shared sub-fingerprints: {:?}",
        a.sub_fingerprints()
            .into_iter()
            .filter(|s| b.sub_fingerprints().contains(s))
            .collect::<Vec<_>>()
    );
    outln!(
        "order-independent similarity: ε(small→large) = {:.1}, ε(large→small) = {:.1}",
        ccd::order_independent_similarity(&a, &b),
        ccd::order_independent_similarity(&b, &a)
    );
    outln!("(the added constructor only appends a piece; the withdraw piece is untouched)\n");
}

// ===== Tables 4–8: the study ==================================================

fn study_tables(scale: f64, whats: &[String], run_all: bool, shards: &mut Shards) {
    let wants = |name: &str| run_all || whats.iter().any(|w| w == name);
    // Resume fast path: when every requested study shard is already
    // journaled, replay them and skip corpus generation and the study
    // pipeline entirely.
    let targets: Vec<&str> = ["table4", "table5", "table6", "table7", "table8"]
        .into_iter()
        .filter(|t| wants(t) || wants("study"))
        .collect();
    if !targets.is_empty() && targets.iter().all(|t| shards.done(t)) {
        for target in targets {
            shards.run(target, || {});
        }
        return;
    }
    eprintln!("[study] generating corpora at scale {scale}...");
    let qa = bench::qa(scale);
    let contracts = bench::sanctuary(&qa, scale);
    eprintln!(
        "[study] {} posts, {} snippets, {} contracts",
        qa.posts.len(),
        qa.snippets.len(),
        contracts.contracts.len()
    );
    let funnel = run_funnel(&qa);

    if wants("table4") || wants("study") {
        shards.run("table4", || {
        let mut table = Table::new("Table 4 — Solidity code snippet funnel")
            .header(&["Q&A Website", "Posts", "Snippets", "Solidity", "Parsable", "Unique"]);
        for row in &funnel.stats.rows {
            table.row(vec![
                row.site.map(|s| s.name().to_string()).unwrap_or_else(|| "Total".into()),
                row.posts.to_string(),
                row.snippets.to_string(),
                row.solidity.to_string(),
                row.parsable.to_string(),
                row.unique.to_string(),
            ]);
        }
        outln!("{}", table.render());
        let total = funnel.stats.rows.last().unwrap();
        outln!(
            "standard grammar parses {} snippets; the modified grammar {} (+{})",
            funnel.stats.standard_parsable,
            total.parsable,
            total.parsable - funnel.stats.standard_parsable
        );
        let (min, median, mean, max) = funnel.stats.loc;
        outln!("snippet LoC: min {min}, median {median}, mean {mean:.1}, max {max}");
        let level = |l: solidity::SnippetLevel| {
            *funnel.stats.levels.get(&l).unwrap_or(&0) as f64
                / funnel.stats.levels.values().sum::<usize>().max(1) as f64
        };
        outln!(
            "parsed levels: {:.1}% contracts, {:.1}% functions, {:.1}% statements\n",
            level(solidity::SnippetLevel::Contract) * 100.0,
            level(solidity::SnippetLevel::Function) * 100.0,
            level(solidity::SnippetLevel::Statement) * 100.0
        );
        });
    }

    eprintln!("[study] running the experiment pipeline...");
    let result = run_study(&qa, &contracts, &funnel.unique, StudyConfig::default());

    if wants("table5") || wants("study") {
        shards.run("table5", || {
        let dedup = dedup_contracts(&contracts);
        let ads = adoptions(&qa, &contracts, &result.mapping, &dedup);
        let rows = correlations(&ads);
        let mut table = Table::new("Table 5 — Spearman correlation of views and containing contracts")
            .header(&["Temporal Category", "Sample Size", "rho", "p-value"]);
        for row in rows {
            let (rho, p) = row
                .result
                .map(|r| (f3(r.rho), format!("{:.3}", r.p_value)))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            table.row(vec![row.group.name().to_string(), row.n.to_string(), rho, p]);
        }
        outln!("{}", table.render());
        });
    }

    if wants("table6") || wants("study") {
        shards.run("table6", || {
        let mut table = Table::new("Table 6 — DASP Top 10 across snippets and contracts")
            .header(&["Vulnerability Category", "Snippets", "Contracts"]);
        for category in Dasp::ALL {
            let (snippets, contracts_n) =
                result.dasp_distribution.get(category).copied().unwrap_or((0, 0));
            table.row(vec![
                category.name().to_string(),
                snippets.to_string(),
                contracts_n.to_string(),
            ]);
        }
        outln!("{}", table.render());
        });
    }

    if wants("table7") || wants("study") {
        shards.run("table7", || {
        let mut table = Table::new("Table 7 — identified vulnerable snippets and contracts")
            .header(&["Analysis Step", "Disseminator (Source)"]);
        table.row(vec!["Snippets — Unique".into(), result.unique_snippets.to_string()]);
        table.row(vec!["Snippets — Vulnerable".into(), result.vulnerable_snippets.to_string()]);
        table.row(vec![
            "Snippets — Contained in contracts".into(),
            result.contained_in_contracts.to_string(),
        ]);
        table.row(vec![
            "Snippets — Posted before deployment".into(),
            format!("{} ({})", result.posted_before_deployment, result.source_snippets),
        ]);
        table.row(vec![
            "Contracts — Containing vulnerable snippets".into(),
            format!("{} ({})", result.contracts_containing, result.contracts_containing_source),
        ]);
        table.row(vec![
            "Contracts — Unique".into(),
            format!("{} ({})", result.unique_contracts, result.unique_contracts_source),
        ]);
        table.row(vec![
            "Validation — Analyzed (phase 1 -> total)".into(),
            format!("{} -> {}", result.analyzed_phase1, result.analyzed_total),
        ]);
        table.row(vec![
            "Validation — Vulnerable contracts".into(),
            format!("{} ({})", result.vulnerable_contracts, result.vulnerable_contracts_source),
        ]);
        table.row(vec![
            "Validation — Vulnerable (phase 1 only)".into(),
            result.vulnerable_contracts_phase1.to_string(),
        ]);
        table.row(vec![
            "Validation — Vuln. snippets in vuln. contracts".into(),
            format!(
                "{} ({})",
                result.snippets_in_vulnerable_contracts,
                result.snippets_in_vulnerable_contracts_source
            ),
        ]);
        outln!("{}", table.render());
        });
    }

    if wants("table8") || wants("study") {
        shards.run("table8", || {
        let grid = run_audit(&result, &qa, &contracts, 10, 7);
        let mut table = Table::new("Table 8 — manual validation (oracle audit)")
            .header(&["", "Snippet", "Contract TP", "Contract FP"]);
        for (clone_label, clone_flag) in [("True clones", true), ("False clones", false)] {
            for (snippet_label, snippet_flag) in [("TP", true), ("FP", false)] {
                table.row(vec![
                    if snippet_flag { clone_label.to_string() } else { String::new() },
                    snippet_label.to_string(),
                    grid.cell(clone_flag, snippet_flag, true).to_string(),
                    grid.cell(clone_flag, snippet_flag, false).to_string(),
                ]);
            }
        }
        outln!("{}", table.render());
        outln!(
            "sample size {}; fully confirmed pairings: {}\n",
            grid.sample_size,
            grid.fully_confirmed()
        );
        });
    }
}
