//! Crash-safe batch checkpointing for the `tables` bin.
//!
//! A [`Journal`] records, per completed shard (one table/figure target),
//! the exact stdout the shard produced. The journal file is JSON,
//! rewritten atomically (tmp + rename) after every shard, so a batch run
//! killed mid-flight loses at most the shard in progress. A rerun with
//! `--resume` replays completed shards verbatim — byte-identical output
//! — and computes only what is missing.
//!
//! Journal document:
//!
//! ```json
//! {"v":1,"key":"scale=0.05","shards":[{"name":"table1","output":"..."}]}
//! ```
//!
//! `key` encodes the run parameters that change shard output (currently
//! the study scale); a journal written under a different key is ignored
//! rather than replayed wrongly.

use telemetry::json::Value;

/// Version tag of the journal format.
pub const JOURNAL_VERSION: u32 = 1;

/// A per-shard progress journal backed by an atomically-rewritten JSON
/// file.
pub struct Journal {
    path: std::path::PathBuf,
    key: String,
    shards: Vec<(String, String)>,
}

impl Journal {
    /// Open a journal at `path`. With `resume`, previously recorded
    /// shards are loaded — unless the file is unreadable or was written
    /// under a different `key`, in which case it is ignored and the run
    /// starts clean. Without `resume`, any existing journal is discarded.
    pub fn open(path: &str, key: &str, resume: bool) -> Journal {
        let mut journal =
            Journal { path: path.into(), key: key.to_string(), shards: Vec::new() };
        if resume {
            if let Ok(text) = std::fs::read_to_string(&journal.path) {
                journal.load(&text);
            }
        }
        journal
    }

    fn load(&mut self, text: &str) {
        let Ok(value) = telemetry::json::parse(text) else {
            eprintln!("[checkpoint] ignoring unparsable journal {}", self.path.display());
            return;
        };
        if value.get("v").and_then(Value::as_f64) != Some(JOURNAL_VERSION as f64) {
            eprintln!("[checkpoint] ignoring journal with unknown version");
            return;
        }
        if value.get("key").and_then(Value::as_str) != Some(self.key.as_str()) {
            eprintln!(
                "[checkpoint] journal was written for different parameters; starting clean"
            );
            return;
        }
        let Some(shards) = value.get("shards").and_then(Value::as_array) else { return };
        for shard in shards {
            let name = shard.get("name").and_then(Value::as_str);
            let output = shard.get("output").and_then(Value::as_str);
            if let (Some(name), Some(output)) = (name, output) {
                self.shards.push((name.to_string(), output.to_string()));
            }
        }
    }

    /// The recorded stdout of `name`, if that shard already completed.
    pub fn completed(&self, name: &str) -> Option<&str> {
        self.shards
            .iter()
            .find(|(shard, _)| shard == name)
            .map(|(_, output)| output.as_str())
    }

    /// Number of completed shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether no shard has completed yet.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Record a completed shard and persist the journal. Persistence is
    /// atomic: the new document is written to `<path>.tmp` and renamed
    /// over the journal, so a kill mid-write cannot corrupt it.
    pub fn record(&mut self, name: &str, output: &str) {
        if self.completed(name).is_some() {
            return;
        }
        self.shards.push((name.to_string(), output.to_string()));
        self.persist();
    }

    fn persist(&self) {
        let mut doc = format!(
            "{{\"v\":{JOURNAL_VERSION},\"key\":\"{}\",\"shards\":[",
            escape(&self.key)
        );
        for (i, (name, output)) in self.shards.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!(
                "{{\"name\":\"{}\",\"output\":\"{}\"}}",
                escape(name),
                escape(output)
            ));
        }
        doc.push_str("]}");
        let tmp = self.path.with_extension("tmp");
        let written = std::fs::write(&tmp, &doc)
            .and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(error) = written {
            eprintln!("[checkpoint] cannot persist {}: {error}", self.path.display());
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> String {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        dir.join(format!("sodd_journal_{tag}_{pid}.json")).display().to_string()
    }

    #[test]
    fn records_persist_and_reload() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path, "scale=0.05", false);
        assert!(journal.is_empty());
        journal.record("table1", "line one\nline \"two\"\n");
        journal.record("figure2", "digraph {}\n");
        let reloaded = Journal::open(&path, "scale=0.05", true);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.completed("table1"), Some("line one\nline \"two\"\n"));
        assert_eq!(reloaded.completed("figure2"), Some("digraph {}\n"));
        assert_eq!(reloaded.completed("table3"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn key_mismatch_starts_clean() {
        let path = temp_path("key");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path, "scale=0.05", false);
        journal.record("table1", "output\n");
        let other = Journal::open(&path, "scale=0.10", true);
        assert!(other.is_empty(), "different key must invalidate the journal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn without_resume_existing_journal_is_ignored() {
        let path = temp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path, "k", false);
        journal.record("table1", "stale\n");
        let fresh = Journal::open(&path, "k", false);
        assert!(fresh.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_journal_is_ignored() {
        let path = temp_path("garbage");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let journal = Journal::open(&path, "k", true);
        assert!(journal.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
