//! CCD benchmarks: the matching cost behind Tables 3 and 9.
//!
//! * `ccd/fingerprint` — normalize + tokenize + fuzzy-hash one contract.
//! * `ccd/match/{size}` — match one snippet against indexed corpora of
//!   growing size (the η-filtered fast path of §5.5).
//! * `ccd/honeypot_pairwise` — the full Table 3 all-pairs workload on a
//!   subset of the honeypot dataset.

use ccd::{CcdParams, CloneDetector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn corpus_sources(n: usize) -> Vec<String> {
    let ds = bench::honeypots();
    ds.contracts
        .iter()
        .cycle()
        .take(n)
        .map(|c| c.source.clone())
        .collect()
}

fn bench_fingerprint(c: &mut Criterion) {
    let source = &bench::honeypots().contracts[0].source.clone();
    c.bench_function("ccd/fingerprint", |b| {
        b.iter(|| black_box(CloneDetector::fingerprint_source(black_box(source))))
    });
}

fn bench_match_scaling(c: &mut Criterion) {
    let query_src = &bench::honeypots().contracts[0].source.clone();
    let query = CloneDetector::fingerprint_source(query_src).unwrap();
    let mut group = c.benchmark_group("ccd/match");
    for size in [50usize, 200, 379] {
        let mut detector = CloneDetector::new(CcdParams::best());
        for (i, source) in corpus_sources(size).iter().enumerate() {
            detector.insert_source(i as u64, source);
        }
        group.bench_with_input(BenchmarkId::from_parameter(size), &detector, |b, d| {
            b.iter(|| black_box(d.matches(black_box(&query))))
        });
    }
    group.finish();
}

fn bench_honeypot_pairwise(c: &mut Criterion) {
    let ds = bench::honeypots();
    let subset: Vec<&str> = ds.contracts.iter().take(60).map(|h| h.source.as_str()).collect();
    c.bench_function("ccd/honeypot_pairwise_60", |b| {
        b.iter(|| {
            let mut detector = CloneDetector::new(CcdParams::best());
            let mut fps = Vec::new();
            for (i, source) in subset.iter().enumerate() {
                if let Some(fp) = CloneDetector::fingerprint_source(source) {
                    detector.insert_fingerprint(i as u64, fp.clone());
                    fps.push(fp);
                }
            }
            let mut pairs = 0usize;
            for fp in &fps {
                pairs += detector.matches(fp).len();
            }
            black_box(pairs)
        })
    });
}

criterion_group!(
    benches,
    bench_fingerprint,
    bench_match_scaling,
    bench_honeypot_pairwise
);
criterion_main!(benches);
