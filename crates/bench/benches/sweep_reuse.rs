//! Sweep-once vs per-cell grid evaluation (the Table 9 workload).
//!
//! * `sweep/per_cell/{size}` — the reference path: rebuild the full
//!   detector for each of the 75 grid cells.
//! * `sweep/sweep_once/{size}` — the `SweepEngine` path: fingerprint
//!   once, one index per N, one score per pair, ε by re-thresholding.
//!
//! The acceptance bar for the engine is ≥ 5× over per-cell on the seeded
//! honeypot corpus.

use ccd::{evaluate_reference, parameter_grid, sweep, LabelledCorpus};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn honeypot_corpus(n: usize) -> LabelledCorpus {
    let ds = bench::honeypots();
    let mut corpus = LabelledCorpus::default();
    for hp in ds.contracts.iter().take(n) {
        corpus.add_document(hp.id, hp.source.clone());
    }
    for (i, a) in ds.contracts.iter().take(n).enumerate() {
        for b in ds.contracts.iter().take(n).skip(i + 1) {
            if a.ty == b.ty {
                corpus.add_clone_pair(a.id, b.id);
            }
        }
    }
    corpus
}

fn bench_sweep_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for size in [20usize, 40] {
        let corpus = honeypot_corpus(size);
        group.bench_with_input(
            BenchmarkId::new("per_cell", size),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let points: Vec<_> = parameter_grid()
                        .into_iter()
                        .map(|p| evaluate_reference(black_box(corpus), p))
                        .collect();
                    black_box(points)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_once", size),
            &corpus,
            |b, corpus| b.iter(|| black_box(sweep(black_box(corpus)))),
        );
    }
    group.finish();
}

/// Best-of-3 wall-clock nanoseconds of one full run of `routine`.
fn time_ns<O, F: FnMut() -> O>(mut routine: F) -> u64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("three timed runs")
}

/// Measure the per-cell vs sweep-once speedup directly and write it as a
/// JSON point on the perf trajectory — `BENCH_trajectory.json` at the
/// workspace root (cargo runs benches with the package dir as cwd), or
/// wherever `SWEEP_REUSE_REPORT` points.
fn write_speedup_report() {
    let path = std::env::var("SWEEP_REUSE_REPORT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json").into()
    });
    let mut entries = Vec::new();
    for size in [20usize, 40] {
        let corpus = honeypot_corpus(size);
        let per_cell_ns = time_ns(|| {
            parameter_grid()
                .into_iter()
                .map(|p| evaluate_reference(black_box(&corpus), p))
                .collect::<Vec<_>>()
        });
        let sweep_once_ns = time_ns(|| sweep(black_box(&corpus)));
        let speedup = per_cell_ns as f64 / sweep_once_ns.max(1) as f64;
        println!("sweep/speedup/{size}: {speedup:.2}x (per_cell {per_cell_ns} ns, sweep_once {sweep_once_ns} ns)");
        entries.push(format!(
            "    {{\"bench\": \"sweep_reuse\", \"size\": {size}, \"per_cell_ns\": {per_cell_ns}, \"sweep_once_ns\": {sweep_once_ns}, \"speedup\": {speedup:.3}}}"
        ));
    }
    let json = format!("{{\n  \"version\": 1,\n  \"points\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("cannot write {path}: {error}"),
    }
}

fn main() {
    let mut criterion = Criterion::new();
    bench_sweep_reuse(&mut criterion);
    write_speedup_report();
}
