//! Sweep-once vs per-cell grid evaluation (the Table 9 workload).
//!
//! * `sweep/per_cell/{size}` — the reference path: rebuild the full
//!   detector for each of the 75 grid cells.
//! * `sweep/sweep_once/{size}` — the `SweepEngine` path: fingerprint
//!   once, one index per N, one score per pair, ε by re-thresholding.
//!
//! The acceptance bar for the engine is ≥ 5× over per-cell on the seeded
//! honeypot corpus.

use ccd::{evaluate_reference, parameter_grid, sweep, LabelledCorpus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn honeypot_corpus(n: usize) -> LabelledCorpus {
    let ds = bench::honeypots();
    let mut corpus = LabelledCorpus::default();
    for hp in ds.contracts.iter().take(n) {
        corpus.add_document(hp.id, hp.source.clone());
    }
    for (i, a) in ds.contracts.iter().take(n).enumerate() {
        for b in ds.contracts.iter().take(n).skip(i + 1) {
            if a.ty == b.ty {
                corpus.add_clone_pair(a.id, b.id);
            }
        }
    }
    corpus
}

fn bench_sweep_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for size in [20usize, 40] {
        let corpus = honeypot_corpus(size);
        group.bench_with_input(
            BenchmarkId::new("per_cell", size),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let points: Vec<_> = parameter_grid()
                        .into_iter()
                        .map(|p| evaluate_reference(black_box(corpus), p))
                        .collect();
                    black_box(points)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_once", size),
            &corpus,
            |b, corpus| b.iter(|| black_box(sweep(black_box(corpus)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_reuse);
criterion_main!(benches);
