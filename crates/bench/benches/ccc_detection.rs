//! CCC benchmarks: the analysis cost behind Tables 1 and 2.
//!
//! * `ccc/curated_file` — full 17-query analysis of one curated file
//!   (the Table 1 workload, per file).
//! * `ccc/snippet_levels/*` — the same instance analyzed at contract,
//!   function and statement level (the Table 2 workload).
//! * `ccc/single_query/*` — per-query cost on a reentrancy contract.
//! * `ccc/path_reduction` — bounded-path analysis (the phase-2 validation
//!   mode of §6.3) vs unbounded.

use ccc::{Checker, QueryId};
use cpg::Cpg;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const DAO: &str = "contract Dao { mapping(address => uint) balances; \
    function deposit() public payable { balances[msg.sender] += msg.value; } \
    function withdraw() public { uint amount = balances[msg.sender]; \
    msg.sender.call{value: amount}(\"\"); balances[msg.sender] = 0; } }";

fn bench_curated_file(c: &mut Criterion) {
    let dataset = bench::curated();
    let file = dataset
        .files
        .iter()
        .find(|f| f.category == ccc::Dasp::Reentrancy)
        .expect("reentrancy files exist");
    let source = file.source();
    let checker = Checker::new();
    c.bench_function("ccc/curated_file", |b| {
        b.iter(|| black_box(checker.check_snippet(black_box(&source)).unwrap()))
    });
}

fn bench_snippet_levels(c: &mut Criterion) {
    let dataset = bench::curated();
    let functions = corpus::smartbugs::derive_functions(&dataset);
    let statements = corpus::smartbugs::derive_statements(&dataset);
    let checker = Checker::new();
    let mut group = c.benchmark_group("ccc/snippet_levels");
    for (name, ds) in [
        ("contract", &dataset),
        ("function", &functions),
        ("statement", &statements),
    ] {
        let source = ds.files[0].source();
        group.bench_function(name, |b| {
            b.iter(|| black_box(checker.check_snippet(black_box(&source)).unwrap()))
        });
    }
    group.finish();
}

fn bench_single_queries(c: &mut Criterion) {
    let cpg = Cpg::from_snippet(DAO).unwrap();
    let mut group = c.benchmark_group("ccc/single_query");
    for query in [
        QueryId::Reentrancy,
        QueryId::ArithmeticOverflow,
        QueryId::UncheckedCall,
        QueryId::AcUnrestrictedWrite,
    ] {
        let checker = Checker::with_queries(&[query]);
        group.bench_function(format!("{query:?}"), |b| {
            b.iter(|| black_box(checker.check(black_box(&cpg))))
        });
    }
    group.finish();
}

fn bench_path_reduction(c: &mut Criterion) {
    // A deep data-flow chain: the workload where the paper's phase-2 path
    // reduction (§6.3) pays off.
    let mut body = String::from("a0 = msg.value;\n");
    for i in 1..60 {
        body.push_str(&format!("a{i} = a{} + 1;\n", i - 1));
    }
    body.push_str("total = a59;\n");
    let source = format!("contract Deep {{ uint total; function f() public payable {{ {body} }} }}");
    let cpg = Cpg::from_snippet(&source).unwrap();
    let mut group = c.benchmark_group("ccc/path_reduction");
    group.bench_function("unbounded", |b| {
        let checker = Checker::new();
        b.iter(|| black_box(checker.check(black_box(&cpg))))
    });
    group.bench_function("bounded_12", |b| {
        let checker = Checker::with_max_path(12);
        b.iter(|| black_box(checker.check(black_box(&cpg))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_curated_file,
    bench_snippet_levels,
    bench_single_queries,
    bench_path_reduction
);
criterion_main!(benches);
