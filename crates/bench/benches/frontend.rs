//! Front-end benchmarks: parsing and CPG construction throughput — the
//! per-contract cost floor of the §6 validation pipeline.
//!
//! Besides the Criterion micro-benches (lex / parse / cpg_build /
//! graphquery), this bench measures a full **frontend pass** — parse +
//! CPG build over the curated and honeypot corpora — and appends the
//! result as a `frontend` point to `BENCH_trajectory.json` (or wherever
//! `FRONTEND_REPORT` points). The committed trajectory carries a
//! `pre_intern` point measured on the String-allocating frontend and an
//! `interned` point measured on the Symbol/arena rebuild; the ≥5x
//! acceptance bar compares the two.
//!
//! Environment:
//! * `FRONTEND_REPORT` — trajectory file path (default: workspace root).
//! * `FRONTEND_STAGE`  — stage label for the recorded point
//!   (default `"interned"`).
//! * `FRONTEND_APPEND=0` — measure and print, but do not write.
//! * `FRONTEND_GATE=1` — CI mode: compare the measured throughput against
//!   the last recorded `interned` point and exit non-zero on a >20%
//!   regression.

use cpg::Cpg;
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn sample_contract() -> String {
    bench::curated().files[0].source()
}

fn bench_lex(c: &mut Criterion) {
    let source = sample_contract();
    c.bench_function("frontend/lex", |b| {
        b.iter(|| black_box(solidity::lexer::lex(black_box(&source)).unwrap()))
    });
}

fn bench_parse(c: &mut Criterion) {
    let source = sample_contract();
    let mut group = c.benchmark_group("frontend/parse");
    group.bench_function("snippet_grammar", |b| {
        b.iter(|| black_box(solidity::parse_snippet(black_box(&source)).unwrap()))
    });
    group.bench_function("standard_grammar", |b| {
        b.iter(|| black_box(solidity::parse_source(black_box(&source))))
    });
    group.finish();
}

fn bench_cpg_build(c: &mut Criterion) {
    let source = sample_contract();
    let unit = solidity::parse_snippet(&source).unwrap();
    c.bench_function("frontend/cpg_build", |b| {
        b.iter(|| black_box(Cpg::from_unit(black_box(&unit))))
    });
}

fn bench_query_engine(c: &mut Criterion) {
    let cpg = Cpg::from_snippet(
        "contract C { uint total; function add(uint amount) public { total += amount; } }",
    )
    .unwrap();
    let query = graphquery::parse_query(
        "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p",
    )
    .unwrap();
    c.bench_function("frontend/graphquery", |b| {
        b.iter(|| {
            let source = graphquery::CpgSource::new(&cpg.graph);
            black_box(graphquery::run_var(black_box(&query), &source, "p"))
        })
    });
}

/// The frontend-pass corpus: every curated file plus the first 100
/// honeypots — a mix of full contracts and injected-technique variants.
fn pass_corpus() -> Vec<String> {
    let mut sources: Vec<String> =
        bench::curated().files.iter().map(|f| f.source()).collect();
    sources.extend(bench::honeypots().contracts.iter().take(100).map(|c| c.source.clone()));
    sources
}

/// One full frontend pass: parse + CPG build for every source. Returns the
/// total node count as an optimization barrier.
fn frontend_pass(sources: &[String]) -> usize {
    let mut nodes = 0usize;
    for src in sources {
        let unit = solidity::parse_snippet(src).expect("corpus source parses");
        let cpg = Cpg::from_unit(&unit);
        nodes += cpg.graph.node_count();
    }
    nodes
}

/// Best-of-5 wall-clock nanoseconds of one run of `routine` (after one
/// untimed warmup run).
fn time_ns<O, F: FnMut() -> O>(mut routine: F) -> u64 {
    black_box(routine());
    (0..5)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("five timed runs")
}

fn trajectory_path() -> String {
    std::env::var("FRONTEND_REPORT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json").into()
    })
}

/// Read the existing trajectory points, preserving entries from other
/// benches verbatim (one point per line, as all writers emit them).
fn existing_points(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{') && l.contains("\"bench\""))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// The most recent recorded `frontend` throughput for a stage, in MB/s.
fn recorded_mbps(path: &str, stage: &str) -> Option<f64> {
    let needle = format!("\"stage\": \"{stage}\"");
    existing_points(path)
        .iter()
        .rev()
        .find(|p| p.contains("\"frontend\"") && p.contains(&needle))
        .and_then(|p| {
            let idx = p.find("\"mb_per_s\": ")? + "\"mb_per_s\": ".len();
            let rest = &p[idx..];
            let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
            rest[..end].parse::<f64>().ok()
        })
}

fn write_frontend_report() {
    let path = trajectory_path();
    let stage = std::env::var("FRONTEND_STAGE").unwrap_or_else(|_| "interned".into());
    let sources = pass_corpus();
    let bytes: usize = sources.iter().map(String::len).sum();
    let pass_ns = time_ns(|| frontend_pass(&sources));
    let mb_per_s = bytes as f64 / 1e6 / (pass_ns as f64 / 1e9);
    println!(
        "frontend/pass[{stage}]: {} sources, {} bytes, {pass_ns} ns, {mb_per_s:.2} MB/s",
        sources.len(),
        bytes
    );

    if std::env::var("FRONTEND_GATE").as_deref() == Ok("1") {
        match recorded_mbps(&path, "interned") {
            Some(recorded) if mb_per_s < recorded * 0.8 => {
                // One retry before failing: shared CI hosts routinely lose
                // 15-20% of a run to scheduling noise, and a genuine code
                // regression will fail both measurements.
                let retry_ns = time_ns(|| frontend_pass(&sources));
                let retry = bytes as f64 / 1e6 / (retry_ns as f64 / 1e9);
                println!("frontend gate retry: {retry:.2} MB/s");
                if retry < recorded * 0.8 {
                    eprintln!(
                        "frontend throughput regressed >20%: measured {mb_per_s:.2} and \
                         {retry:.2} MB/s vs recorded {recorded:.2} MB/s"
                    );
                    std::process::exit(1);
                }
                println!("frontend gate ok: {retry:.2} MB/s vs recorded {recorded:.2} MB/s")
            }
            Some(recorded) => {
                println!("frontend gate ok: {mb_per_s:.2} MB/s vs recorded {recorded:.2} MB/s")
            }
            None => println!("frontend gate skipped: no recorded interned point"),
        }
        return;
    }

    if std::env::var("FRONTEND_APPEND").as_deref() == Ok("0") {
        return;
    }
    let mut points = existing_points(&path);
    points.push(format!(
        "{{\"bench\": \"frontend\", \"stage\": \"{stage}\", \"sources\": {}, \"bytes\": {bytes}, \"pass_ns\": {pass_ns}, \"mb_per_s\": {mb_per_s:.2}}}",
        sources.len()
    ));
    let body: Vec<String> = points.iter().map(|p| format!("    {p}")).collect();
    let json = format!(
        "{{\n  \"version\": 1,\n  \"points\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("cannot write {path}: {error}"),
    }
}

criterion_group!(benches, bench_lex, bench_parse, bench_cpg_build, bench_query_engine);

fn main() {
    benches();
    write_frontend_report();
}
