//! Front-end benchmarks: parsing and CPG construction throughput — the
//! per-contract cost floor of the §6 validation pipeline.

use cpg::Cpg;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample_contract() -> String {
    bench::curated().files[0].source()
}

fn bench_lex(c: &mut Criterion) {
    let source = sample_contract();
    c.bench_function("frontend/lex", |b| {
        b.iter(|| black_box(solidity::lexer::lex(black_box(&source)).unwrap()))
    });
}

fn bench_parse(c: &mut Criterion) {
    let source = sample_contract();
    let mut group = c.benchmark_group("frontend/parse");
    group.bench_function("snippet_grammar", |b| {
        b.iter(|| black_box(solidity::parse_snippet(black_box(&source)).unwrap()))
    });
    group.bench_function("standard_grammar", |b| {
        b.iter(|| black_box(solidity::parse_source(black_box(&source))))
    });
    group.finish();
}

fn bench_cpg_build(c: &mut Criterion) {
    let source = sample_contract();
    let unit = solidity::parse_snippet(&source).unwrap();
    c.bench_function("frontend/cpg_build", |b| {
        b.iter(|| black_box(Cpg::from_unit(black_box(&unit))))
    });
}

fn bench_query_engine(c: &mut Criterion) {
    let cpg = Cpg::from_snippet(
        "contract C { uint total; function add(uint amount) public { total += amount; } }",
    )
    .unwrap();
    let query = graphquery::parse_query(
        "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p",
    )
    .unwrap();
    c.bench_function("frontend/graphquery", |b| {
        b.iter(|| {
            let source = graphquery::CpgSource::new(&cpg.graph);
            black_box(graphquery::run_var(black_box(&query), &source, "p"))
        })
    });
}

criterion_group!(benches, bench_lex, bench_parse, bench_cpg_build, bench_query_engine);
criterion_main!(benches);
