//! Ablation benches for the design decisions called out in DESIGN.md §4.
//!
//! * `ablation/ngram_filter` — η-filtered matching vs brute-force
//!   all-pairs edit distance (the "Execution Time" challenge of §5.5).
//! * `ablation/order_independent` — Algorithm 1 vs naive whole-string
//!   edit distance when function order is swapped (the "Code Order"
//!   challenge of §5.5). This one measures *quality*, reported via
//!   iter-time of the two strategies plus an assertion that only
//!   Algorithm 1 scores the swapped contract as a clone.
//! * `ablation/tokenwise_hash` — token-by-token fuzzy hashing (context
//!   enforcement, §5.4) vs hashing the concatenated byte stream.

use ccd::{order_independent_similarity, CcdParams, CloneDetector};
use criterion::{criterion_group, criterion_main, Criterion};
use fuzzyhash::{similarity, FuzzyHasher};
use std::hint::black_box;

fn bench_ngram_filter(c: &mut Criterion) {
    let ds = bench::honeypots();
    let mut detector = CloneDetector::new(CcdParams::best());
    for hp in &ds.contracts {
        detector.insert_source(hp.id, &hp.source);
    }
    let query = CloneDetector::fingerprint_source(&ds.contracts[0].source).unwrap();
    let mut group = c.benchmark_group("ablation/ngram_filter");
    group.bench_function("filtered", |b| {
        b.iter(|| black_box(detector.matches(black_box(&query))))
    });
    group.bench_function("bruteforce", |b| {
        b.iter(|| black_box(detector.matches_bruteforce(black_box(&query))))
    });
    group.finish();
}

fn bench_order_independence(c: &mut Criterion) {
    let a = CloneDetector::fingerprint_source(
        "contract C { function f() { x = 1; y = x + 2; } function g() { require(msg.sender == owner); owner = next; } }",
    )
    .unwrap();
    let b_swapped = CloneDetector::fingerprint_source(
        "contract C { function g() { require(msg.sender == owner); owner = next; } function f() { x = 1; y = x + 2; } }",
    )
    .unwrap();
    // Quality assertion: Algorithm 1 is order-independent, the naive
    // whole-string distance is not.
    assert_eq!(order_independent_similarity(&a, &b_swapped), 100.0);
    assert!(similarity(a.as_str(), b_swapped.as_str()) < 100.0);

    let mut group = c.benchmark_group("ablation/order_independent");
    group.bench_function("algorithm1", |bench| {
        bench.iter(|| black_box(order_independent_similarity(black_box(&a), black_box(&b_swapped))))
    });
    group.bench_function("whole_string", |bench| {
        bench.iter(|| black_box(similarity(black_box(a.as_str()), black_box(b_swapped.as_str()))))
    });
    group.finish();
}

fn bench_tokenwise_hash(c: &mut Criterion) {
    let tokens: Vec<String> = (0..400).map(|i| format!("tok{}", i % 31)).collect();
    let joined = tokens.join("");
    let mut group = c.benchmark_group("ablation/tokenwise_hash");
    group.bench_function("tokenwise", |b| {
        b.iter(|| {
            let mut hasher = FuzzyHasher::new(4);
            for token in &tokens {
                hasher.update_token(token);
            }
            black_box(hasher.finish())
        })
    });
    group.bench_function("bytewise", |b| {
        b.iter(|| {
            let mut hasher = FuzzyHasher::new(4);
            hasher.update_bytes(joined.as_bytes());
            black_box(hasher.finish())
        })
    });
    group.finish();
}

fn bench_modifier_expansion(c: &mut Criterion) {
    // §4.2.2 ablation: CPG construction with and without modifier
    // expansion (the copies are the cost; guard visibility is the payoff,
    // asserted in ccc's ablation test).
    let src = "contract C { address owner;                modifier onlyOwner() { require(msg.sender == owner); _; }                constructor() { owner = msg.sender; }                function a() public onlyOwner() { x = 1; }                function b() public onlyOwner() { y = 2; }                function kill() public onlyOwner() { selfdestruct(owner); } }";
    let unit = solidity::parse_snippet(src).unwrap();
    let mut group = c.benchmark_group("ablation/modifier_expansion");
    group.bench_function("expanded", |b| {
        b.iter(|| {
            black_box(cpg::Cpg::from_unit_with(
                black_box(&unit),
                cpg::BuildOptions { expand_modifiers: true },
            ))
        })
    });
    group.bench_function("unexpanded", |b| {
        b.iter(|| {
            black_box(cpg::Cpg::from_unit_with(
                black_box(&unit),
                cpg::BuildOptions { expand_modifiers: false },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ngram_filter,
    bench_order_independence,
    bench_tokenwise_hash,
    bench_modifier_expansion
);
criterion_main!(benches);
