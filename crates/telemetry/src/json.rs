//! A minimal JSON parser for validating emitted run reports.
//!
//! The workspace is offline (no serde_json); this covers exactly what the
//! report consumers need: parse a complete document into a [`Value`] tree
//! with object key lookup. Numbers are `f64`, strings support the
//! standard escapes, and trailing garbage is an error.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The f64 of a number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The &str of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid token at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the longest run of ordinary bytes in one step
                // and validate it once — per-character validation of the
                // remaining input is quadratic on large documents.
                // Multi-byte UTF-8 sequences never contain `"` or `\`
                // (continuation bytes are >= 0x80), so stopping on those
                // ASCII bytes cannot split a character.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        let obj = parse(r#"{"a": [], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Value::Array(vec![])));
        assert_eq!(obj.get("b").and_then(|b| b.get("c")).and_then(Value::as_str), Some("d"));
    }

    #[test]
    fn unicode_escapes_and_multibyte_characters() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        assert_eq!(parse("\"η ≥ ε\"").unwrap(), Value::String("η ≥ ε".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
