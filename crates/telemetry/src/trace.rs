//! Per-request distributed-style tracing: bounded span trees in a
//! lock-sharded ring buffer with tail sampling.
//!
//! The aggregate spans of [`crate::span`] answer "where does the *run*
//! spend time"; this module answers "why was *this request* slow". A
//! request handler opens a trace with [`start`] (adopting or minting a
//! 64-bit [`TraceId`]), the analysis stages below it open child spans
//! with [`stage`] (thread-local, no signature plumbing), and annotations
//! ([`annotate`], [`mark_error`]) attach outcomes, cache hits and
//! injected faults to the innermost open span. When the root guard
//! drops, the finished span tree is submitted to a process-global,
//! lock-sharded ring buffer under a tail-sampling policy that **always**
//! retains error traces and traces slower than a configurable threshold
//! (normal traces are kept 1-in-`keep_every` and evicted first under
//! buffer pressure).
//!
//! Tracing is **off** by default and independent of the metrics switch:
//! [`set_enabled`]`(true)` (the daemon's `--trace` flag) or `TRACING=1`
//! turns it on. While off, [`start`]/[`stage`]/[`annotate`] are a single
//! relaxed atomic load — no allocation, no thread-local touch — so the
//! instrumentation stays compiled into release binaries.
//!
//! Ids are deterministic under a fixed seed ([`seed_ids`], or the
//! `TRACE_SEED` environment variable), which tests use to assert stable
//! trace/span id sequences; without a seed the stream is keyed by
//! process id and startup time.
//!
//! Finished traces render as a nested JSON span tree ([`to_json`]) or as
//! a Chrome `trace_event` document ([`to_chrome_json`]) that loads
//! directly in Perfetto / `chrome://tracing`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Hard cap on recorded spans per trace; further [`stage`] calls count
/// into `dropped_spans` instead of growing the tree without bound.
pub const MAX_TRACE_SPANS: usize = 256;

/// Number of ring-buffer shards (trace ids hash to a shard, so
/// concurrent request threads rarely contend on the same lock).
pub const RING_SHARDS: usize = 8;

/// Default retained traces per shard.
pub const DEFAULT_SHARD_CAPACITY: usize = 128;

/// A 64-bit trace identifier (never zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// A 64-bit span identifier (never zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Canonical 16-digit lowercase hex form (the `X-Trace-Id` wire
    /// format).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse 1–16 hex digits; `None` for anything else (including the
    /// all-zero id, which is reserved as "absent").
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(id) => Some(TraceId(id)),
        }
    }
}

impl SpanId {
    /// Canonical 16-digit lowercase hex form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

// ---------------------------------------------------------------------
// Enablement & configuration
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Tail-sampling: traces at least this slow are always retained (µs).
static SLOW_US: AtomicU64 = AtomicU64::new(100_000);
/// Tail-sampling: keep 1 in N normal (fast, non-error) traces.
static KEEP_EVERY: AtomicU64 = AtomicU64::new(1);
/// Monotonic sequence for the 1-in-N decision.
static SAMPLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Turn per-request tracing on or off. Independent of the metrics
/// switch ([`crate::enable`]); both default to off, and the
/// `TELEMETRY=0` kill switch vetoes enabling either.
pub fn set_enabled(on: bool) {
    ENABLED.store(on && !crate::env_forced_off(), Ordering::SeqCst);
}

/// Whether tracing is recording — the hot-path check (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Configure tail sampling: retain every trace that errored or ran at
/// least `slow_us` microseconds; keep only 1 in `keep_every` of the
/// rest (`keep_every` 0 is treated as 1 — keep all).
pub fn set_sampling(slow_us: u64, keep_every: u64) {
    SLOW_US.store(slow_us, Ordering::SeqCst);
    KEEP_EVERY.store(keep_every.max(1), Ordering::SeqCst);
}

/// Apply `TRACING` (`1`/`on`/`true` enables), `TRACE_SLOW_US`,
/// `TRACE_KEEP_EVERY` and `TRACE_SEED` from the environment. Binaries
/// call this once at startup; libraries never do.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("TRACING") {
        if matches!(v.to_ascii_lowercase().as_str(), "1" | "on" | "true") {
            set_enabled(true);
        }
    }
    if let Some(us) = env_u64("TRACE_SLOW_US") {
        SLOW_US.store(us, Ordering::SeqCst);
    }
    if let Some(n) = env_u64("TRACE_KEEP_EVERY") {
        KEEP_EVERY.store(n.max(1), Ordering::SeqCst);
    }
    if let Some(seed) = env_u64("TRACE_SEED") {
        seed_ids(seed);
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

// ---------------------------------------------------------------------
// Id generation
// ---------------------------------------------------------------------

static ID_SEED: AtomicU64 = AtomicU64::new(0);
static ID_SEQ: AtomicU64 = AtomicU64::new(0);
static ID_SEEDED: AtomicBool = AtomicBool::new(false);

/// SplitMix64 finalizer — the id stream's mixing function.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Seed the id generator and rewind its sequence, making every
/// subsequent trace/span id deterministic. Tests use this; production
/// seeds itself from process id and startup time on first use.
pub fn seed_ids(seed: u64) {
    ID_SEED.store(seed, Ordering::SeqCst);
    ID_SEQ.store(0, Ordering::SeqCst);
    ID_SEEDED.store(true, Ordering::SeqCst);
}

fn next_id() -> u64 {
    if !ID_SEEDED.load(Ordering::Relaxed) {
        let entropy = std::process::id() as u64 ^ Instant::now().elapsed().as_nanos() as u64
            ^ std::time::UNIX_EPOCH.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0);
        // Racing first callers may each store once; last write wins and
        // both produce valid (merely differently-keyed) id streams.
        ID_SEED.store(mix(entropy), Ordering::SeqCst);
        ID_SEEDED.store(true, Ordering::SeqCst);
    }
    let n = ID_SEQ.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    let id = mix(ID_SEED.load(Ordering::Relaxed) ^ mix(n));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Mint a fresh trace id from the (possibly seeded) id stream.
pub fn new_trace_id() -> TraceId {
    TraceId(next_id())
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

/// One recorded span of a finished trace.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Span id (deterministic under [`seed_ids`]).
    pub id: SpanId,
    /// Parent span id; `None` for the root.
    pub parent: Option<SpanId>,
    /// Stage name (`"request"`, `"parse"`, `"cpg-build"`, ...).
    pub name: &'static str,
    /// Start offset from the trace's start, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (at least 1 for a completed span).
    pub dur_ns: u64,
    /// `key=value` annotations attached while the span was open.
    pub notes: Vec<(&'static str, String)>,
}

/// A finished, immutable trace as stored in the ring buffer.
#[derive(Debug)]
pub struct FinishedTrace {
    /// The trace id (adopted from the caller or minted at ingress).
    pub trace_id: TraceId,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub started_unix_us: u64,
    /// Total duration (root span), microseconds.
    pub dur_us: u64,
    /// Whether [`mark_error`] was called (error traces are always
    /// retained by the sampler and evicted last).
    pub error: bool,
    /// Spans dropped beyond [`MAX_TRACE_SPANS`].
    pub dropped_spans: u32,
    /// The recorded spans; index 0 is the root.
    pub spans: Vec<SpanRec>,
}

struct ActiveTrace {
    trace_id: TraceId,
    start: Instant,
    started_unix_us: u64,
    spans: Vec<SpanRec>,
    /// Indices of currently-open spans (innermost last).
    open: Vec<usize>,
    error: bool,
    dropped: u32,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Root guard of one trace: finishes and submits the trace on drop.
#[must_use = "a trace records until its guard is dropped"]
#[derive(Debug)]
pub struct TraceGuard {
    live: bool,
}

/// Guard of one stage span: closes the span on drop.
#[must_use = "a stage span measures until its guard is dropped"]
#[derive(Debug)]
pub struct StageGuard {
    idx: Option<usize>,
}

impl StageGuard {
    /// An inert guard recording nothing — for call sites that trace only
    /// conditionally.
    pub const fn inert() -> StageGuard {
        StageGuard { idx: None }
    }
}

impl TraceGuard {
    /// An inert guard recording nothing — for call sites that resolve
    /// the trace id lazily and must not consume one while tracing is
    /// off.
    pub const fn inert() -> TraceGuard {
        TraceGuard { live: false }
    }
}

/// Open a trace with root span `name`. Returns an inert guard while
/// tracing is disabled, or when this thread already has an active trace
/// (traces never nest within a thread).
pub fn start(trace_id: TraceId, name: &'static str) -> TraceGuard {
    if !enabled() {
        return TraceGuard { live: false };
    }
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        if active.is_some() {
            return TraceGuard { live: false };
        }
        let started_unix_us = std::time::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let root = SpanRec {
            id: SpanId(next_id()),
            parent: None,
            name,
            start_ns: 0,
            dur_ns: 0,
            notes: Vec::new(),
        };
        *active = Some(ActiveTrace {
            trace_id,
            start: Instant::now(),
            started_unix_us,
            spans: vec![root],
            open: vec![0],
            error: false,
            dropped: 0,
        });
        TraceGuard { live: true }
    })
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let finished = ACTIVE.with(|active| active.borrow_mut().take());
        let Some(mut trace) = finished else { return };
        let total_ns = elapsed_ns(trace.start);
        // Close the root and any stage spans leaked by a panic unwind.
        for &idx in trace.open.iter().rev() {
            let span = &mut trace.spans[idx];
            span.dur_ns = total_ns.saturating_sub(span.start_ns).max(1);
        }
        submit(FinishedTrace {
            trace_id: trace.trace_id,
            started_unix_us: trace.started_unix_us,
            dur_us: total_ns / 1_000,
            error: trace.error,
            dropped_spans: trace.dropped,
            spans: trace.spans,
        });
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Open a stage span under the innermost open span of this thread's
/// active trace. Inert (one atomic load) while tracing is disabled or no
/// trace is active; counts into `dropped_spans` past [`MAX_TRACE_SPANS`].
pub fn stage(name: &'static str) -> StageGuard {
    if !enabled() {
        return StageGuard { idx: None };
    }
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let Some(trace) = active.as_mut() else {
            return StageGuard { idx: None };
        };
        if trace.spans.len() >= MAX_TRACE_SPANS {
            trace.dropped += 1;
            return StageGuard { idx: None };
        }
        let parent = trace.open.last().map(|&i| trace.spans[i].id);
        let idx = trace.spans.len();
        trace.spans.push(SpanRec {
            id: SpanId(next_id()),
            parent,
            name,
            start_ns: elapsed_ns(trace.start),
            dur_ns: 0,
            notes: Vec::new(),
        });
        trace.open.push(idx);
        StageGuard { idx: Some(idx) }
    })
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        ACTIVE.with(|active| {
            let mut active = active.borrow_mut();
            let Some(trace) = active.as_mut() else { return };
            let now = elapsed_ns(trace.start);
            let span = &mut trace.spans[idx];
            span.dur_ns = now.saturating_sub(span.start_ns).max(1);
            // Guards drop LIFO within a thread; a panic unwind may skip
            // inner drops, so close (don't assert) position.
            if let Some(pos) = trace.open.iter().rposition(|&i| i == idx) {
                trace.open.truncate(pos);
            }
        });
    }
}

/// Attach `key=value` to the innermost open span of the active trace.
/// The value is only formatted when a trace is actually recording.
pub fn annotate<V: std::fmt::Display>(key: &'static str, value: V) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let Some(trace) = active.as_mut() else { return };
        let Some(&idx) = trace.open.last() else { return };
        let span = &mut trace.spans[idx];
        // Bound per-span notes the same way spans are bounded per trace.
        if span.notes.len() < 32 {
            span.notes.push((key, value.to_string()));
        }
    });
}

/// Flag the active trace as an error; error traces are always retained
/// by tail sampling and evicted last under buffer pressure.
pub fn mark_error() {
    if !enabled() {
        return;
    }
    ACTIVE.with(|active| {
        if let Some(trace) = active.borrow_mut().as_mut() {
            trace.error = true;
        }
    });
}

/// The id of this thread's active trace, if any (request handlers use
/// this to correlate logs without threading the id explicitly).
pub fn current_trace_id() -> Option<TraceId> {
    if !enabled() {
        return None;
    }
    ACTIVE.with(|active| active.borrow().as_ref().map(|t| t.trace_id))
}

// ---------------------------------------------------------------------
// Ring buffer & tail sampling
// ---------------------------------------------------------------------

struct Ring {
    shards: Vec<Mutex<VecDeque<Arc<FinishedTrace>>>>,
    shard_capacity: AtomicUsize,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        shards: (0..RING_SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
        shard_capacity: AtomicUsize::new(DEFAULT_SHARD_CAPACITY),
    })
}

fn lock_shard(ring: &Ring, i: usize) -> MutexGuard<'_, VecDeque<Arc<FinishedTrace>>> {
    ring.shards[i].lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Resize the per-shard retention (total capacity is `RING_SHARDS ×`
/// this). Existing overflow is evicted lazily on the next submit.
pub fn set_shard_capacity(capacity: usize) {
    ring().shard_capacity.store(capacity.max(1), Ordering::SeqCst);
}

/// Whether a finished trace is unconditionally retained: it errored or
/// ran at least the configured slow threshold.
fn is_retained(trace: &FinishedTrace) -> bool {
    trace.error || trace.dur_us >= SLOW_US.load(Ordering::Relaxed)
}

fn submit(trace: FinishedTrace) {
    static SUBMITTED: crate::Counter = crate::Counter::new("trace.submitted");
    static SAMPLED_OUT: crate::Counter = crate::Counter::new("trace.sampled_out");
    let retained = is_retained(&trace);
    if !retained {
        let keep_every = KEEP_EVERY.load(Ordering::Relaxed);
        let seq = SAMPLE_SEQ.fetch_add(1, Ordering::Relaxed);
        if keep_every > 1 && !seq.is_multiple_of(keep_every) {
            SAMPLED_OUT.incr();
            return;
        }
    }
    SUBMITTED.incr();
    let ring = ring();
    let capacity = ring.shard_capacity.load(Ordering::Relaxed);
    let shard = (trace.trace_id.0 % RING_SHARDS as u64) as usize;
    let mut deque = lock_shard(ring, shard);
    while deque.len() >= capacity {
        // Evict the oldest *non-retained* trace first; only when the
        // whole shard is error/slow traces does the oldest of those go.
        if let Some(pos) = deque.iter().position(|t| !is_retained(t)) {
            deque.remove(pos);
        } else {
            deque.pop_front();
        }
    }
    deque.push_back(Arc::new(trace));
}

/// Look up a finished trace by id (most recent submission wins on the
/// unlikely id collision).
pub fn find(trace_id: TraceId) -> Option<Arc<FinishedTrace>> {
    let ring = ring();
    let shard = (trace_id.0 % RING_SHARDS as u64) as usize;
    let deque = lock_shard(ring, shard);
    deque.iter().rev().find(|t| t.trace_id == trace_id).cloned()
}

/// The most recent `limit` finished traces across all shards, newest
/// first (ordered by wall-clock start).
pub fn recent(limit: usize) -> Vec<Arc<FinishedTrace>> {
    let ring = ring();
    let mut all: Vec<Arc<FinishedTrace>> = Vec::new();
    for i in 0..RING_SHARDS {
        all.extend(lock_shard(ring, i).iter().cloned());
    }
    all.sort_by_key(|t| std::cmp::Reverse(t.started_unix_us));
    all.truncate(limit);
    all
}

/// Drop every buffered trace and rewind the sampling sequence (test
/// hook; ids are reset separately via [`seed_ids`]).
pub fn reset() {
    let ring = ring();
    for i in 0..RING_SHARDS {
        lock_shard(ring, i).clear();
    }
    SAMPLE_SEQ.store(0, Ordering::SeqCst);
}

/// Total traces currently buffered across all shards.
pub fn buffered() -> usize {
    let ring = ring();
    (0..RING_SHARDS).map(|i| lock_shard(ring, i).len()).sum()
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn notes_json(notes: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
    }
    out.push('}');
    out
}

fn span_json(trace: &FinishedTrace, idx: usize, children: &[Vec<usize>]) -> String {
    let span = &trace.spans[idx];
    let mut out = format!(
        "{{\"span_id\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"notes\":{},\"children\":[",
        span.id.to_hex(),
        escape(span.name),
        span.start_ns,
        span.dur_ns,
        notes_json(&span.notes),
    );
    for (i, &child) in children[idx].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_json(trace, child, children));
    }
    out.push_str("]}");
    out
}

/// Child indices per span index; spans whose parent is missing (never
/// possible today, defensive) hang off the root.
fn child_table(trace: &FinishedTrace) -> Vec<Vec<usize>> {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    for (idx, span) in trace.spans.iter().enumerate().skip(1) {
        let parent_idx = span
            .parent
            .and_then(|p| trace.spans.iter().position(|s| s.id == p))
            .unwrap_or(0);
        children[parent_idx].push(idx);
    }
    children
}

/// Render a finished trace as a nested JSON span tree (the
/// `/debug/trace/<id>` document).
pub fn to_json(trace: &FinishedTrace) -> String {
    let children = child_table(trace);
    let root = if trace.spans.is_empty() {
        "null".to_string()
    } else {
        span_json(trace, 0, &children)
    };
    format!(
        "{{\"v\":1,\"trace_id\":\"{}\",\"started_unix_us\":{},\"dur_us\":{},\"error\":{},\
         \"dropped_spans\":{},\"span_count\":{},\"root\":{}}}",
        trace.trace_id.to_hex(),
        trace.started_unix_us,
        trace.dur_us,
        trace.error,
        trace.dropped_spans,
        trace.spans.len(),
        root,
    )
}

/// Render a finished trace in Chrome `trace_event` format — save the
/// body to a file and load it in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing` to see the request waterfall.
pub fn to_chrome_json(trace: &FinishedTrace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut args = vec![("trace_id".to_string(), trace.trace_id.to_hex())];
        for (k, v) in &span.notes {
            args.push(((*k).to_string(), v.clone()));
        }
        let args_json: Vec<String> = args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            escape(span.name),
            span.start_ns as f64 / 1_000.0,
            span.dur_ns as f64 / 1_000.0,
            args_json.join(","),
        ));
    }
    out.push_str("]}");
    out
}

/// Render summaries of the most recent `limit` traces (the
/// `/debug/traces/recent` document), newest first.
pub fn recent_json(limit: usize) -> String {
    let mut out = String::from("{\"v\":1,\"traces\":[");
    for (i, trace) in recent(limit).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let root = trace.spans.first().map(|s| s.name).unwrap_or("?");
        out.push_str(&format!(
            "{{\"trace_id\":\"{}\",\"root\":\"{}\",\"started_unix_us\":{},\"dur_us\":{},\
             \"error\":{},\"spans\":{}}}",
            trace.trace_id.to_hex(),
            escape(root),
            trace.started_unix_us,
            trace.dur_us,
            trace.error,
            trace.spans.len(),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests serialize through the same
    /// lock the telemetry switch tests use.
    fn hold() -> MutexGuard<'static, ()> {
        crate::test_lock::hold()
    }

    fn fresh(seed: u64) {
        reset();
        seed_ids(seed);
        set_sampling(100_000, 1);
        set_shard_capacity(DEFAULT_SHARD_CAPACITY);
        set_enabled(true);
    }

    #[test]
    fn disabled_records_nothing_and_guards_are_inert() {
        let _guard = hold();
        reset();
        set_enabled(false);
        let t = start(TraceId(7), "request");
        let s = stage("parse");
        annotate("k", "v");
        mark_error();
        assert!(current_trace_id().is_none());
        drop(s);
        drop(t);
        assert_eq!(buffered(), 0);
    }

    #[test]
    fn records_a_nested_span_tree() {
        let _guard = hold();
        fresh(1);
        {
            let _t = start(TraceId(42), "request");
            assert_eq!(current_trace_id(), Some(TraceId(42)));
            {
                let _parse = stage("parse");
                annotate("bytes", 123);
            }
            let _check = stage("check");
            let _inner = stage("query");
        }
        set_enabled(false);
        let trace = find(TraceId(42)).expect("trace buffered");
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.spans[0].name, "request");
        assert!(trace.spans.iter().all(|s| s.dur_ns > 0));
        let parse = trace.spans.iter().find(|s| s.name == "parse").unwrap();
        assert_eq!(parse.parent, Some(trace.spans[0].id));
        assert_eq!(parse.notes, vec![("bytes", "123".to_string())]);
        let query = trace.spans.iter().find(|s| s.name == "query").unwrap();
        let check = trace.spans.iter().find(|s| s.name == "check").unwrap();
        assert_eq!(query.parent, Some(check.id));
        let json = to_json(&trace);
        assert!(json.contains("\"trace_id\":\"000000000000002a\""), "{json}");
        assert!(json.contains("\"name\":\"parse\""), "{json}");
        let chrome = to_chrome_json(&trace);
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    }

    #[test]
    fn ids_are_deterministic_under_a_fixed_seed() {
        let _guard = hold();
        fresh(99);
        let a: Vec<u64> = (0..8).map(|_| next_id()).collect();
        seed_ids(99);
        let b: Vec<u64> = (0..8).map(|_| next_id()).collect();
        assert_eq!(a, b);
        seed_ids(100);
        let c: Vec<u64> = (0..8).map(|_| next_id()).collect();
        assert_ne!(a, c);
        assert!(a.iter().all(|&id| id != 0));
        set_enabled(false);
    }

    #[test]
    fn span_budget_is_bounded() {
        let _guard = hold();
        fresh(3);
        {
            let _t = start(TraceId(5), "request");
            for _ in 0..(MAX_TRACE_SPANS + 10) {
                let _s = stage("tick");
            }
        }
        set_enabled(false);
        let trace = find(TraceId(5)).expect("trace buffered");
        assert_eq!(trace.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(trace.dropped_spans as usize, 11);
    }

    #[test]
    fn eviction_is_fifo_and_spares_retained_traces() {
        let _guard = hold();
        fresh(4);
        set_shard_capacity(3);
        // All ids map to shard 0 (multiples of RING_SHARDS).
        let id = |n: u64| TraceId(n * RING_SHARDS as u64);
        {
            let _t = start(id(1), "request");
            mark_error();
        }
        for n in 2..=5u64 {
            let _t = start(id(n), "request");
        }
        set_enabled(false);
        // Capacity 3: the error trace survives every eviction; the
        // normal traces evict oldest-first (2 and 3 gone, 4 and 5 kept).
        assert!(find(id(1)).is_some(), "error trace must survive eviction");
        assert!(find(id(2)).is_none());
        assert!(find(id(3)).is_none());
        assert!(find(id(4)).is_some());
        assert!(find(id(5)).is_some());
    }

    #[test]
    fn tail_sampling_keeps_errors_and_slow_traces() {
        let _guard = hold();
        fresh(5);
        set_sampling(0, u64::MAX); // everything is "slow" → everything kept
        {
            let _t = start(TraceId(21), "request");
        }
        assert!(find(TraceId(21)).is_some(), "slow traces are always kept");
        set_sampling(u64::MAX, u64::MAX); // nothing slow, keep-1-in-many
        {
            let _t = start(TraceId(22), "request");
            mark_error();
        }
        assert!(find(TraceId(22)).is_some(), "error traces are always kept");
        // Normal+fast traces are sampled out (seq 1.. of keep_every MAX).
        {
            let _t = start(TraceId(23), "request");
        }
        {
            let _t = start(TraceId(24), "request");
        }
        assert!(find(TraceId(24)).is_none(), "fast normal traces sample out");
        set_enabled(false);
        set_sampling(100_000, 1);
    }

    #[test]
    fn trace_id_hex_roundtrip() {
        assert_eq!(TraceId::from_hex("deadbeef"), Some(TraceId(0xdeadbeef)));
        assert_eq!(TraceId(0xdeadbeef).to_hex(), "00000000deadbeef");
        assert_eq!(TraceId::from_hex("00000000deadbeef"), Some(TraceId(0xdeadbeef)));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("0"), None, "zero is reserved");
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("11112222333344445"), None, "too long");
    }

    #[test]
    fn recent_returns_newest_first() {
        let _guard = hold();
        fresh(6);
        for n in 1..=3u64 {
            let _t = start(TraceId(n), "request");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_enabled(false);
        let recent = recent(2);
        assert_eq!(recent.len(), 2);
        assert!(recent[0].started_unix_us >= recent[1].started_unix_us);
        let json = recent_json(10);
        assert!(json.contains("\"traces\":["), "{json}");
    }
}
