//! Run reports: freeze the global telemetry state into a [`Snapshot`]
//! and render it as a stable JSON document.
//!
//! The JSON schema (version 1) is the machine-readable interface every
//! bench/CI consumer reads (`BENCH_run.json`):
//!
//! ```json
//! {
//!   "version": 1,
//!   "spans":      [{"path": "ccc/query/Reentrancy", "count": 1, "total_ns": 2, "mean_ns": 2.0}],
//!   "counters":   [{"name": "ccd.fingerprints", "value": 3}],
//!   "gauges":     [{"name": "par.workers", "value": 8}],
//!   "histograms": [{"name": "par.tasks_per_worker", "count": 8, "sum": 64, "buckets": [...]}]
//! }
//! ```
//!
//! All lists are sorted by name/path (the backing maps are `BTreeMap`s),
//! so two runs over the same corpus produce structurally identical
//! documents modulo timing values.

use crate::metrics::{registry, BucketLayout, HistogramCore};
use crate::span::spans;
use std::sync::atomic::Ordering;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// `/`-separated span path.
    pub path: String,
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per span.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Bucket mapping (see [`BucketLayout`]).
    pub layout: BucketLayout,
    /// `layout.bucket_count()` buckets.
    pub buckets: Vec<u64>,
}

/// A frozen copy of the telemetry state: spans, counters, gauges and
/// histograms, each sorted by name. Zero-valued counters/gauges and empty
/// histograms are omitted, so a [`reset`] registry snapshots as empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A span aggregate by path, if present.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Render the stable JSON document (schema version 1).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"version\": 1,\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}}}",
                escape(&s.path),
                s.count,
                s.total_ns,
                s.mean_ns()
            ));
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"name\": {}, \"value\": {value}}}", escape(name)));
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"name\": {}, \"value\": {value}}}", escape(name)));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"layout\": \"{}\", \"buckets\": [{}]}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.layout.name(),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string literal with escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Freeze the current telemetry state. Can be taken while disabled (it
/// reads whatever was recorded before the switch-off).
pub fn snapshot() -> Snapshot {
    let spans: Vec<SpanStat> = spans()
        .iter()
        .filter(|(_, agg)| agg.count > 0)
        .map(|(path, agg)| SpanStat {
            path: path.clone(),
            count: agg.count,
            total_ns: agg.total_ns,
        })
        .collect();
    let reg = registry();
    let counters: Vec<(String, u64)> = lock_map(&reg.counters)
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v > 0)
        .collect();
    let gauges: Vec<(String, u64)> = lock_map(&reg.gauges)
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v > 0)
        .collect();
    let histograms: Vec<HistogramStat> = lock_map(&reg.histograms)
        .iter()
        .map(|(n, h)| freeze_histogram(n, h))
        .filter(|h| h.count > 0)
        .collect();
    Snapshot { spans, counters, gauges, histograms }
}

fn lock_map<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn freeze_histogram(name: &str, h: &HistogramCore) -> HistogramStat {
    let buckets: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    HistogramStat {
        name: name.to_string(),
        count: h.count.load(Ordering::Relaxed),
        sum: h.sum.load(Ordering::Relaxed),
        layout: h.layout,
        buckets,
    }
}

/// Zero every metric and drop every span aggregate. Metric cells are
/// zeroed in place (handles cache `&'static` pointers into the registry,
/// which must stay valid), so the registry keys survive but snapshot as
/// empty until touched again.
pub fn reset() {
    spans().clear();
    let reg = registry();
    for cell in lock_map(&reg.counters).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in lock_map(&reg.gauges).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for h in lock_map(&reg.histograms).values() {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for bucket in h.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn json_roundtrips_through_the_parser() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        crate::counter_add("report.test.counter", 7);
        crate::gauge_set("report.test.gauge", 9);
        crate::histogram_observe("report.test.hist", 140);
        {
            let _span = crate::span("report.test/phase \"quoted\"");
        }
        let snap = snapshot();
        let doc = parse(&snap.to_json()).expect("emitted JSON parses");
        let Value::Object(root) = &doc else { panic!("not an object: {doc:?}") };
        assert_eq!(root.get("version"), Some(&Value::Number(1.0)));
        let Some(Value::Array(counters)) = root.get("counters") else {
            panic!("no counters array")
        };
        assert!(counters.iter().any(|c| {
            matches!(c, Value::Object(o)
                if o.get("name") == Some(&Value::String("report.test.counter".into()))
                && o.get("value") == Some(&Value::Number(7.0)))
        }));
        let Some(Value::Array(spans)) = root.get("spans") else { panic!("no spans array") };
        assert!(spans.iter().any(|s| {
            matches!(s, Value::Object(o)
                if o.get("path") == Some(&Value::String("report.test/phase \"quoted\"".into())))
        }));
        let Some(Value::Array(hists)) = root.get("histograms") else {
            panic!("no histograms array")
        };
        assert!(hists.iter().any(|h| {
            matches!(h, Value::Object(o)
                if o.get("sum") == Some(&Value::Number(140.0)))
        }));
        crate::disable();
    }

    #[test]
    fn reset_keeps_cached_handles_alive() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static C: crate::Counter = crate::Counter::new("report.test.reset");
        C.add(5);
        assert_eq!(snapshot().counter("report.test.reset"), Some(5));
        reset();
        assert!(snapshot().counter("report.test.reset").is_none());
        // The cached &'static cell must still be wired to the registry.
        C.add(2);
        assert_eq!(snapshot().counter("report.test.reset"), Some(2));
        crate::disable();
    }
}
