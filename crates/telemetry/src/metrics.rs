//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with atomic hot paths.
//!
//! Metric cells live in a global registry keyed by name and are leaked
//! (`&'static`) so handles can cache a direct pointer: after the first
//! touch, a [`Counter::add`] is one enabled-check plus one relaxed
//! `fetch_add`. Dynamic names ([`counter_add`] and friends) pay one
//! registry lock per call and are meant for cold paths (per-node-kind
//! totals, per-query findings).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit length is `i` (bucket 0 counts zeros), i.e. values in
/// `[2^(i-1), 2^i)`. The last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Number of log-linear duration buckets (see [`BucketLayout::DurationUs`]).
pub const DURATION_BUCKETS: usize = 105;

/// How a histogram maps values to buckets.
///
/// The original [`Pow2`](BucketLayout::Pow2) layout doubles bucket width
/// every bucket, which collapses e.g. the whole 16–32ms latency band
/// into one bucket — useless for `/metrics` quantiles. Duration
/// histograms use [`DurationUs`](BucketLayout::DurationUs): microsecond
/// values bucketed linearly below 16, then four sub-buckets per
/// power-of-two octave (a log-linear layout with ≤25% relative bucket
/// width), overflowing past ~67s into the last bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketLayout {
    /// Bucket `i` counts values of bit length `i` ([`HISTOGRAM_BUCKETS`]
    /// buckets).
    Pow2,
    /// Log-linear microsecond buckets ([`DURATION_BUCKETS`] buckets).
    DurationUs,
}

impl BucketLayout {
    /// Number of buckets under this layout.
    pub fn bucket_count(self) -> usize {
        match self {
            BucketLayout::Pow2 => HISTOGRAM_BUCKETS,
            BucketLayout::DurationUs => DURATION_BUCKETS,
        }
    }

    /// Bucket index of `value` under this layout.
    pub fn bucket_of(self, value: u64) -> usize {
        match self {
            BucketLayout::Pow2 => bucket_of(value),
            BucketLayout::DurationUs => duration_bucket_of(value),
        }
    }

    /// Inclusive upper bound of bucket `i`, or `None` for the overflow
    /// bucket (rendered as `+Inf`).
    pub fn upper_bound(self, i: usize) -> Option<u64> {
        match self {
            BucketLayout::Pow2 => {
                if i + 1 < HISTOGRAM_BUCKETS {
                    Some((1u64 << i) - 1)
                } else {
                    None
                }
            }
            BucketLayout::DurationUs => duration_bucket_upper(i),
        }
    }

    /// Stable name used in the JSON report schema.
    pub fn name(self) -> &'static str {
        match self {
            BucketLayout::Pow2 => "pow2",
            BucketLayout::DurationUs => "duration_us",
        }
    }
}

/// The shared cell backing a histogram.
#[derive(Debug)]
pub struct HistogramCore {
    /// Number of observations.
    pub count: AtomicU64,
    /// Sum of observed values.
    pub sum: AtomicU64,
    /// Bucket mapping (fixed at registration).
    pub layout: BucketLayout,
    /// `layout.bucket_count()` buckets.
    pub buckets: Box<[AtomicU64]>,
}

impl HistogramCore {
    fn new(layout: BucketLayout) -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            layout,
            buckets: (0..layout.bucket_count()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[self.layout.bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Pow2 bucket index of a value: its bit length, clamped to the last
/// bucket.
pub fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Log-linear duration bucket index: values below 16µs get a bucket
/// each; above that, each power-of-two octave `[2^o, 2^(o+1))` splits
/// into 4 equal sub-buckets; values of 2^26 µs (~67s) and beyond land in
/// the overflow bucket.
pub fn duration_bucket_of(value: u64) -> usize {
    if value < 16 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize;
    if octave > 25 {
        return DURATION_BUCKETS - 1;
    }
    16 + (octave - 4) * 4 + ((value >> (octave - 2)) & 3) as usize
}

/// Inclusive upper bound of duration bucket `i` in microseconds, or
/// `None` for the overflow bucket.
pub fn duration_bucket_upper(i: usize) -> Option<u64> {
    if i < 16 {
        Some(i as u64)
    } else if i < DURATION_BUCKETS - 1 {
        let octave = 4 + (i - 16) / 4;
        let sub = ((i - 16) % 4) as u64;
        Some(((5 + sub) << (octave - 2)) - 1)
    } else {
        None
    }
}

pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, &'static AtomicU64>>,
    pub(crate) gauges: Mutex<BTreeMap<String, &'static AtomicU64>>,
    pub(crate) histograms: Mutex<BTreeMap<String, &'static HistogramCore>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn counter_cell(name: &str) -> &'static AtomicU64 {
    let mut map = lock(&registry().counters);
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn gauge_cell(name: &str) -> &'static AtomicU64 {
    let mut map = lock(&registry().gauges);
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn histogram_cell(name: &str, layout: BucketLayout) -> &'static HistogramCore {
    let mut map = lock(&registry().histograms);
    // First registration wins the layout; mixed-layout reuse of one name
    // is a programming error and keeps the original mapping.
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(HistogramCore::new(layout))))
}

/// A named monotonic counter. Declare as a `static` next to the code it
/// measures; the cell is registered on first increment.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A counter handle for `name` (registered lazily).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, cell: OnceLock::new() }
    }

    /// Add `n`. No-op (one load + branch) while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| counter_cell(self.name))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A named last-value gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Gauge {
    /// A gauge handle for `name` (registered lazily).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, cell: OnceLock::new() }
    }

    /// Store `value`. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| gauge_cell(self.name))
            .store(value, Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is larger than the current value.
    #[inline]
    pub fn max(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| gauge_cell(self.name))
            .fetch_max(value, Ordering::Relaxed);
    }
}

/// A named fixed-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    layout: BucketLayout,
    cell: OnceLock<&'static HistogramCore>,
}

impl Histogram {
    /// A power-of-two-bucket histogram handle for `name` (registered
    /// lazily). Good for size-like values spanning many decades.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, layout: BucketLayout::Pow2, cell: OnceLock::new() }
    }

    /// A log-linear duration histogram handle for `name`; observations
    /// are microseconds (see [`BucketLayout::DurationUs`]).
    pub const fn duration_us(name: &'static str) -> Histogram {
        Histogram { name, layout: BucketLayout::DurationUs, cell: OnceLock::new() }
    }

    /// Record one observation. No-op while telemetry is disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| histogram_cell(self.name, self.layout))
            .observe(value);
    }
}

/// Add to a dynamically named counter (cold path: one registry lock).
pub fn counter_add(name: &str, n: u64) {
    if crate::enabled() {
        counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Set a dynamically named gauge (cold path: one registry lock).
pub fn gauge_set(name: &str, value: u64) {
    if crate::enabled() {
        gauge_cell(name).store(value, Ordering::Relaxed);
    }
}

/// Observe into a dynamically named pow2 histogram (cold path: one
/// registry lock).
pub fn histogram_observe(name: &str, value: u64) {
    if crate::enabled() {
        histogram_cell(name, BucketLayout::Pow2).observe(value);
    }
}

/// Observe a microsecond duration into a dynamically named log-linear
/// histogram (cold path: one registry lock).
pub fn duration_observe_us(name: &str, value: u64) {
    if crate::enabled() {
        histogram_cell(name, BucketLayout::DurationUs).observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn duration_buckets_are_contiguous_and_monotonic() {
        // Every value maps into exactly the bucket whose upper bound
        // brackets it: bucket_of(v) is the first bucket with upper ≥ v.
        let mut prev_upper = None;
        for i in 0..DURATION_BUCKETS {
            let upper = duration_bucket_upper(i);
            if let (Some(prev), Some(cur)) = (prev_upper, upper) {
                assert!(cur > prev, "bucket {i}: {cur} ≤ {prev}");
                assert_eq!(duration_bucket_of(prev + 1), i, "lower edge of bucket {i}");
            }
            if let Some(cur) = upper {
                assert_eq!(duration_bucket_of(cur), i, "upper edge of bucket {i}");
            }
            prev_upper = upper;
        }
        assert_eq!(duration_bucket_upper(DURATION_BUCKETS - 1), None);
        assert_eq!(duration_bucket_of(u64::MAX), DURATION_BUCKETS - 1);
    }

    #[test]
    fn duration_buckets_resolve_serve_latency_band() {
        // The power-of-two layout collapsed 17–27ms into two buckets;
        // the log-linear layout keeps them apart with boundaries between.
        let a = duration_bucket_of(17_012);
        let b = duration_bucket_of(27_000);
        assert!(b > a + 1, "17ms→{a}, 27ms→{b}: need ≥1 boundary between");
        // ≤25% relative width: upper/lower ratio of the 17ms bucket.
        let upper = duration_bucket_upper(a).unwrap();
        let lower = duration_bucket_upper(a - 1).unwrap() + 1;
        assert!((upper - lower) * 4 <= lower, "bucket [{lower},{upper}] too wide");
    }

    #[test]
    fn duration_histograms_use_the_duration_layout() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static H: Histogram = Histogram::duration_us("metrics.test.dur");
        H.observe(17_012);
        H.observe(27_000);
        let snap = crate::snapshot();
        let h = snap.histogram("metrics.test.dur").expect("registered");
        assert_eq!(h.layout, BucketLayout::DurationUs);
        assert_eq!(h.buckets.len(), DURATION_BUCKETS);
        assert_eq!(h.count, 2);
        let nonzero = h.buckets.iter().filter(|&&b| b > 0).count();
        assert_eq!(nonzero, 2, "two latencies land in two distinct buckets");
        crate::disable();
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static C: Counter = Counter::new("metrics.test.counter");
        static G: Gauge = Gauge::new("metrics.test.gauge");
        C.add(2);
        C.incr();
        G.set(10);
        G.set(4);
        G.max(9);
        G.max(3);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("metrics.test.counter"), Some(3));
        assert_eq!(snap.gauge("metrics.test.gauge"), Some(9));
        crate::disable();
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static H: Histogram = Histogram::new("metrics.test.hist");
        for v in [0u64, 1, 1, 5, 1000] {
            H.observe(v);
        }
        let snap = crate::snapshot();
        let h = snap.histogram("metrics.test.hist").expect("registered");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.buckets[bucket_of(0)], 1);
        assert_eq!(h.buckets[bucket_of(1)], 2);
        assert_eq!(h.buckets[bucket_of(5)], 1);
        assert_eq!(h.buckets[bucket_of(1000)], 1);
        crate::disable();
    }
}
