//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with atomic hot paths.
//!
//! Metric cells live in a global registry keyed by name and are leaked
//! (`&'static`) so handles can cache a direct pointer: after the first
//! touch, a [`Counter::add`] is one enabled-check plus one relaxed
//! `fetch_add`. Dynamic names ([`counter_add`] and friends) pay one
//! registry lock per call and are meant for cold paths (per-node-kind
//! totals, per-query findings).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit length is `i` (bucket 0 counts zeros), i.e. values in
/// `[2^(i-1), 2^i)`. The last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The shared cell backing a histogram.
#[derive(Debug)]
pub struct HistogramCore {
    /// Number of observations.
    pub count: AtomicU64,
    /// Sum of observed values.
    pub sum: AtomicU64,
    /// Power-of-two buckets (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket index of a value: its bit length, clamped to the last bucket.
pub fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, &'static AtomicU64>>,
    pub(crate) gauges: Mutex<BTreeMap<String, &'static AtomicU64>>,
    pub(crate) histograms: Mutex<BTreeMap<String, &'static HistogramCore>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn counter_cell(name: &str) -> &'static AtomicU64 {
    let mut map = lock(&registry().counters);
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn gauge_cell(name: &str) -> &'static AtomicU64 {
    let mut map = lock(&registry().gauges);
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn histogram_cell(name: &str) -> &'static HistogramCore {
    let mut map = lock(&registry().histograms);
    map.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(HistogramCore::new())))
}

/// A named monotonic counter. Declare as a `static` next to the code it
/// measures; the cell is registered on first increment.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A counter handle for `name` (registered lazily).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, cell: OnceLock::new() }
    }

    /// Add `n`. No-op (one load + branch) while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| counter_cell(self.name))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A named last-value gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Gauge {
    /// A gauge handle for `name` (registered lazily).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, cell: OnceLock::new() }
    }

    /// Store `value`. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| gauge_cell(self.name))
            .store(value, Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is larger than the current value.
    #[inline]
    pub fn max(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| gauge_cell(self.name))
            .fetch_max(value, Ordering::Relaxed);
    }
}

/// A named fixed-bucket histogram (power-of-two buckets).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCore>,
}

impl Histogram {
    /// A histogram handle for `name` (registered lazily).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, cell: OnceLock::new() }
    }

    /// Record one observation. No-op while telemetry is disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell.get_or_init(|| histogram_cell(self.name)).observe(value);
    }
}

/// Add to a dynamically named counter (cold path: one registry lock).
pub fn counter_add(name: &str, n: u64) {
    if crate::enabled() {
        counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Set a dynamically named gauge (cold path: one registry lock).
pub fn gauge_set(name: &str, value: u64) {
    if crate::enabled() {
        gauge_cell(name).store(value, Ordering::Relaxed);
    }
}

/// Observe into a dynamically named histogram (cold path: one registry
/// lock).
pub fn histogram_observe(name: &str, value: u64) {
    if crate::enabled() {
        histogram_cell(name).observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static C: Counter = Counter::new("metrics.test.counter");
        static G: Gauge = Gauge::new("metrics.test.gauge");
        C.add(2);
        C.incr();
        G.set(10);
        G.set(4);
        G.max(9);
        G.max(3);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("metrics.test.counter"), Some(3));
        assert_eq!(snap.gauge("metrics.test.gauge"), Some(9));
        crate::disable();
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        static H: Histogram = Histogram::new("metrics.test.hist");
        for v in [0u64, 1, 1, 5, 1000] {
            H.observe(v);
        }
        let snap = crate::snapshot();
        let h = snap.histogram("metrics.test.hist").expect("registered");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.buckets[bucket_of(0)], 1);
        assert_eq!(h.buckets[bucket_of(1)], 2);
        assert_eq!(h.buckets[bucket_of(5)], 1);
        assert_eq!(h.buckets[bucket_of(1000)], 1);
        crate::disable();
    }
}
