//! Zero-dependency observability substrate for the CCC/CCD pipeline.
//!
//! Three building blocks (DESIGN.md §4d):
//!
//! * **Spans** — hierarchical wall-clock timing with a scoped-guard API:
//!   [`span`] pushes a segment onto a thread-local path stack and the
//!   returned [`SpanGuard`] records `(path, elapsed)` into a global
//!   aggregate on drop. Paths use `/` separators (`ccc/query/Reentrancy`),
//!   so the aggregate forms a tree.
//! * **Metrics** — a global registry of named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket (power-of-two) [`Histogram`]s. Handles cache their
//!   registry slot in a `OnceLock`, so the hot path is one relaxed atomic
//!   add; when telemetry is disabled every operation is a single relaxed
//!   load and branch.
//! * **Reports** — [`snapshot`] freezes the current state into a plain
//!   [`Snapshot`] that renders as a stable JSON document
//!   ([`Snapshot::to_json`], parsed back by [`json::parse`]) or through
//!   `pipeline::report::Table` (see `pipeline::telemetry_report`).
//!
//! # Enablement
//!
//! Telemetry is **off** by default: nothing is recorded and nothing is
//! allocated. It turns on via [`enable`] (the `tables --telemetry` flag
//! does this) or the `TELEMETRY=1` environment variable (picked up by
//! [`init_from_env`]). `TELEMETRY=0` is a hard kill switch: it wins over
//! `enable()`, so `TELEMETRY=0 tables --telemetry` stays silent.
//!
//! ```
//! telemetry::reset();
//! telemetry::enable();
//! static PARSED: telemetry::Counter = telemetry::Counter::new("demo.parsed");
//! {
//!     let _span = telemetry::span("demo/parse");
//!     PARSED.add(3);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.parsed"), Some(3));
//! assert_eq!(snap.span("demo/parse").unwrap().count, 1);
//! telemetry::disable();
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod span;
pub mod trace;

pub use metrics::{
    counter_add, duration_observe_us, gauge_set, histogram_observe, BucketLayout, Counter, Gauge,
    Histogram,
};
pub use report::{reset, snapshot, HistogramStat, Snapshot, SpanStat};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Cached `TELEMETRY=0` kill-switch decision: 0 = environment not read
/// yet, 1 = forced off, 2 = not forced. Cached (rather than re-read per
/// [`enable`]) so the decision is one atomic load after first use, and a
/// plain atomic (rather than a `OnceLock`) so [`reload_env`] can make the
/// override path testable.
static FORCED_OFF: AtomicU8 = AtomicU8::new(0);

fn read_env_forced_off() -> u8 {
    let off = std::env::var("TELEMETRY")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false"))
        .unwrap_or(false);
    if off {
        1
    } else {
        2
    }
}

/// Whether the `TELEMETRY` environment variable forces telemetry off
/// (`0`, `off`, `false`, case-insensitive). Read once, then cached until
/// [`reload_env`].
fn env_forced_off() -> bool {
    match FORCED_OFF.load(Ordering::Acquire) {
        0 => {
            let decided = read_env_forced_off();
            FORCED_OFF.store(decided, Ordering::Release);
            decided == 1
        }
        decided => decided == 1,
    }
}

/// Drop the cached kill-switch decision and re-read `TELEMETRY` from the
/// environment. Test hook: production processes read the environment
/// once; tests use this to exercise the `TELEMETRY=0` override without
/// spawning a subprocess. Force-disables immediately if the kill switch
/// is now active.
pub fn reload_env() {
    FORCED_OFF.store(read_env_forced_off(), Ordering::Release);
    if env_forced_off() {
        disable();
        trace::set_enabled(false);
    }
}

/// Turn telemetry on, unless `TELEMETRY=0` forces it off.
pub fn enable() {
    if !env_forced_off() {
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Turn telemetry off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether telemetry is currently recording. This is the hot-path check:
/// a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Apply the `TELEMETRY` environment variable: `1`/`on`/`true` enables,
/// anything else leaves the current state (and `0` force-disables via the
/// kill switch). Binaries call this once at startup; libraries never do.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("TELEMETRY") {
        if matches!(v.to_ascii_lowercase().as_str(), "1" | "on" | "true") {
            enable();
        }
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Telemetry state is process-global; tests that toggle it serialize
    /// through this lock so `cargo test`'s parallel runner cannot
    /// interleave enable/disable windows.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default_and_everything_is_a_noop() {
        let _guard = test_lock::hold();
        disable();
        reset();
        static C: Counter = Counter::new("lib.noop");
        C.add(41);
        gauge_set("lib.noop_gauge", 7);
        histogram_observe("lib.noop_hist", 3);
        let _span = span("lib/noop");
        drop(_span);
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "{snap:?}");
        assert!(snap.gauges.is_empty(), "{snap:?}");
        assert!(snap.histograms.is_empty(), "{snap:?}");
        assert!(snap.spans.is_empty(), "{snap:?}");
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _guard = test_lock::hold();
        disable();
        assert!(!enabled());
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn kill_switch_wins_over_enable_and_is_resettable() {
        let _guard = test_lock::hold();
        disable();
        std::env::set_var("TELEMETRY", "0");
        reload_env();
        enable();
        assert!(!enabled(), "TELEMETRY=0 must win over enable()");
        init_from_env();
        assert!(!enabled(), "TELEMETRY=0 must win over init_from_env()");
        std::env::remove_var("TELEMETRY");
        reload_env();
        enable();
        assert!(enabled(), "cleared kill switch re-arms enable()");
        disable();
    }
}
