//! Hierarchical wall-clock spans with a scoped-guard API.
//!
//! [`span`] pushes a path segment onto a thread-local stack and returns a
//! [`SpanGuard`]; when the guard drops, the elapsed time is folded into a
//! global per-path aggregate (`count`, `total_ns`). Nesting builds `/`
//! separated paths: a span `"query/Reentrancy"` opened while `"ccc"` is
//! active records under `"ccc/query/Reentrancy"`, so the aggregate forms
//! the run's span tree. Threads spawned mid-span (e.g. `par_map` workers)
//! start with an empty stack: their spans record under their own root,
//! which keeps the guard API lock-free on entry and safe under any
//! interleaving.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanAgg {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
}

pub(crate) fn spans() -> MutexGuard<'static, BTreeMap<String, SpanAgg>> {
    static SPANS: OnceLock<Mutex<BTreeMap<String, SpanAgg>>> = OnceLock::new();
    SPANS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Scoped span guard: records the elapsed wall-clock time under the
/// current thread's span path when dropped. Created inert (no allocation,
/// no recording) while telemetry is disabled.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Open a span named `name`. Segments may themselves contain `/` to group
/// statically (`"ccc/query/Reentrancy"`). Returns an inert guard while
/// telemetry is disabled — the only cost is one atomic load.
pub fn span(name: impl AsRef<str>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|stack| stack.borrow_mut().push(name.as_ref().to_string()));
    SpanGuard { start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut map = spans();
        let agg = map.entry(path).or_default();
        agg.count += 1;
        agg.total_ns += elapsed_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_slash_paths() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        {
            let _outer = span("span_test.outer");
            let _inner = span("inner");
        }
        {
            let _outer = span("span_test.outer");
        }
        let snap = crate::snapshot();
        let outer = snap.span("span_test.outer").expect("outer recorded");
        assert_eq!(outer.count, 2);
        let inner = snap.span("span_test.outer/inner").expect("inner recorded");
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        crate::disable();
    }

    #[test]
    fn guard_is_inert_when_disabled_at_open() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::disable();
        let g = span("span_test.inert");
        // Enabling after the guard was created must not record anything:
        // the stack was never pushed.
        crate::enable();
        drop(g);
        let snap = crate::snapshot();
        assert!(snap.span("span_test.inert").is_none(), "{snap:?}");
        crate::disable();
    }
}
