//! Prometheus text exposition (format 0.0.4) for the metrics registry —
//! the `GET /metrics` document.
//!
//! The registry's flat metric names map onto Prometheus names and labels
//! by convention: a name of the form `base|k=v|k2=v2` renders as
//! `base{k="v",k2="v2"}` (the server's RED metrics use this to label per
//! endpoint and status class), and every non-`[a-zA-Z0-9_:]` character
//! in a name, label key or label value position is mangled to `_`
//! (values keep their text, only escaped). Counters get the canonical
//! `_total` suffix; histograms render cumulative `_bucket{le=...}`
//! series from their [`BucketLayout`] upper bounds plus `_sum`/`_count`;
//! span aggregates are exported as `telemetry_span_count` /
//! `telemetry_span_total_ns` labeled by path.
//!
//! Empty histogram buckets are skipped (cumulative values stay correct;
//! `+Inf` is always present), which keeps the 105-bucket duration
//! histograms compact on the wire.
//!
//! [`validate`] is a strict-enough checker for the subset this module
//! emits — CI smokes and unit tests run every exposition through it.

use crate::report::Snapshot;

/// Split a registry name on the `|k=v` label convention.
fn split_labels(name: &str) -> (String, Vec<(String, String)>) {
    let mut parts = name.split('|');
    let base = mangle(parts.next().unwrap_or(""));
    let mut labels = Vec::new();
    for part in parts {
        match part.split_once('=') {
            Some((k, v)) => labels.push((mangle(k), v.to_string())),
            // A malformed segment becomes a value under a stable key
            // rather than corrupting the exposition.
            None => labels.push(("label".to_string(), part.to_string())),
        }
    }
    (base, labels)
}

/// Mangle a name into the Prometheus name charset `[a-zA-Z0-9_:]`
/// (leading digits get an underscore prefix).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn labels_with(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    render_labels(&all)
}

/// One metric family being accumulated: TYPE line first, then samples.
struct Family {
    out: String,
    typed: std::collections::BTreeSet<String>,
}

impl Family {
    fn type_line(&mut self, base: &str, kind: &str) {
        if self.typed.insert(base.to_string()) {
            self.out.push_str(&format!("# TYPE {base} {kind}\n"));
        }
    }
}

/// Parsed label pairs of one series.
type Labels = Vec<(String, String)>;

/// Render a frozen [`Snapshot`] as a Prometheus text exposition
/// document.
pub fn render(snapshot: &Snapshot) -> String {
    let mut fam = Family { out: String::with_capacity(8192), typed: Default::default() };

    // Group samples by base name so all series of one family sit under
    // one TYPE line (the format requires family contiguity).
    let mut counters: Vec<(String, Labels, u64)> = snapshot
        .counters
        .iter()
        .map(|(name, value)| {
            let (base, labels) = split_labels(name);
            (base, labels, *value)
        })
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut i = 0;
    while i < counters.len() {
        let base = counters[i].0.clone();
        fam.type_line(&format!("{base}_total"), "counter");
        while i < counters.len() && counters[i].0 == base {
            let (_, labels, value) = &counters[i];
            fam.out
                .push_str(&format!("{base}_total{} {value}\n", render_labels(labels)));
            i += 1;
        }
    }

    let mut gauges: Vec<(String, Labels, u64)> = snapshot
        .gauges
        .iter()
        .map(|(name, value)| {
            let (base, labels) = split_labels(name);
            (base, labels, *value)
        })
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut i = 0;
    while i < gauges.len() {
        let base = gauges[i].0.clone();
        fam.type_line(&base, "gauge");
        while i < gauges.len() && gauges[i].0 == base {
            let (_, labels, value) = &gauges[i];
            fam.out.push_str(&format!("{base}{} {value}\n", render_labels(labels)));
            i += 1;
        }
    }

    let mut hists: Vec<(String, Labels, &crate::HistogramStat)> = snapshot
        .histograms
        .iter()
        .map(|h| {
            let (base, labels) = split_labels(&h.name);
            (base, labels, h)
        })
        .collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    let mut i = 0;
    while i < hists.len() {
        let base = hists[i].0.clone();
        fam.type_line(&base, "histogram");
        while i < hists.len() && hists[i].0 == base {
            let (_, labels, h) = &hists[i];
            let mut cumulative = 0u64;
            for (idx, &count) in h.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let le = match h.layout.upper_bound(idx) {
                    Some(upper) => upper.to_string(),
                    None => "+Inf".to_string(),
                };
                if le != "+Inf" {
                    fam.out.push_str(&format!(
                        "{base}_bucket{} {cumulative}\n",
                        labels_with(labels, "le", &le)
                    ));
                }
            }
            fam.out.push_str(&format!(
                "{base}_bucket{} {}\n",
                labels_with(labels, "le", "+Inf"),
                h.count
            ));
            fam.out
                .push_str(&format!("{base}_sum{} {}\n", render_labels(labels), h.sum));
            fam.out
                .push_str(&format!("{base}_count{} {}\n", render_labels(labels), h.count));
            i += 1;
        }
    }

    if !snapshot.spans.is_empty() {
        fam.type_line("telemetry_span_count", "counter");
        for s in &snapshot.spans {
            fam.out.push_str(&format!(
                "telemetry_span_count_total{} {}\n",
                labels_with(&[], "path", &s.path),
                s.count
            ));
        }
        fam.type_line("telemetry_span_total_ns", "counter");
        for s in &snapshot.spans {
            fam.out.push_str(&format!(
                "telemetry_span_total_ns_total{} {}\n",
                labels_with(&[], "path", &s.path),
                s.total_ns
            ));
        }
    }

    fam.out
}

/// Validate a text exposition document against the subset of format
/// 0.0.4 this module emits: well-formed sample/comment lines, `# TYPE`
/// declared before any sample of its family, monotone non-decreasing
/// cumulative `_bucket` series per labelset, and `le="+Inf"` equal to
/// `_count`. Returns the first problem found.
pub fn validate(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, labels-minus-le) → (last cumulative, last le as f64, inf seen)
    let mut bucket_state: BTreeMap<String, (u64, f64, Option<u64>)> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or(format!("line {n}: TYPE without name"))?;
                let kind = parts.next().ok_or(format!("line {n}: TYPE without kind"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: unknown TYPE kind {kind}"));
                }
                types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        let (name_and_labels, value) = split_sample(line)
            .ok_or(format!("line {n}: malformed sample line: {line:?}"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (name_and_labels, None),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {n}: non-numeric value {value:?}"))?;
        // Family = name minus the histogram/counter suffix used for TYPE.
        let family = ["_bucket", "_sum", "_count", "_total"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .filter(|f| types.contains_key(*f))
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {n}: sample {name} before its # TYPE line"));
        }
        let labels = labels.unwrap_or("");
        if !labels.is_empty() {
            validate_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
        }
        if let Some(family) = name.strip_suffix("_bucket") {
            let (le, rest_labels) = extract_le(labels)
                .ok_or(format!("line {n}: _bucket sample without le label"))?;
            let key = format!("{family}{{{rest_labels}}}");
            let cumulative = parsed as u64;
            let le_num = if le == "+Inf" { f64::INFINITY } else { le.parse().map_err(|_| format!("line {n}: bad le {le:?}"))? };
            let entry = bucket_state.entry(key).or_insert((0, f64::NEG_INFINITY, None));
            if le_num <= entry.1 {
                return Err(format!("line {n}: le values not increasing"));
            }
            if cumulative < entry.0 {
                return Err(format!("line {n}: cumulative bucket counts decreased"));
            }
            entry.0 = cumulative;
            entry.1 = le_num;
            if le == "+Inf" {
                entry.2 = Some(cumulative);
            }
        } else if let Some(family) = name.strip_suffix("_count") {
            if types.get(family).map(String::as_str) == Some("histogram") {
                counts.insert(format!("{family}{{{labels}}}"), parsed as u64);
            }
        }
    }
    // Every histogram labelset's +Inf bucket must equal its _count.
    for (key, (_, _, inf)) in &bucket_state {
        let inf = inf.ok_or(format!("{key}: no +Inf bucket"))?;
        // Reconstruct the _count key: same family+labels.
        if let Some(count) = counts.get(key) {
            if *count != inf {
                return Err(format!("{key}: +Inf bucket {inf} != count {count}"));
            }
        }
    }
    Ok(())
}

/// Split a sample line into (name-with-labels, value). Labels may
/// contain spaces inside quoted values, so scan for the closing brace.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let split_at = match line.find('{') {
        Some(open) => {
            let mut in_quotes = false;
            let mut close = None;
            for (i, c) in line[open..].char_indices() {
                match c {
                    '"' if !line[..open + i].ends_with('\\') => in_quotes = !in_quotes,
                    '}' if !in_quotes => {
                        close = Some(open + i);
                        break;
                    }
                    _ => {}
                }
            }
            close? + 1
        }
        None => line.find(' ')?,
    };
    let (head, tail) = line.split_at(split_at);
    let value = tail.trim();
    // A sample may carry a trailing timestamp; take the first token.
    let value = value.split_whitespace().next()?;
    if value.is_empty() {
        return None;
    }
    Some((head, value))
}

fn validate_labels(labels: &str) -> Result<(), String> {
    // Parse k="v" pairs separated by commas; values may contain escaped
    // quotes and commas inside quotes.
    let mut rest = labels;
    loop {
        let (key, after_key) = rest
            .split_once('=')
            .ok_or(format!("label segment without '=': {rest:?}"))?;
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(format!("invalid label name {key:?}"));
        }
        let after_key = after_key
            .strip_prefix('"')
            .ok_or(format!("unquoted label value after {key}"))?;
        // Find the closing unescaped quote.
        let mut end = None;
        let mut prev_backslash = false;
        for (i, c) in after_key.char_indices() {
            match c {
                '\\' => prev_backslash = !prev_backslash,
                '"' if !prev_backslash => {
                    end = Some(i);
                    break;
                }
                _ => prev_backslash = false,
            }
        }
        let end = end.ok_or(format!("unterminated label value for {key}"))?;
        rest = &after_key[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or(format!("junk after label value: {rest:?}"))?;
    }
}

/// Pull the `le` label out of a label string, returning (le value,
/// remaining labels joined back).
fn extract_le(labels: &str) -> Option<(String, String)> {
    let mut le = None;
    let mut rest = Vec::new();
    for part in split_label_pairs(labels) {
        match part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            Some(v) => le = Some(v.to_string()),
            None => rest.push(part),
        }
    }
    Some((le?, rest.join(",")))
}

/// Split a label string on commas outside quotes.
fn split_label_pairs(labels: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut prev_backslash = false;
    for c in labels.chars() {
        match c {
            '"' if !prev_backslash => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            c => {
                prev_backslash = c == '\\' && !prev_backslash;
                current.push(c);
            }
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HistogramStat;
    use crate::{BucketLayout, Snapshot, SpanStat};

    fn sample_snapshot() -> Snapshot {
        let mut buckets = vec![0u64; crate::metrics::DURATION_BUCKETS];
        buckets[crate::metrics::duration_bucket_of(17_012)] = 3;
        buckets[crate::metrics::duration_bucket_of(27_000)] = 2;
        buckets[crate::metrics::DURATION_BUCKETS - 1] = 1;
        Snapshot {
            spans: vec![SpanStat { path: "ccc/query/Reentrancy".into(), count: 4, total_ns: 99 }],
            counters: vec![
                ("api.requests".into(), 10),
                ("http.requests|endpoint=/v1/scan|status=2xx".into(), 7),
                ("http.requests|endpoint=/v1/scan|status=4xx".into(), 1),
            ],
            gauges: vec![("pool.workers".into(), 8)],
            histograms: vec![HistogramStat {
                name: "http.request_duration_us|endpoint=/v1/scan".into(),
                count: 6,
                sum: 130_036,
                layout: BucketLayout::DurationUs,
                buckets,
            }],
        }
    }

    #[test]
    fn renders_labeled_families_and_validates() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE http_requests_total counter"), "{text}");
        assert!(
            text.contains("http_requests_total{endpoint=\"/v1/scan\",status=\"2xx\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE http_request_duration_us histogram"), "{text}");
        assert!(
            text.contains("http_request_duration_us_bucket{endpoint=\"/v1/scan\",le=\"+Inf\"} 6"),
            "{text}"
        );
        assert!(
            text.contains("http_request_duration_us_sum{endpoint=\"/v1/scan\"} 130036"),
            "{text}"
        );
        assert!(text.contains("pool_workers 8"), "{text}");
        assert!(
            text.contains("telemetry_span_count_total{path=\"ccc/query/Reentrancy\"} 4"),
            "{text}"
        );
        validate(&text).expect("emitted exposition validates");
    }

    #[test]
    fn bucket_series_are_cumulative() {
        let text = render(&sample_snapshot());
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("http_request_duration_us_bucket") {
                let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(value >= last, "{line}");
                last = value;
                bucket_lines += 1;
            }
        }
        // Two non-empty finite buckets + overflow merged into +Inf.
        assert_eq!(bucket_lines, 3, "{text}");
        assert_eq!(last, 6);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("foo_total 1\n").is_err(), "sample before TYPE");
        assert!(validate("# TYPE foo counter\nfoo_total x\n").is_err(), "bad value");
        assert!(validate("# TYPE foo counter\n9foo_total 1\n").is_err(), "bad name");
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"5\"} 4\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 4\n")
                .is_err(),
            "decreasing cumulative buckets"
        );
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"5\"} 4\nh_sum 9\nh_count 4\n").is_err(),
            "missing +Inf"
        );
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 4\n").is_err(),
            "+Inf != count"
        );
    }

    #[test]
    fn validate_accepts_the_live_registry_render() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        crate::enable();
        crate::counter_add("prom.test.hits|endpoint=/x", 2);
        crate::gauge_set("prom.test.depth", 5);
        crate::duration_observe_us("prom.test.lat|endpoint=/x", 17_012);
        crate::histogram_observe("prom.test.sizes", 1024);
        let text = render(&crate::snapshot());
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("prom_test_hits_total{endpoint=\"/x\"} 2"), "{text}");
        crate::disable();
    }
}
