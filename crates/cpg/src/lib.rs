//! Code property graph for Solidity snippets and contracts.
//!
//! A code property graph (CPG) is a directed attributed graph representing
//! source code: nodes embody syntactic elements, edges carry semantics
//! (cf. §2.3 of the paper):
//!
//! * **Syntax** — the AST forms the node structure, connected by role-typed
//!   `AST` edges (`LHS`, `CONDITION`, `ARGUMENTS`, ...).
//! * **Order** — `EOG` edges model evaluation order and control flow,
//!   including the Solidity-specific `Rollback` termination semantics of
//!   `require`/`revert`/`throw` (§4.2.1).
//! * **Data flow** — `DFG` edges model how data is transferred and
//!   processed, including the indirect flows needed by the vulnerability
//!   queries (§4.2.3).
//!
//! The translation accepts *incomplete* snippets: missing outer contract or
//! function declarations are complemented with inferred declarations, and
//! unresolved identifiers become inferred fields (§4.2). Modifier
//! applications are expanded into function bodies (§4.2.2).
//!
//! ```
//! use cpg::Cpg;
//!
//! let cpg = Cpg::from_snippet("if (msg.sender == owner) {}").unwrap();
//! // The snippet's `owner` resolves to an inferred field declaration.
//! assert!(cpg.graph.node_count() > 4);
//! ```


#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod expand;
pub mod graph;
pub mod kinds;

pub use builder::{BuildOptions, Cpg};
pub use graph::{Edge, Graph, Node, NodeId, Props};
pub use solidity::AnalysisError;
pub use kinds::{AstRole, EdgeKind, NodeKind};
