//! Translation of (snippet) ASTs into the code property graph.
//!
//! The builder performs, in order (cf. §4.2 of the paper):
//!
//! 1. **Declaration pass** — records, fields, function headers, parameters,
//!    events, structs and enums are declared so that forward references and
//!    inter-procedural edges can resolve.
//! 2. **Inference** — free-standing functions and statements of a snippet
//!    are wrapped into inferred (`isInferred = true`) record / function
//!    declarations, and unresolved identifiers become inferred fields.
//! 3. **Modifier expansion** — applied modifiers are inlined into function
//!    bodies (§4.2.2, implemented in [`crate::expand`]).
//! 4. **Body pass** — statements and expressions are translated to nodes
//!    with syntax (`AST` role) edges while **EOG** (evaluation order) and
//!    **DFG** (data flow) edges are wired inline, including the Solidity
//!    specific `Rollback` semantics of `require`/`revert`/`throw` (§4.2.1).
//! 5. **Call resolution** — `INVOKES`, argument→parameter `DFG` and
//!    `RETURNS` edges are added for calls resolvable within the unit.

use crate::expand::{collect_modifiers, expand_modifiers};
use crate::graph::{Graph, NodeId, Props};
use crate::kinds::{AstRole, EdgeKind, NodeKind};
use intern::{intern_fmt, sym, FxHashMap, Symbol};
use solidity::ast::*;
use solidity::printer;
use solidity::Span;
use std::collections::BTreeMap;

/// Translation options.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Expand applied modifiers into function bodies (§4.2.2). On by
    /// default; disabling it is the DESIGN.md ablation showing that
    /// access-control queries need the expansion to see modifier guards.
    pub expand_modifiers: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { expand_modifiers: true }
    }
}

/// A translated code property graph plus its root.
#[derive(Debug, Clone)]
pub struct Cpg {
    /// The graph.
    pub graph: Graph,
    /// The `TranslationUnit` root node.
    pub unit: NodeId,
}

impl Cpg {
    /// Parse `src` tolerantly as a snippet and translate it.
    pub fn from_snippet(src: &str) -> Result<Cpg, solidity::AnalysisError> {
        let unit = solidity::parse_snippet(src)?;
        Self::check_build_fault()?;
        Ok(Cpg::from_unit(&unit))
    }

    /// Parse `src` with the standard grammar and translate it.
    pub fn from_source(src: &str) -> Result<Cpg, solidity::AnalysisError> {
        let unit = solidity::parse_source(src)?;
        Self::check_build_fault()?;
        Ok(Cpg::from_unit(&unit))
    }

    /// Chaos-testing hook: the `cpg/build` injection point (no-op unless a
    /// fault plan is active, see `faultinject`).
    fn check_build_fault() -> Result<(), solidity::AnalysisError> {
        match faultinject::fire("cpg/build") {
            Some(message) => Err(solidity::AnalysisError::GraphBuild { message }),
            None => Ok(()),
        }
    }

    /// Translate an already parsed source unit.
    pub fn from_unit(unit: &SourceUnit) -> Cpg {
        Cpg::from_unit_with(unit, BuildOptions::default())
    }

    /// Translate with explicit options.
    pub fn from_unit_with(unit: &SourceUnit, options: BuildOptions) -> Cpg {
        static BUILDS: telemetry::Counter = telemetry::Counter::new("cpg.builds");
        static NODES: telemetry::Counter = telemetry::Counter::new("cpg.nodes");
        static EDGES: telemetry::Counter = telemetry::Counter::new("cpg.edges");
        static INFERRED: telemetry::Counter = telemetry::Counter::new("cpg.inferred_decls");
        let _span = telemetry::span("cpg/build");
        let _stage = telemetry::trace::stage("cpg-build");
        let cpg = Builder::new(unit, options).build(unit);
        telemetry::trace::annotate("nodes", cpg.graph.node_count());
        if telemetry::enabled() {
            BUILDS.incr();
            NODES.add(cpg.graph.node_count() as u64);
            EDGES.add(cpg.graph.edge_count() as u64);
            let inferred = cpg
                .graph
                .node_ids()
                .filter(|id| cpg.graph.node(*id).props.is_inferred)
                .count();
            INFERRED.add(inferred as u64);
            for id in cpg.graph.node_ids() {
                telemetry::counter_add(
                    &format!("cpg.nodes.{:?}", cpg.graph.node(id).kind),
                    1,
                );
            }
        }
        cpg
    }

    /// Whether the unit is compiled with Solidity >= 0.8 (checked
    /// arithmetic), derived from its pragma.
    pub fn solidity_08(&self) -> bool {
        self.graph
            .node(self.unit)
            .props
            .extra
            .get("solidity08")
            .map(|v| v == "true")
            .unwrap_or(false)
    }

    /// Whether any record of the unit pulls in a SafeMath-style library via
    /// `using ... for ...` or inherits from one.
    pub fn uses_safemath(&self) -> bool {
        self.graph
            .node(self.unit)
            .props
            .extra
            .get("safemath")
            .map(|v| v == "true")
            .unwrap_or(false)
    }
}

/// Evaluation-order fragment of a translated construct: its first node and
/// the set of nodes a successor must be linked from.
#[derive(Debug, Clone, Default)]
struct Frag {
    entry: Option<NodeId>,
    exits: Exits,
}

impl Frag {
    fn empty() -> Frag {
        Frag::default()
    }

    fn single(node: NodeId) -> Frag {
        Frag { entry: Some(node), exits: Exits::one(node) }
    }

    /// A fragment that starts somewhere but never continues (revert/return).
    fn terminal(node: NodeId) -> Frag {
        Frag { entry: Some(node), exits: Exits::default() }
    }
}

/// Exit set of a [`Frag`]. Straight-line fragments have exactly one exit
/// and an if/else join has two, so the first two live inline; only
/// pathological fan-outs (long if/else-if chains, try/catch with many
/// clauses) spill to the heap. Keeping the common cases allocation-free
/// matters: one fragment is built per translated statement and expression.
#[derive(Debug, Clone)]
struct Exits {
    inline: [NodeId; 2],
    len: u8,
    spill: Vec<NodeId>,
}

impl Default for Exits {
    fn default() -> Exits {
        Exits { inline: [NodeId(0); 2], len: 0, spill: Vec::new() }
    }
}

impl Exits {
    fn one(node: NodeId) -> Exits {
        Exits { inline: [node, NodeId(0)], len: 1, spill: Vec::new() }
    }

    fn push(&mut self, node: NodeId) {
        match self.len {
            0 | 1 => {
                self.inline[self.len as usize] = node;
                self.len += 1;
            }
            _ => self.spill.push(node),
        }
    }

    /// Move every exit of `other` into `self`.
    fn append(&mut self, other: Exits) {
        for node in other.iter() {
            self.push(node);
        }
    }

    fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inline[..self.len as usize].iter().copied().chain(self.spill.iter().copied())
    }
}

/// A translated expression: its value node, evaluation fragment and — for
/// lvalues — the declaration ultimately written through it.
struct EValue {
    node: NodeId,
    frag: Frag,
    decl: Option<NodeId>,
}

#[derive(Debug)]
struct RecordCtx {
    name: Symbol,
    node: NodeId,
    bases: Vec<Symbol>,
    fields: FxHashMap<Symbol, NodeId>,
    methods: FxHashMap<Symbol, NodeId>,
}

struct PendingCall {
    call: NodeId,
    record: Option<usize>,
    name: Symbol,
    args: Vec<NodeId>,
}

struct Builder<'u> {
    g: Graph,
    unit_node: NodeId,
    modifiers: FxHashMap<Symbol, &'u ModifierDef>,
    records: Vec<RecordCtx>,
    record_index: FxHashMap<Symbol, usize>,
    free_functions: FxHashMap<Symbol, NodeId>,
    fn_params: FxHashMap<NodeId, Vec<NodeId>>,
    fn_returns: FxHashMap<NodeId, Vec<NodeId>>,
    pending_calls: Vec<PendingCall>,
    /// Lexical scopes for locals/params during body translation.
    scopes: Vec<FxHashMap<Symbol, NodeId>>,
    /// Cleared scope maps kept for reuse: entering a block or loop scope
    /// recycles a table instead of allocating a fresh one.
    scope_pool: Vec<FxHashMap<Symbol, NodeId>>,
    /// Return statements of the function body currently being translated.
    current_returns: Vec<NodeId>,
    current_record: Option<usize>,
    in_unchecked: bool,
    options: BuildOptions,
}

const BUILTIN_BASES: &[&str] = &["msg", "tx", "block", "abi", "super", "type"];

/// Callee names that are unresolved builtins rather than user functions.
const BUILTIN_CALLS: &[&str] = &[
    "require",
    "assert",
    "revert",
    "selfdestruct",
    "suicide",
    "keccak256",
    "sha3",
    "sha256",
    "ripemd160",
    "ecrecover",
    "addmod",
    "mulmod",
    "blockhash",
    "gasleft",
];

impl<'u> Builder<'u> {
    fn new(unit: &'u SourceUnit, options: BuildOptions) -> Builder<'u> {
        let mut g = Graph::new();
        // Ballpark from the study corpus: ~2.5 nodes and ~4 edges per
        // source-unit AST item statement; a flat floor covers snippets.
        g.reserve(256, 512);
        g.set_line_index(std::sync::Arc::clone(&unit.line_index));
        let mut extra = BTreeMap::new();

        // Pragma-derived unit facts, used by the Arithmetic detector to
        // recognize the >= 0.8 checked-arithmetic mitigation.
        let mut pragma_value = Symbol::default();
        let mut safemath = false;
        for item in &unit.items {
            match item {
                SourceItem::Pragma(p) if p.name == "solidity" => {
                    pragma_value = p.value;
                }
                SourceItem::UsingFor(u) if u.library.to_lowercase().contains("safemath") => {
                    safemath = true;
                }
                SourceItem::Contract(c) => {
                    for part in &c.parts {
                        if let ContractPart::UsingFor(u) = part {
                            if u.library.to_lowercase().contains("safemath") {
                                safemath = true;
                            }
                        }
                    }
                    for base in &c.bases {
                        if base.name.to_lowercase().contains("safemath") {
                            safemath = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !pragma_value.is_empty() {
            extra.insert(sym::PRAGMA, pragma_value);
        }
        extra.insert(
            sym::SOLIDITY08,
            if pragma_is_08(&pragma_value) { sym::TRUE } else { sym::FALSE },
        );
        extra.insert(sym::SAFEMATH, if safemath { sym::TRUE } else { sym::FALSE });

        let unit_node = g.add_node(
            NodeKind::TranslationUnit,
            Props { code: "<unit>".into(), extra, ..Props::default() },
            Span::DUMMY,
        );
        Builder {
            g,
            unit_node,
            modifiers: collect_modifiers(unit),
            records: Vec::new(),
            record_index: FxHashMap::default(),
            free_functions: FxHashMap::default(),
            fn_params: FxHashMap::default(),
            fn_returns: FxHashMap::default(),
            pending_calls: Vec::new(),
            scopes: Vec::new(),
            scope_pool: Vec::new(),
            current_returns: Vec::new(),
            current_record: None,
            in_unchecked: false,
            options,
        }
    }

    fn build(mut self, unit: &'u SourceUnit) -> Cpg {
        // ---- Phase 1: declarations ---------------------------------------
        let mut inferred_record: Option<usize> = None;
        let mut free_items: Vec<&SourceItem> = Vec::new();
        // Contract → its record index; robust against same-named contracts
        // in one unit (the name-based index keeps the last one only).
        let mut declared: Vec<(usize, &ContractDef)> = Vec::new();
        for item in &unit.items {
            match item {
                SourceItem::Contract(c) => {
                    let idx = self.declare_record(c);
                    declared.push((idx, c));
                }
                SourceItem::Struct(s) => {
                    self.declare_struct(s, self.unit_node);
                }
                SourceItem::Enum(e) => {
                    self.declare_enum(e, self.unit_node);
                }
                SourceItem::Event(e) => {
                    self.declare_event(e, self.unit_node);
                }
                SourceItem::Function(_)
                | SourceItem::Modifier(_)
                | SourceItem::Variable(_)
                | SourceItem::Statement(_) => free_items.push(item),
                _ => {}
            }
        }

        // ---- Phase 2: inference of missing outer declarations -------------
        if !free_items.is_empty() {
            let idx = self.infer_record();
            inferred_record = Some(idx);
            // Declare inferred fields and function headers first.
            for item in &free_items {
                match item {
                    SourceItem::Variable(v) => {
                        let field = self.declare_field(v, self.records[idx].node, false);
                        self.records[idx].fields.insert(v.name, field);
                    }
                    SourceItem::Function(f) => {
                        let node = self.declare_function(f, idx, false);
                        if let Some(name) = f.name {
                            self.records[idx].methods.insert(name, node);
                        }
                    }
                    SourceItem::Modifier(m) => {
                        self.declare_modifier(m, self.records[idx].node);
                    }
                    _ => {}
                }
            }
        }


        // ---- Phase 3+4: bodies --------------------------------------------
        for (idx, c) in &declared {
            self.translate_record_bodies(c, *idx);
        }
        if let Some(idx) = inferred_record {
            self.translate_inferred_bodies(&free_items, idx);
        }


        // ---- Phase 5: call resolution --------------------------------------
        self.resolve_calls();

        Cpg { graph: self.g, unit: self.unit_node }
    }

    // ===== declarations ====================================================

    fn declare_record(&mut self, c: &ContractDef) -> usize {
        let kind_str = match c.kind {
            ContractKind::Contract | ContractKind::AbstractContract => "contract",
            ContractKind::Interface => "interface",
            ContractKind::Library => "library",
        };
        let node = self.g.add_node(
            NodeKind::RecordDeclaration,
            Props {
                code: intern_fmt(format_args!("{} {}", c.kind.as_str(), c.name)),
                local_name: c.name,
                record_kind: Some(kind_str.into()),
                ..Props::default()
            },
            c.span,
        );
        self.g.add_edge(self.unit_node, EdgeKind::Ast(AstRole::Declarations), node);
        let mut ctx = RecordCtx {
            name: c.name,
            node,
            bases: c.bases.iter().map(|b| b.name).collect(),
            fields: FxHashMap::default(),
            methods: FxHashMap::default(),
        };

        for part in &c.parts {
            match part {
                ContractPart::Variable(v) => {
                    let field = self.declare_field(v, node, false);
                    ctx.fields.insert(v.name, field);
                }
                ContractPart::Struct(s) => {
                    self.declare_struct(s, node);
                }
                ContractPart::Enum(e) => {
                    self.declare_enum(e, node);
                }
                ContractPart::Event(e) => {
                    self.declare_event(e, node);
                }
                ContractPart::Modifier(m) => {
                    self.declare_modifier(m, node);
                }
                _ => {}
            }
        }

        let idx = self.records.len();
        self.record_index.insert(c.name, idx);
        self.records.push(ctx);

        // Function headers need the record context registered first.
        for part in &c.parts {
            if let ContractPart::Function(f) = part {
                let legacy_ctor = f.name == Some(c.name);
                let fnode = self.declare_function(f, idx, legacy_ctor);
                if let Some(name) = f.name {
                    if !legacy_ctor {
                        self.records[idx].methods.insert(name, fnode);
                    }
                }
            }
        }
        idx
    }

    fn infer_record(&mut self) -> usize {
        let node = self.g.add_node(
            NodeKind::RecordDeclaration,
            Props {
                code: "contract <inferred>".into(),
                local_name: "<inferred>".into(),
                record_kind: Some("contract".into()),
                is_inferred: true,
                ..Props::default()
            },
            Span::DUMMY,
        );
        self.g.add_edge(self.unit_node, EdgeKind::Ast(AstRole::Declarations), node);
        let idx = self.records.len();
        self.record_index.insert("<inferred>".into(), idx);
        self.records.push(RecordCtx {
            name: "<inferred>".into(),
            node,
            bases: vec![],
            fields: FxHashMap::default(),
            methods: FxHashMap::default(),
        });
        idx
    }

    fn declare_field(&mut self, v: &StateVarDecl, record: NodeId, inferred: bool) -> NodeId {
        let field = self.g.add_node(
            NodeKind::FieldDeclaration,
            Props {
                code: intern_fmt(format_args!("{} {}", printer::print_type(&v.ty), v.name)),
                local_name: v.name,
                ty: Some(Symbol::intern(&v.ty.canonical())),
                visibility: v.visibility.map(|vis| Symbol::intern(vis.as_str())),
                is_inferred: inferred,
                extra: [(
                    sym::CONSTANT,
                    if v.is_constant || v.is_immutable { sym::TRUE } else { sym::FALSE },
                )]
                .into(),
                ..Props::default()
            },
            v.span,
        );
        self.g.add_edge(record, EdgeKind::Ast(AstRole::Fields), field);
        field
    }

    fn declare_function(&mut self, f: &FunctionDef, record: usize, legacy_ctor: bool) -> NodeId {
        let is_ctor = legacy_ctor || f.kind == FunctionKind::Constructor;
        let kind = if is_ctor {
            NodeKind::ConstructorDeclaration
        } else {
            NodeKind::FunctionDeclaration
        };
        let local_name = if is_ctor || f.is_default_function() {
            Symbol::default()
        } else {
            f.name.unwrap_or_default()
        };
        let fn_kind = match f.kind {
            _ if is_ctor => "constructor",
            FunctionKind::Receive => "receive",
            FunctionKind::Fallback => "fallback",
            _ if f.name.is_none() => "fallback",
            _ => "function",
        };
        let mut extra: BTreeMap<Symbol, Symbol> =
            [(sym::FN_KIND, Symbol::intern(fn_kind))].into();
        if let Some(m) = f.mutability {
            extra.insert(sym::MUTABILITY, Symbol::intern(m.as_str()));
        }
        if !f.modifiers.is_empty() {
            extra.insert(
                sym::MODIFIERS,
                Symbol::intern(&f.modifiers.iter().map(|m| m.name).collect::<Vec<_>>().join(",")),
            );
        }
        let node = self.g.add_node(
            kind,
            Props {
                code: signature_sym(f),
                local_name,
                visibility: f.visibility.map(|v| Symbol::intern(v.as_str())),
                extra,
                ..Props::default()
            },
            f.span,
        );
        let role = if is_ctor { AstRole::Constructors } else { AstRole::Methods };
        let record_node = self.records[record].node;
        self.g.add_edge(record_node, EdgeKind::Ast(role), node);

        let mut params = Vec::new();
        for (i, p) in f.params.iter().enumerate() {
            let pnode = self.g.add_node(
                NodeKind::ParamVariableDeclaration,
                Props {
                    code: param_code(p),
                    local_name: p.name.unwrap_or_default(),
                    ty: Some(Symbol::intern(&p.ty.canonical())),
                    index: Some(i),
                    ..Props::default()
                },
                p.span,
            );
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Parameters), pnode);
            params.push(pnode);
        }
        self.fn_params.insert(node, params);
        node
    }

    fn declare_modifier(&mut self, m: &ModifierDef, record: NodeId) -> NodeId {
        let node = self.g.add_node(
            NodeKind::ModifierDeclaration,
            Props {
                code: intern_fmt(format_args!("modifier {}", m.name)),
                local_name: m.name,
                ..Props::default()
            },
            m.span,
        );
        self.g.add_edge(record, EdgeKind::Ast(AstRole::Declarations), node);
        node
    }

    fn declare_struct(&mut self, s: &StructDef, parent: NodeId) -> NodeId {
        let node = self.g.add_node(
            NodeKind::RecordDeclaration,
            Props {
                code: intern_fmt(format_args!("struct {}", s.name)),
                local_name: s.name,
                record_kind: Some("struct".into()),
                ..Props::default()
            },
            s.span,
        );
        self.g.add_edge(parent, EdgeKind::Ast(AstRole::Declarations), node);
        for field in &s.fields {
            let fnode = self.g.add_node(
                NodeKind::FieldDeclaration,
                Props {
                    code: Symbol::intern(
                        &(printer::print_type(&field.ty)
                            + &field.name.map(|n| format!(" {n}")).unwrap_or_default()),
                    ),
                    local_name: field.name.unwrap_or_default(),
                    ty: Some(Symbol::intern(&field.ty.canonical())),
                    ..Props::default()
                },
                field.span,
            );
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Fields), fnode);
        }
        node
    }

    fn declare_enum(&mut self, e: &EnumDef, parent: NodeId) -> NodeId {
        let node = self.g.add_node(
            NodeKind::EnumDeclaration,
            Props {
                code: intern_fmt(format_args!("enum {}", e.name)),
                local_name: e.name,
                ..Props::default()
            },
            e.span,
        );
        self.g.add_edge(parent, EdgeKind::Ast(AstRole::Declarations), node);
        node
    }

    fn declare_event(&mut self, e: &EventDef, parent: NodeId) -> NodeId {
        let node = self.g.add_node(
            NodeKind::EventDeclaration,
            Props {
                code: intern_fmt(format_args!("event {}", e.name)),
                local_name: e.name,
                ..Props::default()
            },
            e.span,
        );
        self.g.add_edge(parent, EdgeKind::Ast(AstRole::Declarations), node);
        node
    }

    // ===== bodies ==========================================================

    fn translate_record_bodies(&mut self, c: &ContractDef, idx: usize) {
        self.current_record = Some(idx);
        for part in &c.parts {
            if let ContractPart::Function(f) = part {
                let legacy_ctor = f.name.as_deref() == Some(&c.name);
                let fnode = self.lookup_declared_function(idx, f, legacy_ctor);
                self.translate_function_body(f, fnode, idx);
            }
            if let ContractPart::Variable(v) = part {
                // Field initializers produce data flow into the field.
                if let Some(init) = &v.initializer {
                    let field = self.records[idx].fields[&v.name];
                    self.enter_scope();
                    let value = self.expr(init, false);
                    self.leave_scope();
                    self.g.add_edge(value.node, EdgeKind::Dfg, field);
                    self.g.add_edge(field, EdgeKind::Ast(AstRole::Initializer), value.node);
                }
            }
        }
        self.current_record = None;
    }

    fn translate_inferred_bodies(&mut self, free_items: &[&SourceItem], idx: usize) {
        self.current_record = Some(idx);
        // Bare statements are collected into one inferred function.
        let mut bare: Vec<Statement> = Vec::new();
        for item in free_items {
            match item {
                SourceItem::Function(f) => {
                    let fnode = self.lookup_declared_function(idx, f, false);
                    self.translate_function_body(f, fnode, idx);
                }
                SourceItem::Statement(s) => bare.push((*s).clone()),
                SourceItem::Variable(v) => {
                    if let Some(init) = &v.initializer {
                        let field = self.records[idx].fields[&v.name];
                        self.enter_scope();
                        let value = self.expr(init, false);
                        self.leave_scope();
                        self.g.add_edge(value.node, EdgeKind::Dfg, field);
                        self.g.add_edge(field, EdgeKind::Ast(AstRole::Initializer), value.node);
                    }
                }
                _ => {}
            }
        }
        if !bare.is_empty() {
            let f = FunctionDef {
                kind: FunctionKind::Function,
                name: Some("<snippet>".into()),
                params: vec![],
                returns: vec![],
                visibility: Some(Visibility::Public),
                mutability: None,
                is_virtual: false,
                is_override: false,
                modifiers: vec![],
                body: Some(Block {
                    statements: bare,
                    span: Span::DUMMY,
                }),
                span: Span::DUMMY,
            };
            let fnode = self.declare_function(&f, idx, false);
            self.g.node_mut(fnode).props.is_inferred = true;
            self.records[idx].methods.insert("<snippet>".into(), fnode);
            self.translate_function_body(&f, fnode, idx);
        }
        self.current_record = None;
    }

    fn lookup_declared_function(&mut self, idx: usize, f: &FunctionDef, legacy_ctor: bool) -> NodeId {
        // Headers were declared in source order; find by name + kind.
        let record_node = self.records[idx].node;
        let is_ctor = legacy_ctor || f.kind == FunctionKind::Constructor;
        let role = if is_ctor { AstRole::Constructors } else { AstRole::Methods };
        let declared = self
            .g
            .ast_children_role(record_node, role)
            .find(|n| self.g.node(*n).span == f.span);
        match declared {
            Some(node) => node,
            // A body whose phase-1 header is missing (span drift on
            // malformed input) gets a fresh inferred header so the body
            // is still translated instead of aborting the whole build.
            None => {
                let node = self.declare_function(f, idx, legacy_ctor);
                self.g.node_mut(node).props.is_inferred = true;
                node
            }
        }
    }

    fn translate_function_body(&mut self, f: &FunctionDef, fnode: NodeId, record: usize) {
        // `expand_modifiers` borrows the body when no modifier applies, so
        // the common case clones nothing. Temporarily moving the modifier
        // map out of `self` sidesteps the simultaneous `&mut self` borrow
        // below without copying a single definition.
        let modifiers = std::mem::take(&mut self.modifiers);
        let body = if self.options.expand_modifiers {
            expand_modifiers(f, &modifiers)
        } else {
            f.body.as_ref().map(std::borrow::Cow::Borrowed)
        };
        self.modifiers = modifiers;
        let Some(body) = body else {
            return;
        };
        // Anything collected outside a function body (e.g. a stray return
        // in a translated modifier body) must not leak into this function.
        self.current_returns.clear();
        // Scope: parameters (and named returns).
        let mut param_scope = FxHashMap::default();
        for (p, pnode) in f.params.iter().zip(&self.fn_params[&fnode]) {
            if let Some(name) = &p.name {
                param_scope.insert(*name, *pnode);
            }
        }
        for r in &f.returns {
            if let Some(name) = &r.name {
                let rnode = self.g.add_node(
                    NodeKind::VariableDeclaration,
                    Props {
                        code: intern_fmt(format_args!("{} {}", printer::print_type(&r.ty), name)),
                        local_name: *name,
                        ty: Some(Symbol::intern(&r.ty.canonical())),
                        ..Props::default()
                    },
                    r.span,
                );
                self.g.add_edge(fnode, EdgeKind::Ast(AstRole::ReturnTypes), rnode);
                param_scope.insert(*name, rnode);
            }
        }
        self.scopes.push(param_scope);
        let _ = record;

        let body_node = self.g.add_node(
            NodeKind::Block,
            Props { code: "{...}".into(), ..Props::default() },
            body.span,
        );
        self.g.add_edge(fnode, EdgeKind::Ast(AstRole::Body), body_node);

        let frag = self.block_stmts(&body.statements, body_node);
        if let Some(entry) = frag.entry {
            self.g.add_edge(fnode, EdgeKind::Eog, entry);
        }
        self.leave_scope();

        // Remember return statements for RETURNS edges; they were
        // collected while translating, sparing a full subtree walk.
        let returns = std::mem::take(&mut self.current_returns);
        self.fn_returns.insert(fnode, returns);
    }

    /// Translate a statement list under `parent`, chaining EOG.
    /// Enter a fresh lexical scope, recycling a cleared map if available.
    fn enter_scope(&mut self) {
        let map = self.scope_pool.pop().unwrap_or_default();
        self.scopes.push(map);
    }

    /// Leave the innermost scope, returning its map to the pool.
    fn leave_scope(&mut self) {
        if let Some(mut map) = self.scopes.pop() {
            map.clear();
            self.scope_pool.push(map);
        }
    }

    fn block_stmts(&mut self, stmts: &[Statement], parent: NodeId) -> Frag {
        self.enter_scope();
        let mut frag = Frag::empty();
        for s in stmts {
            let sfrag = self.stmt(s, parent);
            frag = self.seq(frag, sfrag);
        }
        self.leave_scope();
        frag
    }

    /// Link `prev`'s exits to `next`'s entry; result covers both.
    fn seq(&mut self, prev: Frag, next: Frag) -> Frag {
        match (prev.entry, next.entry) {
            (None, _) => next,
            (_, None) => prev,
            (Some(_), Some(next_entry)) => {
                for exit in prev.exits.iter() {
                    self.g.add_edge(exit, EdgeKind::Eog, next_entry);
                }
                Frag { entry: prev.entry, exits: next.exits }
            }
        }
    }

    // ===== statements =======================================================

    fn stmt(&mut self, s: &Statement, parent: NodeId) -> Frag {
        match &s.kind {
            StatementKind::Block(b) => {
                let node = self.add_stmt_node(NodeKind::Block, "{...}", s.span, parent);
                self.block_stmts_under(b, node)
            }
            StatementKind::Unchecked(b) => {
                let node = self.add_stmt_node(NodeKind::UncheckedBlock, "unchecked", s.span, parent);
                let saved = self.in_unchecked;
                self.in_unchecked = true;
                let frag = self.block_stmts_under(b, node);
                self.in_unchecked = saved;
                frag
            }
            StatementKind::If { cond, then, alt } => {
                let node = self.add_stmt_node(NodeKind::IfStatement, "if", s.span, parent);
                let cond_v = self.expr(cond, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Condition), cond_v.node);
                self.g.add_edge(cond_v.node, EdgeKind::Dfg, node);
                // EOG: condition evaluates, then branches at the IF node.
                let cond_frag = self.seq(cond_v.frag, Frag::single(node));

                let then_frag = self.stmt(then, node);
                if let Some(then_entry_node) = then_frag.entry {
                    self.g.add_edge(node, EdgeKind::Ast(AstRole::Then), then_entry_node);
                }
                let mut exits = Exits::default();
                if let Some(entry) = then_frag.entry {
                    self.g.add_edge(node, EdgeKind::Eog, entry);
                    exits.append(then_frag.exits);
                } else {
                    exits.push(node);
                }
                match alt {
                    Some(alt_stmt) => {
                        let alt_frag = self.stmt(alt_stmt, node);
                        if let Some(entry) = alt_frag.entry {
                            self.g.add_edge(node, EdgeKind::Ast(AstRole::Else), entry);
                            self.g.add_edge(node, EdgeKind::Eog, entry);
                            exits.append(alt_frag.exits);
                        } else {
                            exits.push(node);
                        }
                    }
                    None => exits.push(node),
                }
                Frag { entry: cond_frag.entry, exits }
            }
            StatementKind::While { cond, body } => {
                let node = self.add_stmt_node(NodeKind::WhileStatement, "while", s.span, parent);
                self.loop_frag(node, Some(cond), None, None, body)
            }
            StatementKind::DoWhile { body, cond } => {
                let node = self.add_stmt_node(NodeKind::DoStatement, "do", s.span, parent);
                // Body runs at least once, then conditions loop back.
                let body_frag = self.stmt(body, node);
                let cond_v = self.expr(cond, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Condition), cond_v.node);
                self.g.add_edge(cond_v.node, EdgeKind::Dfg, node);
                let frag = self.seq(body_frag, cond_v.frag);
                let frag = self.seq(frag, Frag::single(node));
                // Back edge to the body.
                if let (Some(entry), true) = (frag.entry, frag.entry.is_some()) {
                    self.g.add_edge(node, EdgeKind::Eog, entry);
                }
                frag
            }
            StatementKind::For { init, cond, update, body } => {
                let node = self.add_stmt_node(NodeKind::ForStatement, "for", s.span, parent);
                self.enter_scope();
                let init_frag = match init {
                    Some(init) => self.stmt(init, node),
                    None => Frag::empty(),
                };
                let frag = self.loop_frag(node, cond.as_ref(), Some(init_frag), update.as_ref(), body);
                self.leave_scope();
                frag
            }
            StatementKind::Expression(e) => {
                let v = self.expr_under(e, parent, false);
                v.frag
            }
            StatementKind::VariableDecl { parts, value } => {
                let mut frag = Frag::empty();
                let value_v = value.as_ref().map(|v| self.expr_under(v, parent, false));
                if let Some(v) = &value_v {
                    frag = self.seq(frag, v.frag.clone());
                }
                for part in parts {
                    let code = match &part.ty {
                        Some(ty) => format!(
                            "{}{} {}",
                            printer::print_type(ty),
                            part.storage.map(|st| format!(" {}", st.as_str())).unwrap_or_default(),
                            part.name
                        ),
                        None => format!("var {}", part.name),
                    };
                    let decl = self.g.add_node(
                        NodeKind::VariableDeclaration,
                        Props {
                            code: Symbol::intern(&code),
                            local_name: part.name,
                            ty: part.ty.as_ref().map(|t| Symbol::intern(&t.canonical())),
                            extra: part
                                .storage
                                .map(|st| {
                                    [(Symbol::intern("storage"), Symbol::intern(st.as_str()))]
                                        .into()
                                })
                                .unwrap_or_default(),
                            ..Props::default()
                        },
                        part.span,
                    );
                    self.g.add_edge(parent, EdgeKind::Ast(AstRole::Statements), decl);
                    // A declaration outside any open scope (malformed
                    // nesting) opens one instead of aborting the build.
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.insert(part.name, decl);
                    } else {
                        self.scopes.push(FxHashMap::from_iter([(part.name, decl)]));
                    }
                    if let Some(v) = &value_v {
                        self.g.add_edge(v.node, EdgeKind::Dfg, decl);
                        self.g.add_edge(decl, EdgeKind::Ast(AstRole::Initializer), v.node);
                    }
                    frag = self.seq(frag, Frag::single(decl));
                }
                frag
            }
            StatementKind::Return(value) => {
                let node = self.add_stmt_node(NodeKind::ReturnStatement, "return", s.span, parent);
                self.current_returns.push(node);
                let mut frag = Frag::empty();
                if let Some(value) = value {
                    let v = self.expr(value, false);
                    self.g.add_edge(node, EdgeKind::Ast(AstRole::Value), v.node);
                    self.g.add_edge(v.node, EdgeKind::Dfg, node);
                    frag = self.seq(frag, v.frag);
                }
                frag = self.seq(frag, Frag::terminal(node));
                frag
            }
            StatementKind::Emit(call) => {
                let node = self.add_stmt_node(
                    NodeKind::EmitStatement,
                    &format!("emit {}", call.code()),
                    s.span,
                    parent,
                );
                let mut frag = Frag::empty();
                if let ExprKind::Call { args, .. } = &call.kind {
                    for arg in args {
                        let v = self.expr(arg, false);
                        self.g.add_edge(node, EdgeKind::Ast(AstRole::Arguments), v.node);
                        self.g.add_edge(v.node, EdgeKind::Dfg, node);
                        frag = self.seq(frag, v.frag);
                    }
                }
                self.seq(frag, Frag::single(node))
            }
            StatementKind::Revert(arg) => {
                let mut frag = Frag::empty();
                if let Some(arg) = arg {
                    let v = self.expr(arg, false);
                    frag = self.seq(frag, v.frag);
                }
                let node = self.g.add_node(
                    NodeKind::Rollback,
                    Props { code: "revert".into(), local_name: "revert".into(), ..Props::default() },
                    s.span,
                );
                self.g.add_edge(parent, EdgeKind::Ast(AstRole::Statements), node);
                self.seq(frag, Frag::terminal(node))
            }
            StatementKind::Throw => {
                let node = self.g.add_node(
                    NodeKind::Rollback,
                    Props { code: "throw".into(), local_name: "throw".into(), ..Props::default() },
                    s.span,
                );
                self.g.add_edge(parent, EdgeKind::Ast(AstRole::Statements), node);
                Frag::terminal(node)
            }
            StatementKind::Break => {
                let node = self.add_stmt_node(NodeKind::BreakStatement, "break", s.span, parent);
                Frag::terminal(node)
            }
            StatementKind::Continue => {
                let node =
                    self.add_stmt_node(NodeKind::ContinueStatement, "continue", s.span, parent);
                Frag::terminal(node)
            }
            StatementKind::ModifierPlaceholder => {
                // Only reachable when a modifier body is translated without
                // expansion (orphan snippet) — treat as a no-op placeholder.
                let node =
                    self.add_stmt_node(NodeKind::PlaceholderStatement, "_", s.span, parent);
                Frag::single(node)
            }
            StatementKind::Ellipsis => {
                let node =
                    self.add_stmt_node(NodeKind::PlaceholderStatement, "...", s.span, parent);
                Frag::single(node)
            }
            StatementKind::Assembly(text) => {
                let node = self.add_stmt_node(
                    NodeKind::AssemblyBlock,
                    &format!("assembly {{ {text} }}"),
                    s.span,
                    parent,
                );
                Frag::single(node)
            }
            StatementKind::Try { expr, success, catches } => {
                let node = self.add_stmt_node(NodeKind::TryStatement, "try", s.span, parent);
                let guarded = self.expr(expr, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Condition), guarded.node);
                let frag = self.seq(guarded.frag, Frag::single(node));
                let mut exits = Exits::default();
                let success_frag = self.block_stmts_under(success, node);
                if let Some(entry) = success_frag.entry {
                    self.g.add_edge(node, EdgeKind::Eog, entry);
                    exits.append(success_frag.exits);
                } else {
                    exits.push(node);
                }
                for c in catches {
                    let cfrag = self.block_stmts_under(c, node);
                    if let Some(entry) = cfrag.entry {
                        self.g.add_edge(node, EdgeKind::Eog, entry);
                        exits.append(cfrag.exits);
                    } else {
                        exits.push(node);
                    }
                }
                Frag { entry: frag.entry, exits }
            }
        }
    }

    fn block_stmts_under(&mut self, b: &Block, node: NodeId) -> Frag {
        let inner = self.block_stmts(&b.statements, node);
        match inner.entry {
            Some(_) => inner,
            None => Frag::single(node),
        }
    }

    fn loop_frag(
        &mut self,
        node: NodeId,
        cond: Option<&Expr>,
        init: Option<Frag>,
        update: Option<&Expr>,
        body: &Statement,
    ) -> Frag {
        // EOG shape: init → cond → LOOP → body → update → cond (cycle).
        let cond_frag = match cond {
            Some(cond) => {
                let v = self.expr(cond, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Condition), v.node);
                self.g.add_edge(v.node, EdgeKind::Dfg, node);
                v.frag
            }
            None => Frag::empty(),
        };
        let cond_entry = cond_frag.entry;
        let head = self.seq(cond_frag, Frag::single(node));

        let body_frag = self.stmt(body, node);
        let update_frag = match update {
            Some(update) => {
                let v = self.expr(update, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Update), v.node);
                v.frag
            }
            None => Frag::empty(),
        };
        let tail = self.seq(body_frag, update_frag);
        if let Some(entry) = tail.entry {
            self.g.add_edge(node, EdgeKind::Eog, entry);
            // Back edge closing the loop cycle.
            let back_target = cond_entry.unwrap_or(node);
            for exit in tail.exits.iter() {
                self.g.add_edge(exit, EdgeKind::Eog, back_target);
            }
        } else {
            // Empty body: self-cycle through the condition.
            let back_target = cond_entry.unwrap_or(node);
            self.g.add_edge(node, EdgeKind::Eog, back_target);
        }

        let whole = match init {
            Some(init_frag) => self.seq(init_frag, head),
            None => head,
        };
        Frag { entry: whole.entry, exits: Exits::one(node) }
    }

    fn add_stmt_node(&mut self, kind: NodeKind, code: &str, span: Span, parent: NodeId) -> NodeId {
        let node = self.g.add_node(
            kind,
            Props { code: code.into(), ..Props::default() },
            span,
        );
        self.g.add_edge(parent, EdgeKind::Ast(AstRole::Statements), node);
        node
    }

    // ===== expressions ======================================================

    fn expr_under(&mut self, e: &Expr, parent: NodeId, write: bool) -> EValue {
        let v = self.expr(e, write);
        self.g.add_edge(parent, EdgeKind::Ast(AstRole::Statements), v.node);
        v
    }

    fn expr(&mut self, e: &Expr, write: bool) -> EValue {
        match &e.kind {
            ExprKind::Literal(lit) => {
                let (code, value) = match lit {
                    Lit::Number { value, unit } => (
                        match unit {
                            Some(u) => intern_fmt(format_args!("{value} {u}")),
                            None => *value,
                        },
                        *value,
                    ),
                    Lit::Str(s) => (intern_fmt(format_args!("\"{s}\"")), *s),
                    Lit::Bool(b) => {
                        let s = if *b { sym::TRUE } else { sym::FALSE };
                        (s, s)
                    }
                    Lit::Hex(h) => (intern_fmt(format_args!("hex\"{h}\"")), *h),
                };
                let ty = match lit {
                    Lit::Number { .. } => "uint256",
                    Lit::Str(_) => "string",
                    Lit::Bool(_) => "bool",
                    Lit::Hex(_) => "bytes",
                };
                let node = self.g.add_node(
                    NodeKind::Literal,
                    Props {
                        code,
                        value: Some(value),
                        ty: Some(ty.into()),
                        ..Props::default()
                    },
                    e.span,
                );
                EValue { node, frag: Frag::single(node), decl: None }
            }
            ExprKind::Ident(name) => self.ident_ref(*name, e.span, write),
            ExprKind::Member { .. } => self.member(e, write),
            ExprKind::Index { base, index } => {
                let base_v = self.expr(base, write);
                let node = self.g.add_node(
                    NodeKind::SubscriptExpression,
                    Props {
                        code: e.code_sym(),
                        local_name: base_v_local(&self.g, base_v.node),
                        ty: element_type(self.g.node(base_v.node).props.ty.as_deref()),
                        ..Props::default()
                    },
                    e.span,
                );
                self.g.add_edge(node, EdgeKind::Ast(AstRole::ArrayExpression), base_v.node);
                let mut frag = base_v.frag;
                if let Some(index) = index {
                    let idx_v = self.expr(index, false);
                    self.g
                        .add_edge(node, EdgeKind::Ast(AstRole::SubscriptExpression), idx_v.node);
                    self.g.add_edge(idx_v.node, EdgeKind::Dfg, node);
                    frag = self.seq(frag, idx_v.frag);
                }
                if write {
                    // Writing through a subscript writes the collection.
                    if let Some(decl) = base_v.decl {
                        self.g.add_edge(node, EdgeKind::Dfg, decl);
                    }
                } else {
                    self.g.add_edge(base_v.node, EdgeKind::Dfg, node);
                }
                let frag = self.seq(frag, Frag::single(node));
                EValue { node, frag, decl: base_v.decl }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs_v = self.expr(lhs, false);
                let rhs_v = self.expr(rhs, false);
                let ty = if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    Some(Symbol::intern("bool"))
                } else {
                    self.g.node(lhs_v.node).props.ty
                };
                let mut extra = BTreeMap::new();
                if self.in_unchecked {
                    extra.insert(sym::UNCHECKED, sym::TRUE);
                }
                let node = self.g.add_node(
                    NodeKind::BinaryOperator,
                    Props {
                        code: e.code_sym(),
                        operator_code: Some(op.as_str().into()),
                        ty,
                        extra,
                        ..Props::default()
                    },
                    e.span,
                );
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Lhs), lhs_v.node);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Rhs), rhs_v.node);
                self.g.add_edge(lhs_v.node, EdgeKind::Dfg, node);
                self.g.add_edge(rhs_v.node, EdgeKind::Dfg, node);
                let frag = self.seq(lhs_v.frag, rhs_v.frag);
                let frag = self.seq(frag, Frag::single(node));
                EValue { node, frag, decl: None }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let rhs_v = self.expr(rhs, false);
                let lhs_v = self.expr(lhs, true);
                let mut extra = BTreeMap::new();
                if self.in_unchecked {
                    extra.insert(sym::UNCHECKED, sym::TRUE);
                }
                let node = self.g.add_node(
                    NodeKind::BinaryOperator,
                    Props {
                        code: e.code_sym(),
                        operator_code: Some(op.as_str().into()),
                        ty: self.g.node(lhs_v.node).props.ty,
                        extra,
                        ..Props::default()
                    },
                    e.span,
                );
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Lhs), lhs_v.node);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Rhs), rhs_v.node);
                // Data flows: value → operator → target → declaration.
                self.g.add_edge(rhs_v.node, EdgeKind::Dfg, node);
                self.g.add_edge(node, EdgeKind::Dfg, lhs_v.node);
                if let Some(decl) = lhs_v.decl {
                    self.g.add_edge(lhs_v.node, EdgeKind::Dfg, decl);
                    if *op != AssignOp::Assign {
                        // Compound assignment also reads the target.
                        self.g.add_edge(decl, EdgeKind::Dfg, node);
                    }
                }
                // Evaluation order: Solidity evaluates RHS first.
                let frag = self.seq(rhs_v.frag, lhs_v.frag);
                let frag = self.seq(frag, Frag::single(node));
                EValue { node, frag, decl: lhs_v.decl }
            }
            ExprKind::Unary { op, prefix, operand } => {
                let is_write = matches!(op, UnOp::Inc | UnOp::Dec | UnOp::Delete);
                let operand_v = self.expr(operand, is_write);
                let node = self.g.add_node(
                    NodeKind::UnaryOperator,
                    Props {
                        code: e.code_sym(),
                        operator_code: Some(op.as_str().into()),
                        ty: self.g.node(operand_v.node).props.ty,
                        extra: [(
                            sym::PREFIX,
                            if *prefix { sym::TRUE } else { sym::FALSE },
                        )]
                        .into(),
                        ..Props::default()
                    },
                    e.span,
                );
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Input), operand_v.node);
                self.g.add_edge(operand_v.node, EdgeKind::Dfg, node);
                if is_write {
                    self.g.add_edge(node, EdgeKind::Dfg, operand_v.node);
                    if let Some(decl) = operand_v.decl {
                        self.g.add_edge(operand_v.node, EdgeKind::Dfg, decl);
                        self.g.add_edge(decl, EdgeKind::Dfg, node);
                    }
                }
                let frag = self.seq(operand_v.frag, Frag::single(node));
                EValue { node, frag, decl: operand_v.decl }
            }
            ExprKind::Ternary { cond, then, alt } => {
                let cond_v = self.expr(cond, false);
                let then_v = self.expr(then, false);
                let alt_v = self.expr(alt, false);
                let node = self.g.add_node(
                    NodeKind::ConditionalExpression,
                    Props {
                        code: e.code_sym(),
                        ty: self.g.node(then_v.node).props.ty,
                        ..Props::default()
                    },
                    e.span,
                );
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Condition), cond_v.node);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Then), then_v.node);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Else), alt_v.node);
                self.g.add_edge(cond_v.node, EdgeKind::Dfg, node);
                self.g.add_edge(then_v.node, EdgeKind::Dfg, node);
                self.g.add_edge(alt_v.node, EdgeKind::Dfg, node);
                let frag = self.seq(cond_v.frag, then_v.frag);
                let frag = self.seq(frag, alt_v.frag);
                let frag = self.seq(frag, Frag::single(node));
                EValue { node, frag, decl: None }
            }
            ExprKind::Call { .. } => self.call(e),
            ExprKind::Tuple(entries) => {
                let node = self.g.add_node(
                    NodeKind::TupleExpression,
                    Props { code: e.code_sym(), ..Props::default() },
                    e.span,
                );
                let mut frag = Frag::empty();
                for entry in entries.iter().flatten() {
                    let v = self.expr(entry, write);
                    self.g.add_edge(node, EdgeKind::Ast(AstRole::Arguments), v.node);
                    self.g.add_edge(v.node, EdgeKind::Dfg, node);
                    frag = self.seq(frag, v.frag);
                }
                let frag = self.seq(frag, Frag::single(node));
                EValue { node, frag, decl: None }
            }
            ExprKind::New(ty) => {
                let node = self.g.add_node(
                    NodeKind::NewExpression,
                    Props {
                        code: e.code_sym(),
                        local_name: Symbol::intern(&ty.canonical()),
                        ty: Some(Symbol::intern(&ty.canonical())),
                        ..Props::default()
                    },
                    e.span,
                );
                EValue { node, frag: Frag::single(node), decl: None }
            }
            ExprKind::ElementaryType(name) => {
                // Bare type mention; calls through it become casts in call().
                let node = self.g.add_node(
                    NodeKind::DeclaredReferenceExpression,
                    Props {
                        code: *name,
                        local_name: *name,
                        ty: Some(*name),
                        ..Props::default()
                    },
                    e.span,
                );
                EValue { node, frag: Frag::single(node), decl: None }
            }
            ExprKind::Ellipsis => {
                let node = self.g.add_node(
                    NodeKind::PlaceholderStatement,
                    Props { code: "...".into(), ..Props::default() },
                    e.span,
                );
                EValue { node, frag: Frag::single(node), decl: None }
            }
        }
    }

    /// Resolve an identifier reference against the scope stack; unresolved
    /// non-builtin names become inferred field declarations (§4.2).
    fn ident_ref(&mut self, name: Symbol, span: Span, write: bool) -> EValue {
        // `now` is an alias of `block.timestamp`; normalize so queries match.
        if name == "now" {
            let node = self.g.add_node(
                NodeKind::MemberExpression,
                Props {
                    code: "block.timestamp".into(),
                    local_name: "timestamp".into(),
                    ty: Some("uint256".into()),
                    ..Props::default()
                },
                span,
            );
            return EValue { node, frag: Frag::single(node), decl: None };
        }

        let decl = self.lookup(name);
        let decl = match decl {
            Some(d) => Some(d),
            None if is_builtin_name(&name) => None,
            None => Some(self.infer_field(name, span)),
        };
        let ty = decl.and_then(|d| self.g.node(d).props.ty).or_else(|| {
            if name == "this" {
                self.current_record.map(|idx| self.records[idx].name)
            } else {
                None
            }
        });
        let node = self.g.add_node(
            NodeKind::DeclaredReferenceExpression,
            Props { code: name, local_name: name, ty, ..Props::default() },
            span,
        );
        if let Some(decl) = decl {
            self.g.add_edge(node, EdgeKind::RefersTo, decl);
            if write {
                self.g.add_edge(node, EdgeKind::Dfg, decl);
            } else {
                self.g.add_edge(decl, EdgeKind::Dfg, node);
            }
        }
        EValue { node, frag: Frag::single(node), decl }
    }

    fn lookup(&self, name: Symbol) -> Option<NodeId> {
        for scope in self.scopes.iter().rev() {
            if let Some(decl) = scope.get(&name) {
                return Some(*decl);
            }
        }
        // Record fields, including inherited ones.
        let mut record = self.current_record;
        let mut hops = 0;
        while let Some(idx) = record {
            if let Some(field) = self.records[idx].fields.get(&name) {
                return Some(*field);
            }
            record = self.records[idx]
                .bases
                .iter()
                .find_map(|b| self.record_index.get(b).copied());
            hops += 1;
            if hops > 16 {
                break; // inheritance cycle in a malformed snippet
            }
        }
        None
    }

    fn infer_field(&mut self, name: Symbol, span: Span) -> NodeId {
        let idx = match self.current_record {
            Some(idx) => idx,
            None => self.infer_record(),
        };
        let record_node = self.records[idx].node;
        let field = self.g.add_node(
            NodeKind::FieldDeclaration,
            Props {
                code: name,
                local_name: name,
                is_inferred: true,
                ..Props::default()
            },
            span,
        );
        self.g.add_edge(record_node, EdgeKind::Ast(AstRole::Fields), field);
        self.records[idx].fields.insert(name, field);
        field
    }

    fn member(&mut self, e: &Expr, write: bool) -> EValue {
        let ExprKind::Member { base, member } = &e.kind else {
            // Only Member expressions are dispatched here; a drift in the
            // dispatch degrades to an opaque leaf node, not a panic.
            let node = self.g.add_node(
                NodeKind::MemberExpression,
                Props { code: e.code_sym(), ..Props::default() },
                e.span,
            );
            return EValue { node, frag: Frag::single(node), decl: None };
        };

        // Builtin member chains (`msg.sender`, `block.timestamp`,
        // `msg.data.length`) become single member nodes with the full code,
        // matching Figure 2 and the Appendix B query patterns.
        let code = e.code_sym();
        // Collapse only genuine builtin chains: `msg.sender`, `tx.origin`,
        // `block.timestamp`, and the two-level `msg.data.length`. A member
        // access *on* a builtin value (`msg.sender.call`) keeps its base so
        // call sites retain their BASE edge.
        let base_is_builtin = matches!(&base.kind, ExprKind::Ident(b) if BUILTIN_BASES.contains(&b.as_str()) && self.lookup(*b).is_none())
            || code == "msg.data.length";
        if base_is_builtin {
            let ty = builtin_member_type(&code);
            let node = self.g.add_node(
                NodeKind::MemberExpression,
                Props {
                    code,
                    local_name: *member,
                    ty: ty.map(Symbol::intern),
                    ..Props::default()
                },
                e.span,
            );
            return EValue { node, frag: Frag::single(node), decl: None };
        }

        let base_v = self.expr(base, false);
        // First-match semantics of the old (base, member) table: `balance`
        // and `length` resolve to uint256 regardless of base; nothing else
        // infers a type here.
        let ty = match member.as_str() {
            "balance" | "length" => Some(Symbol::intern("uint256")),
            _ => None,
        };
        let node = self.g.add_node(
            NodeKind::MemberExpression,
            Props { code, local_name: *member, ty, ..Props::default() },
            e.span,
        );
        self.g.add_edge(node, EdgeKind::Ast(AstRole::Base), base_v.node);
        if write {
            if let Some(decl) = base_v.decl {
                self.g.add_edge(node, EdgeKind::Dfg, decl);
            }
        } else {
            self.g.add_edge(base_v.node, EdgeKind::Dfg, node);
        }
        let frag = self.seq(base_v.frag, Frag::single(node));
        EValue { node, frag, decl: base_v.decl }
    }

    fn call(&mut self, e: &Expr) -> EValue {
        let ExprKind::Call { callee, options, args, .. } = &e.kind else {
            // Only Call expressions are dispatched here; a drift in the
            // dispatch degrades to an opaque leaf node, not a panic.
            let node = self.g.add_node(
                NodeKind::CallExpression,
                Props { code: e.code_sym(), ..Props::default() },
                e.span,
            );
            return EValue { node, frag: Frag::single(node), decl: None };
        };

        // Fold legacy `.value(x)` / `.gas(x)` chains into call options.
        let mut options = options.clone();
        let mut callee = callee.as_ref();
        while let ExprKind::Call { callee: inner_callee, args: inner_args, .. } = &callee.kind {
            if let ExprKind::Member { base, member } = &inner_callee.kind {
                if (*member == "value" || *member == "gas") && inner_args.len() == 1 {
                    options.push((*member, inner_args[0].clone()));
                    callee = base.as_ref();
                    continue;
                }
            }
            break;
        }

        // Elementary-type cast: `address(x)`, `uint(x)`, `payable(x)`.
        if let ExprKind::ElementaryType(ty) = &callee.kind {
            let ty = if *ty == "payable" { "address payable" } else { ty.as_str() };
            let node = self.g.add_node(
                NodeKind::CastExpression,
                Props {
                    code: e.code_sym(),
                    local_name: ty.into(),
                    ty: Some(ty.into()),
                    ..Props::default()
                },
                e.span,
            );
            let mut frag = Frag::empty();
            let mut decl = None;
            for arg in args {
                let v = self.expr(arg, false);
                self.g.add_edge(node, EdgeKind::Ast(AstRole::Arguments), v.node);
                self.g.add_edge(v.node, EdgeKind::Dfg, node);
                decl = decl.or(v.decl);
                frag = self.seq(frag, v.frag);
            }
            let frag = self.seq(frag, Frag::single(node));
            return EValue { node, frag, decl };
        }

        // Builtin rollback-on-failure calls.
        if let ExprKind::Ident(name) = &callee.kind {
            match name.as_str() {
                "require" | "assert" => return self.require_call(e, name.as_str(), args),
                "revert" => {
                    let mut frag = Frag::empty();
                    for arg in args {
                        let v = self.expr(arg, false);
                        frag = self.seq(frag, v.frag);
                    }
                    let node = self.g.add_node(
                        NodeKind::Rollback,
                        Props {
                            code: e.code_sym(),
                            local_name: "revert".into(),
                            ..Props::default()
                        },
                        e.span,
                    );
                    let frag = self.seq(frag, Frag::terminal(node));
                    return EValue { node, frag, decl: None };
                }
                _ => {}
            }
        }

        // Translate the callee.
        let (callee_node, callee_frag, callee_name) = match &callee.kind {
            ExprKind::Ident(name) => {
                let node = self.g.add_node(
                    NodeKind::DeclaredReferenceExpression,
                    Props { code: *name, local_name: *name, ..Props::default() },
                    callee.span,
                );
                (node, Frag::single(node), Some(*name))
            }
            _ => {
                let v = self.expr(callee, false);
                let name = self.g.node(v.node).props.local_name;
                (v.node, v.frag, if name.is_empty() { None } else { Some(name) })
            }
        };

        let local_name = callee_name.unwrap_or_default();
        let node = self.g.add_node(
            NodeKind::CallExpression,
            Props { code: e.code_sym(), local_name, ..Props::default() },
            e.span,
        );
        self.g.add_edge(node, EdgeKind::Ast(AstRole::Callee), callee_node);
        if let Some(base) = self.g.ast_child(callee_node, AstRole::Base) {
            // Convenience: expose the member base directly on the call, and
            // record that the receiver's data influences the call (one of
            // the paper's "indirect data flows", §4.2.3).
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Base), base);
            self.g.add_edge(base, EdgeKind::Dfg, node);
        }

        let mut frag = callee_frag;
        let mut arg_nodes = Vec::new();
        for arg in args {
            let v = self.expr(arg, false);
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Arguments), v.node);
            self.g.add_edge(v.node, EdgeKind::Dfg, node);
            arg_nodes.push(v.node);
            frag = self.seq(frag, v.frag);
        }

        // Call options {value: .., gas: ..} → SpecifiedExpression (§4.2.1).
        if !options.is_empty() {
            let spec = self.g.add_node(
                NodeKind::SpecifiedExpression,
                Props {
                    code: Symbol::intern(
                        &options
                            .iter()
                            .map(|(k, v)| format!("{k}: {}", v.code()))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                    ..Props::default()
                },
                e.span,
            );
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Specifiers), spec);
            for (key, value) in &options {
                let kv = self.g.add_node(
                    NodeKind::KeyValueExpression,
                    Props {
                        code: intern_fmt(format_args!("{key}: {}", value.code())),
                        local_name: *key,
                        ..Props::default()
                    },
                    value.span,
                );
                self.g.add_edge(spec, EdgeKind::Ast(AstRole::Child), kv);
                let key_node = self.g.add_node(
                    NodeKind::DeclaredReferenceExpression,
                    Props { code: *key, local_name: *key, ..Props::default() },
                    value.span,
                );
                self.g.add_edge(kv, EdgeKind::Ast(AstRole::Key), key_node);
                let v = self.expr(value, false);
                self.g.add_edge(kv, EdgeKind::Ast(AstRole::Value), v.node);
                self.g.add_edge(v.node, EdgeKind::Dfg, kv);
                self.g.add_edge(kv, EdgeKind::Dfg, spec);
                self.g.add_edge(spec, EdgeKind::Dfg, node);
                frag = self.seq(frag, v.frag);
            }
        }

        let frag = self.seq(frag, Frag::single(node));

        // selfdestruct terminates execution (no rollback — state persists).
        if matches!(local_name.as_str(), "selfdestruct" | "suicide") {
            return EValue { node, frag: Frag { entry: frag.entry, exits: Exits::default() }, decl: None };
        }

        // Queue user-function calls for INVOKES resolution.
        if let Some(name) = callee_name {
            let via_this = matches!(&callee.kind, ExprKind::Member { base, .. }
                if matches!(&base.kind, ExprKind::Ident(b) if *b == "this"));
            let direct = matches!(&callee.kind, ExprKind::Ident(_));
            if (direct || via_this) && !BUILTIN_CALLS.contains(&name.as_str()) {
                self.pending_calls.push(PendingCall {
                    call: node,
                    record: self.current_record,
                    name,
                    args: arg_nodes,
                });
            }
        }

        EValue { node, frag, decl: None }
    }

    /// `require(cond, ...)` / `assert(cond)`: the call continues on success
    /// and branches to a `Rollback` node on failure.
    fn require_call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> EValue {
        let node = self.g.add_node(
            NodeKind::CallExpression,
            Props {
                code: e.code_sym(),
                local_name: name.into(),
                ..Props::default()
            },
            e.span,
        );
        let mut frag = Frag::empty();
        for arg in args {
            let v = self.expr(arg, false);
            self.g.add_edge(node, EdgeKind::Ast(AstRole::Arguments), v.node);
            self.g.add_edge(v.node, EdgeKind::Dfg, node);
            frag = self.seq(frag, v.frag);
        }
        let frag = self.seq(frag, Frag::single(node));
        let rollback = self.g.add_node(
            NodeKind::Rollback,
            Props {
                code: intern_fmt(format_args!("{name}-failure")),
                local_name: name.into(),
                ..Props::default()
            },
            e.span,
        );
        self.g.add_edge(node, EdgeKind::Ast(AstRole::Child), rollback);
        self.g.add_edge(node, EdgeKind::Eog, rollback);
        self.g.add_edge(node, EdgeKind::Dfg, rollback);
        EValue { node, frag, decl: None }
    }

    // ===== call resolution ==================================================

    fn resolve_calls(&mut self) {
        let pending = std::mem::take(&mut self.pending_calls);
        for p in pending {
            let target = self.resolve_function(p.record, p.name);
            let Some(target) = target else { continue };
            self.g.add_edge(p.call, EdgeKind::Invokes, target);
            if let Some(params) = self.fn_params.get(&target) {
                for (arg, param) in p.args.iter().zip(params) {
                    self.g.add_edge(*arg, EdgeKind::Dfg, *param);
                }
            }
            if let Some(returns) = self.fn_returns.get(&target) {
                for ret in returns {
                    self.g.add_edge(*ret, EdgeKind::Returns, p.call);
                    self.g.add_edge(*ret, EdgeKind::Dfg, p.call);
                }
            }
        }
    }

    fn resolve_function(&self, record: Option<usize>, name: Symbol) -> Option<NodeId> {
        let mut idx = record;
        let mut hops = 0;
        while let Some(i) = idx {
            if let Some(f) = self.records[i].methods.get(&name) {
                return Some(*f);
            }
            idx = self.records[i]
                .bases
                .iter()
                .find_map(|b| self.record_index.get(b).copied());
            hops += 1;
            if hops > 16 {
                break;
            }
        }
        self.free_functions.get(&name).copied()
    }
}

fn base_v_local(g: &Graph, node: NodeId) -> Symbol {
    g.node(node).props.local_name
}

fn element_type(collection_ty: Option<&str>) -> Option<Symbol> {
    let ty = collection_ty?;
    if let Some(stripped) = ty.strip_suffix("[]") {
        return Some(Symbol::intern(stripped));
    }
    // mapping(K=>V) → V
    if let Some(rest) = ty.strip_prefix("mapping(") {
        if let Some(pos) = rest.find("=>") {
            let value = &rest[pos + 2..];
            return Some(Symbol::intern(value.trim_end_matches(')')));
        }
    }
    None
}

/// Interned `T name` (or bare `T`) code of a parameter declaration,
/// printed into a reusable scratch buffer.
fn param_code(p: &Param) -> Symbol {
    thread_local! {
        static PARAM_BUF: std::cell::RefCell<String> =
            const { std::cell::RefCell::new(String::new()) };
    }
    PARAM_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        printer::print_type_into(&p.ty, &mut buf);
        if let Some(n) = p.name {
            buf.push(' ');
            buf.push_str(n.as_str());
        }
        Symbol::intern(&buf)
    })
}

/// Interned canonical signature of `f`, built in a reusable scratch
/// buffer so declaring a function allocates nothing.
fn signature_sym(f: &FunctionDef) -> Symbol {
    thread_local! {
        static SIG_BUF: std::cell::RefCell<String> =
            const { std::cell::RefCell::new(String::new()) };
    }
    SIG_BUF.with(|cell| {
        let mut sig = cell.borrow_mut();
        sig.clear();
        signature_into(f, &mut sig);
        Symbol::intern(&sig)
    })
}

fn signature_into(f: &FunctionDef, sig: &mut String) {
    match f.kind {
        FunctionKind::Constructor => sig.push_str("constructor"),
        FunctionKind::Receive => sig.push_str("receive"),
        FunctionKind::Fallback => sig.push_str("fallback"),
        FunctionKind::Function => {
            sig.push_str("function");
            if let Some(name) = &f.name {
                sig.push(' ');
                sig.push_str(name);
            }
        }
    }
    sig.push('(');
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            sig.push_str(", ");
        }
        printer::print_type_into(&p.ty, sig);
    }
    sig.push(')');
    if let Some(v) = f.visibility {
        sig.push(' ');
        sig.push_str(v.as_str());
    }
    if let Some(m) = f.mutability {
        sig.push(' ');
        sig.push_str(m.as_str());
    }
}

fn pragma_is_08(pragma: &str) -> bool {
    // Accept forms like `^0.8.0`, `>=0.8.0<0.9.0`, `0.8.19`.
    let digits: String = pragma
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .collect();
    let mut parts = digits.split('.');
    let major: u32 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    let minor: u32 = parts
        .next()
        .map(|p| p.chars().take_while(|c| c.is_ascii_digit()).collect::<String>())
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);
    major > 0 || minor >= 8
}

fn builtin_member_type(code: &str) -> Option<&'static str> {
    match code {
        "msg.sender" => Some("address"),
        "msg.value" => Some("uint256"),
        "msg.data" => Some("bytes"),
        "msg.sig" => Some("bytes4"),
        "msg.gas" => Some("uint256"),
        "msg.data.length" => Some("uint256"),
        "tx.origin" => Some("address"),
        "tx.gasprice" => Some("uint256"),
        "block.timestamp" => Some("uint256"),
        "block.number" => Some("uint256"),
        "block.difficulty" => Some("uint256"),
        "block.gaslimit" => Some("uint256"),
        "block.coinbase" => Some("address"),
        "block.blockhash" => Some("bytes32"),
        _ => None,
    }
}

fn is_builtin_name(name: &str) -> bool {
    matches!(
        name,
        "msg"
            | "tx"
            | "block"
            | "this"
            | "abi"
            | "super"
            | "type"
            | "now"
            | "_"
    ) || BUILTIN_CALLS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpg(src: &str) -> Cpg {
        Cpg::from_snippet(src).expect("snippet parses")
    }

    fn find_by_code(c: &Cpg, kind: NodeKind, code: &str) -> NodeId {
        c.graph
            .node_ids()
            .find(|n| c.graph.node(*n).kind == kind && c.graph.node(*n).props.code == code)
            .unwrap_or_else(|| panic!("no {kind:?} node with code `{code}`"))
    }

    #[test]
    fn figure_2_graph_shape() {
        // `if (msg.sender == owner){}` — the paper's Figure 2.
        let c = cpg("if (msg.sender == owner) {}");
        let sender = find_by_code(&c, NodeKind::MemberExpression, "msg.sender");
        let eq = find_by_code(&c, NodeKind::BinaryOperator, "msg.sender == owner");
        let iff = c.graph.nodes_of_kind(NodeKind::IfStatement).next().unwrap();
        let owner = c
            .graph
            .nodes_of_kind(NodeKind::DeclaredReferenceExpression)
            .find(|n| c.graph.node(*n).props.code == "owner")
            .unwrap();

        // EOG: msg.sender → owner → == → IF.
        assert!(c.graph.reaches(sender, owner, |k| k == EdgeKind::Eog, 1));
        assert!(c.graph.reaches(owner, eq, |k| k == EdgeKind::Eog, 1));
        assert!(c.graph.reaches(eq, iff, |k| k == EdgeKind::Eog, 1));
        // DFG: both references flow into ==, and == into IF.
        assert!(c.graph.reaches(sender, eq, |k| k == EdgeKind::Dfg, 1));
        assert!(c.graph.reaches(owner, eq, |k| k == EdgeKind::Dfg, 1));
        assert!(c.graph.reaches(eq, iff, |k| k == EdgeKind::Dfg, 1));
        // AST: LHS / RHS / CONDITION roles.
        assert_eq!(c.graph.ast_child(eq, AstRole::Lhs), Some(sender));
        assert_eq!(c.graph.ast_child(eq, AstRole::Rhs), Some(owner));
        assert_eq!(c.graph.ast_child(iff, AstRole::Condition), Some(eq));
        // `owner` was inferred as a field of the inferred contract.
        let decl = c.graph.refers_to(owner).unwrap();
        assert_eq!(c.graph.node(decl).kind, NodeKind::FieldDeclaration);
        assert!(c.graph.node(decl).props.is_inferred);
    }

    #[test]
    fn require_creates_rollback_branch() {
        let c = cpg("function f() public { require(msg.sender == owner); x = 1; }");
        let call = c
            .graph
            .nodes_of_kind(NodeKind::CallExpression)
            .find(|n| c.graph.node(*n).props.local_name == "require")
            .unwrap();
        let rollback = c.graph.nodes_of_kind(NodeKind::Rollback).next().unwrap();
        assert!(c.graph.reaches(call, rollback, |k| k == EdgeKind::Eog, 1));
        assert!(c.graph.is_eog_exit(rollback));
        // The happy path continues: call also reaches the assignment.
        let assign = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| c.graph.node(*n).props.code == "x = 1")
            .unwrap();
        assert!(c.graph.eog_reaches(call, assign));
    }

    #[test]
    fn revert_terminates_path() {
        let c = cpg("function f() public { if (bad) { revert(); } x = 1; }");
        let rollback = c.graph.nodes_of_kind(NodeKind::Rollback).next().unwrap();
        assert!(c.graph.is_eog_exit(rollback));
        let assign = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| c.graph.node(*n).props.code == "x = 1")
            .unwrap();
        // The revert path does not reach the assignment.
        assert!(!c.graph.eog_reaches(rollback, assign));
    }

    #[test]
    fn assignment_flows_into_field() {
        let c = cpg("contract C { address owner; constructor() { owner = msg.sender; } }");
        let sender = find_by_code(&c, NodeKind::MemberExpression, "msg.sender");
        let field = c
            .graph
            .nodes_of_kind(NodeKind::FieldDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "owner")
            .unwrap();
        assert!(c.graph.dfg_reaches(sender, field));
    }

    #[test]
    fn param_flows_to_field_via_assignment() {
        let c = cpg(
            "contract C { uint total; function add(uint amount) public { total += amount; } }",
        );
        let param = c.graph.nodes_of_kind(NodeKind::ParamVariableDeclaration).next().unwrap();
        let field = c
            .graph
            .nodes_of_kind(NodeKind::FieldDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "total")
            .unwrap();
        assert!(c.graph.dfg_reaches(param, field));
    }

    #[test]
    fn modifier_expansion_brings_require_into_function() {
        let c = cpg(
            "contract C { address owner; \
               modifier onlyOwner() { require(msg.sender == owner); _; } \
               function kill() public onlyOwner() { selfdestruct(owner); } }",
        );
        // After expansion, `kill` must contain a require call EOG-before the
        // selfdestruct.
        let kill = c
            .graph
            .nodes_of_kind(NodeKind::FunctionDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "kill")
            .unwrap();
        let descendants = c.graph.descendants(kill);
        let require = descendants
            .iter()
            .find(|n| c.graph.node(**n).props.local_name == "require")
            .copied()
            .expect("require expanded into kill body");
        let sd = descendants
            .iter()
            .find(|n| c.graph.node(**n).props.local_name == "selfdestruct")
            .copied()
            .unwrap();
        assert!(c.graph.eog_reaches(require, sd));
    }

    #[test]
    fn call_options_become_specified_expression() {
        let c = cpg("msg.sender.call{value: amount}(\"\");");
        let spec = c.graph.nodes_of_kind(NodeKind::SpecifiedExpression).next().unwrap();
        let kv = c.graph.nodes_of_kind(NodeKind::KeyValueExpression).next().unwrap();
        assert_eq!(c.graph.node(kv).props.local_name, "value");
        let call = c
            .graph
            .nodes_of_kind(NodeKind::CallExpression)
            .find(|n| c.graph.node(*n).props.local_name == "call")
            .unwrap();
        assert_eq!(c.graph.ast_child(call, AstRole::Specifiers), Some(spec));
    }

    #[test]
    fn legacy_value_chain_is_folded() {
        let c = cpg("to.call.value(amount)();");
        let call = c
            .graph
            .nodes_of_kind(NodeKind::CallExpression)
            .find(|n| c.graph.node(*n).props.local_name == "call")
            .expect("call with folded value option");
        assert!(c.graph.ast_child(call, AstRole::Specifiers).is_some());
    }

    #[test]
    fn invokes_edges_link_calls_to_functions() {
        let c = cpg(
            "contract C { \
               function inner(uint x) public returns (uint) { return x + 1; } \
               function outer() public { uint y = inner(5); } }",
        );
        let call = c
            .graph
            .nodes_of_kind(NodeKind::CallExpression)
            .find(|n| c.graph.node(*n).props.local_name == "inner")
            .unwrap();
        let inner = c
            .graph
            .nodes_of_kind(NodeKind::FunctionDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "inner")
            .unwrap();
        assert!(c.graph.reaches(call, inner, |k| k == EdgeKind::Invokes, 1));
        // Arg → param DFG and return → call RETURNS.
        let param = c.graph.nodes_of_kind(NodeKind::ParamVariableDeclaration).next().unwrap();
        let five = c
            .graph
            .nodes_of_kind(NodeKind::Literal)
            .find(|n| c.graph.node(*n).props.code == "5")
            .unwrap();
        assert!(c.graph.reaches(five, param, |k| k == EdgeKind::Dfg, 1));
        let ret = c.graph.nodes_of_kind(NodeKind::ReturnStatement).next().unwrap();
        assert!(c.graph.reaches(ret, call, |k| k == EdgeKind::Returns, 1));
    }

    #[test]
    fn loops_form_eog_cycles() {
        let c = cpg("function f(uint n) public { for (uint i = 0; i < n; i++) { g(i); } }");
        let for_node = c.graph.nodes_of_kind(NodeKind::ForStatement).next().unwrap();
        // The loop node is on an EOG cycle.
        let reached = c.graph.reach_forward(for_node, |k| k == EdgeKind::Eog, usize::MAX);
        assert!(reached.contains(&for_node), "loop node must cycle back to itself");
    }

    #[test]
    fn inherited_fields_resolve() {
        let c = cpg(
            "contract Parent { address owner; } \
             contract Child is Parent { function f() public { owner = msg.sender; } }",
        );
        // No inferred duplicate: the reference resolves to Parent.owner.
        let fields: Vec<NodeId> = c.graph.nodes_of_kind(NodeKind::FieldDeclaration).collect();
        assert_eq!(fields.len(), 1);
        let owner_ref = c
            .graph
            .nodes_of_kind(NodeKind::DeclaredReferenceExpression)
            .find(|n| c.graph.node(*n).props.code == "owner")
            .unwrap();
        assert_eq!(c.graph.refers_to(owner_ref), Some(fields[0]));
    }

    #[test]
    fn legacy_constructor_by_contract_name() {
        let c = cpg("contract Token { address owner; function Token() public { owner = msg.sender; } }");
        assert_eq!(c.graph.nodes_of_kind(NodeKind::ConstructorDeclaration).count(), 1);
    }

    #[test]
    fn pragma_08_detection() {
        assert!(Cpg::from_source("pragma solidity ^0.8.0; contract C {}")
            .unwrap()
            .solidity_08());
        assert!(!Cpg::from_source("pragma solidity ^0.4.24; contract C {}")
            .unwrap()
            .solidity_08());
        assert!(!cpg("contract C {}").solidity_08());
    }

    #[test]
    fn safemath_detection() {
        let c = cpg("contract C { using SafeMath for uint256; uint x; }");
        assert!(c.uses_safemath());
        assert!(!cpg("contract C { uint x; }").uses_safemath());
    }

    #[test]
    fn snippet_statements_get_inferred_wrappers() {
        let c = cpg("balances[msg.sender] += msg.value;");
        let record = c.graph.nodes_of_kind(NodeKind::RecordDeclaration).next().unwrap();
        assert!(c.graph.node(record).props.is_inferred);
        let f = c.graph.nodes_of_kind(NodeKind::FunctionDeclaration).next().unwrap();
        assert!(c.graph.node(f).props.is_inferred);
        // `balances` becomes an inferred field.
        let field = c
            .graph
            .nodes_of_kind(NodeKind::FieldDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "balances")
            .unwrap();
        assert!(c.graph.node(field).props.is_inferred);
    }

    #[test]
    fn default_function_has_empty_local_name() {
        let c = cpg("contract C { function() payable { lib.delegatecall(msg.data); } }");
        let f = c
            .graph
            .nodes_of_kind(NodeKind::FunctionDeclaration)
            .find(|n| c.graph.node(*n).props.extra.get("fn_kind").map(|s| s.as_str()) == Some("fallback"))
            .unwrap();
        assert_eq!(c.graph.node(f).props.local_name, "");
    }

    #[test]
    fn subscript_write_flows_to_collection() {
        let c = cpg("contract C { mapping(address => uint) balances; \
                     function d() public payable { balances[msg.sender] = msg.value; } }");
        let value = find_by_code(&c, NodeKind::MemberExpression, "msg.value");
        let field = c
            .graph
            .nodes_of_kind(NodeKind::FieldDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "balances")
            .unwrap();
        assert!(c.graph.dfg_reaches(value, field));
    }

    #[test]
    fn ternary_and_tuple_translate() {
        let c = cpg("x = a > b ? a : b;\n(uint p, uint q) = f();");
        assert!(c.graph.nodes_of_kind(NodeKind::ConditionalExpression).next().is_some());
        assert!(c.graph.nodes_of_kind(NodeKind::VariableDeclaration).count() >= 2);
    }

    #[test]
    fn function_eog_entry() {
        let c = cpg("contract C { function f() public { x = 1; } }");
        let f = c
            .graph
            .nodes_of_kind(NodeKind::FunctionDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "f")
            .unwrap();
        // Queries traverse (f)-[:EOG*]->(...): the function node must reach
        // its body.
        let assign = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| c.graph.node(*n).props.code == "x = 1")
            .unwrap();
        assert!(c.graph.eog_reaches(f, assign));
    }

    #[test]
    fn unchecked_marks_operators() {
        let c = cpg("function f(uint x) public { unchecked { total += x; } }");
        let op = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| c.graph.node(*n).props.operator_code.as_deref() == Some("+="))
            .unwrap();
        assert_eq!(
            c.graph.node(op).props.extra.get("unchecked").map(|s| s.as_str()),
            Some("true")
        );
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    fn cpg(src: &str) -> Cpg {
        Cpg::from_snippet(src).expect("snippet parses")
    }

    #[test]
    fn three_level_inheritance_resolves_fields() {
        let c = cpg(
            "contract A { address root; } \
             contract B is A { uint mid; } \
             contract C is B { function f() public { root = msg.sender; mid = 1; } }",
        );
        // Both writes resolve to the inherited fields, no inferred dupes.
        let fields: Vec<NodeId> = c.graph.nodes_of_kind(NodeKind::FieldDeclaration).collect();
        assert_eq!(fields.len(), 2);
        assert!(fields.iter().all(|f| !c.graph.node(*f).props.is_inferred));
    }

    #[test]
    fn modifier_with_two_placeholders_duplicates_body() {
        let c = cpg(
            "contract C { uint hits; \
             modifier twice() { _; _; } \
             function f() public twice() { hits += 1; } }",
        );
        // The body is expanded at both placeholders: two += operators.
        let adds = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .filter(|n| c.graph.node(*n).props.operator_code.as_deref() == Some("+="))
            .count();
        assert_eq!(adds, 2);
    }

    #[test]
    fn try_catch_branches_in_eog() {
        let c = cpg(
            "function f(address t) public { \
               try IThing(t).doIt() { ok += 1; } catch { bad += 1; } done = true; }",
        );
        let try_node = c.graph.nodes_of_kind(NodeKind::TryStatement).next().unwrap();
        // Both handler entries are EOG successors of the try.
        let successors: Vec<NodeId> = c.graph.out_kind(try_node, EdgeKind::Eog).collect();
        assert!(successors.len() >= 2, "{successors:?}");
        // And both paths converge on the trailing statement.
        let done = c
            .graph
            .nodes_of_kind(NodeKind::BinaryOperator)
            .find(|n| c.graph.node(*n).props.code == "done = true")
            .unwrap();
        for s in successors {
            assert!(c.graph.eog_reaches(s, done) || s == done);
        }
    }

    #[test]
    fn for_loop_without_init_or_cond() {
        let c = cpg("function f() public { for (;;) { spin += 1; } }");
        let l = c.graph.nodes_of_kind(NodeKind::ForStatement).next().unwrap();
        let reached = c.graph.reach_forward(l, |k| k == EdgeKind::Eog, usize::MAX);
        assert!(reached.contains(&l), "infinite loop must cycle");
    }

    #[test]
    fn nested_mapping_types() {
        let c = cpg(
            "contract C { mapping(address => mapping(address => uint)) allowance; \
             function a(address s, uint v) public { allowance[msg.sender][s] = v; } }",
        );
        let field = c
            .graph
            .nodes_of_kind(NodeKind::FieldDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "allowance")
            .unwrap();
        assert!(c
            .graph
            .node(field)
            .props
            .ty
            .as_deref()
            .unwrap()
            .starts_with("mapping(address=>mapping"));
        // The write through the double subscript flows into the field.
        let v_param = c
            .graph
            .nodes_of_kind(NodeKind::ParamVariableDeclaration)
            .find(|n| c.graph.node(*n).props.local_name == "v")
            .unwrap();
        assert!(c.graph.dfg_reaches(v_param, field));
    }

    #[test]
    fn interface_functions_have_no_bodies_or_eog() {
        let c = cpg(
            "interface I { function t(address to, uint v) external returns (bool); }",
        );
        let f = c.graph.nodes_of_kind(NodeKind::FunctionDeclaration).next().unwrap();
        assert!(c.graph.ast_child(f, AstRole::Body).is_none());
        assert!(c.graph.out_kind(f, EdgeKind::Eog).next().is_none());
    }

    #[test]
    fn unresolved_call_has_no_invokes_edge() {
        let c = cpg("function f(address t) public { IThing(t).poke(); }");
        for call in c.graph.nodes_of_kind(NodeKind::CallExpression) {
            assert!(c.graph.out_kind(call, EdgeKind::Invokes).next().is_none());
        }
    }
}
