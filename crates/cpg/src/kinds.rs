//! Node and edge kinds of the code property graph.
//!
//! The vocabulary mirrors the node labels and relationship types of the CPG
//! library the paper builds on (and that its Appendix B Cypher queries match
//! against): `FunctionDeclaration`, `FieldDeclaration`, `CallExpression`,
//! `BinaryOperator`, ..., connected by `AST`-role edges (`LHS`, `ARGUMENTS`,
//! `BODY`, ...), `EOG` evaluation-order edges, `DFG` data-flow edges,
//! `REFERS_TO` reference-resolution edges and `INVOKES`/`RETURNS`
//! inter-procedural edges.

use serde::{Deserialize, Serialize};

/// Node labels. Names follow the upstream CPG library so the queries of the
/// paper's Appendix B map one-to-one onto this graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// Root of one translated source unit.
    TranslationUnit,
    /// A contract, interface, library or struct (`kind` property tells which).
    RecordDeclaration,
    /// A state variable / struct member.
    FieldDeclaration,
    /// A function.
    FunctionDeclaration,
    /// A constructor (also labelled `FunctionDeclaration` in queries; use
    /// [`NodeKind::is_function_like`]).
    ConstructorDeclaration,
    /// A modifier declaration (kept for provenance; bodies are expanded).
    ModifierDeclaration,
    /// A function parameter.
    ParamVariableDeclaration,
    /// A local variable.
    VariableDeclaration,
    /// An enum declaration.
    EnumDeclaration,
    /// An event declaration.
    EventDeclaration,
    /// A reference to a declared name.
    DeclaredReferenceExpression,
    /// `base.member` access.
    MemberExpression,
    /// `base[index]` access.
    SubscriptExpression,
    /// A call (including `require`, `transfer`, `delegatecall`, ...).
    CallExpression,
    /// `new C(...)` / `new uint ` allocation.
    NewExpression,
    /// A binary or assignment operation (`operatorCode` property).
    BinaryOperator,
    /// A unary operation (`operatorCode` property).
    UnaryOperator,
    /// A literal (`value` property).
    Literal,
    /// A `(a, b)` tuple / inline array expression.
    TupleExpression,
    /// A ternary `cond ? a : b` expression.
    ConditionalExpression,
    /// An elementary-type cast expression (`address(x)`).
    CastExpression,
    /// The `{value: .., gas: ..}` option block of a call (§4.2.1).
    SpecifiedExpression,
    /// One `key: value` entry of a [`NodeKind::SpecifiedExpression`].
    KeyValueExpression,
    /// A block of statements.
    Block,
    /// An `if` statement.
    IfStatement,
    /// A `while` loop.
    WhileStatement,
    /// A `do`-`while` loop.
    DoStatement,
    /// A `for` loop.
    ForStatement,
    /// A `for`-each loop (not produced by Solidity, kept for query parity).
    ForEachStatement,
    /// A `return` statement.
    ReturnStatement,
    /// A `break` statement.
    BreakStatement,
    /// A `continue` statement.
    ContinueStatement,
    /// An `emit` statement persisting an event (§4.2.1).
    EmitStatement,
    /// Transaction-reverting program termination (§4.2.1): `revert`,
    /// `throw`, failing `require`/`assert`, `selfdestruct` target of DoS.
    Rollback,
    /// An `assembly { ... }` block, kept opaque (§4.5).
    AssemblyBlock,
    /// A `try`/`catch` statement.
    TryStatement,
    /// `...` — elided code in a snippet.
    PlaceholderStatement,
    /// An `unchecked { ... }` block (arithmetic wrapping allowed).
    UncheckedBlock,
}

impl NodeKind {
    /// Label string as it appears in queries.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::TranslationUnit => "TranslationUnit",
            NodeKind::RecordDeclaration => "RecordDeclaration",
            NodeKind::FieldDeclaration => "FieldDeclaration",
            NodeKind::FunctionDeclaration => "FunctionDeclaration",
            NodeKind::ConstructorDeclaration => "ConstructorDeclaration",
            NodeKind::ModifierDeclaration => "ModifierDeclaration",
            NodeKind::ParamVariableDeclaration => "ParamVariableDeclaration",
            NodeKind::VariableDeclaration => "VariableDeclaration",
            NodeKind::EnumDeclaration => "EnumDeclaration",
            NodeKind::EventDeclaration => "EventDeclaration",
            NodeKind::DeclaredReferenceExpression => "DeclaredReferenceExpression",
            NodeKind::MemberExpression => "MemberExpression",
            NodeKind::SubscriptExpression => "SubscriptExpression",
            NodeKind::CallExpression => "CallExpression",
            NodeKind::NewExpression => "NewExpression",
            NodeKind::BinaryOperator => "BinaryOperator",
            NodeKind::UnaryOperator => "UnaryOperator",
            NodeKind::Literal => "Literal",
            NodeKind::TupleExpression => "TupleExpression",
            NodeKind::ConditionalExpression => "ConditionalExpression",
            NodeKind::CastExpression => "CastExpression",
            NodeKind::SpecifiedExpression => "SpecifiedExpression",
            NodeKind::KeyValueExpression => "KeyValueExpression",
            NodeKind::Block => "Block",
            NodeKind::IfStatement => "IfStatement",
            NodeKind::WhileStatement => "WhileStatement",
            NodeKind::DoStatement => "DoStatement",
            NodeKind::ForStatement => "ForStatement",
            NodeKind::ForEachStatement => "ForEachStatement",
            NodeKind::ReturnStatement => "ReturnStatement",
            NodeKind::BreakStatement => "BreakStatement",
            NodeKind::ContinueStatement => "ContinueStatement",
            NodeKind::EmitStatement => "EmitStatement",
            NodeKind::Rollback => "Rollback",
            NodeKind::AssemblyBlock => "AssemblyBlock",
            NodeKind::TryStatement => "TryStatement",
            NodeKind::PlaceholderStatement => "PlaceholderStatement",
            NodeKind::UncheckedBlock => "UncheckedBlock",
        }
    }

    /// Parse a label string back into a kind (used by the query engine).
    pub fn from_label(label: &str) -> Option<NodeKind> {
        ALL_KINDS.iter().copied().find(|k| k.label() == label)
    }

    /// Whether the node is a function or constructor declaration.
    pub fn is_function_like(self) -> bool {
        matches!(
            self,
            NodeKind::FunctionDeclaration | NodeKind::ConstructorDeclaration
        )
    }

    /// Whether the node is a declaration that data can flow out of / into.
    pub fn is_declaration(self) -> bool {
        matches!(
            self,
            NodeKind::FieldDeclaration
                | NodeKind::ParamVariableDeclaration
                | NodeKind::VariableDeclaration
        )
    }

    /// Whether the node is a loop statement.
    pub fn is_loop(self) -> bool {
        matches!(
            self,
            NodeKind::WhileStatement
                | NodeKind::DoStatement
                | NodeKind::ForStatement
                | NodeKind::ForEachStatement
        )
    }
}

/// Every node kind, for iteration in tests and label lookup.
pub const ALL_KINDS: &[NodeKind] = &[
    NodeKind::TranslationUnit,
    NodeKind::RecordDeclaration,
    NodeKind::FieldDeclaration,
    NodeKind::FunctionDeclaration,
    NodeKind::ConstructorDeclaration,
    NodeKind::ModifierDeclaration,
    NodeKind::ParamVariableDeclaration,
    NodeKind::VariableDeclaration,
    NodeKind::EnumDeclaration,
    NodeKind::EventDeclaration,
    NodeKind::DeclaredReferenceExpression,
    NodeKind::MemberExpression,
    NodeKind::SubscriptExpression,
    NodeKind::CallExpression,
    NodeKind::NewExpression,
    NodeKind::BinaryOperator,
    NodeKind::UnaryOperator,
    NodeKind::Literal,
    NodeKind::TupleExpression,
    NodeKind::ConditionalExpression,
    NodeKind::CastExpression,
    NodeKind::SpecifiedExpression,
    NodeKind::KeyValueExpression,
    NodeKind::Block,
    NodeKind::IfStatement,
    NodeKind::WhileStatement,
    NodeKind::DoStatement,
    NodeKind::ForStatement,
    NodeKind::ForEachStatement,
    NodeKind::ReturnStatement,
    NodeKind::BreakStatement,
    NodeKind::ContinueStatement,
    NodeKind::EmitStatement,
    NodeKind::Rollback,
    NodeKind::AssemblyBlock,
    NodeKind::TryStatement,
    NodeKind::PlaceholderStatement,
    NodeKind::UncheckedBlock,
];

/// Roles of syntax (`AST`) edges — the child's grammatical position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AstRole {
    /// Generic child.
    Child,
    /// Record member / translation-unit declaration.
    Declarations,
    /// Field of a record.
    Fields,
    /// Method of a record.
    Methods,
    /// Constructor of a record.
    Constructors,
    /// Parameter of a function.
    Parameters,
    /// Function body.
    Body,
    /// Return parameter slot.
    ReturnTypes,
    /// Left-hand side of a binary/assignment operator.
    Lhs,
    /// Right-hand side of a binary/assignment operator.
    Rhs,
    /// Operand of a unary operator.
    Input,
    /// Condition of a branch or loop.
    Condition,
    /// Then-branch of an `if`.
    Then,
    /// Else-branch of an `if`.
    Else,
    /// Initializer of a declaration or `for` statement.
    Initializer,
    /// Update expression of a `for` statement.
    Update,
    /// Callee of a call.
    Callee,
    /// Base of a member/subscript expression or method call.
    Base,
    /// Argument of a call.
    Arguments,
    /// The subscript (index) expression of an array access.
    SubscriptExpression,
    /// The array expression of an array access.
    ArrayExpression,
    /// The `{value: ..}` option block of a call.
    Specifiers,
    /// Key of a key-value expression.
    Key,
    /// Value of a key-value expression or returned expression.
    Value,
    /// Statements of a block.
    Statements,
}

impl AstRole {
    /// Relationship-type string as used in queries (`LHS`, `ARGUMENTS`, ...).
    pub fn label(self) -> &'static str {
        match self {
            AstRole::Child => "CHILD",
            AstRole::Declarations => "DECLARATIONS",
            AstRole::Fields => "FIELDS",
            AstRole::Methods => "METHODS",
            AstRole::Constructors => "CONSTRUCTORS",
            AstRole::Parameters => "PARAMETERS",
            AstRole::Body => "BODY",
            AstRole::ReturnTypes => "RETURN_TYPES",
            AstRole::Lhs => "LHS",
            AstRole::Rhs => "RHS",
            AstRole::Input => "INPUT",
            AstRole::Condition => "CONDITION",
            AstRole::Then => "THEN",
            AstRole::Else => "ELSE",
            AstRole::Initializer => "INITIALIZER",
            AstRole::Update => "UPDATE",
            AstRole::Callee => "CALLEE",
            AstRole::Base => "BASE",
            AstRole::Arguments => "ARGUMENTS",
            AstRole::SubscriptExpression => "SUBSCRIPT_EXPRESSION",
            AstRole::ArrayExpression => "ARRAY_EXPRESSION",
            AstRole::Specifiers => "SPECIFIERS",
            AstRole::Key => "KEY",
            AstRole::Value => "VALUE",
            AstRole::Statements => "STATEMENTS",
        }
    }
}

/// Edge kinds of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Syntax edge with its grammatical role.
    Ast(AstRole),
    /// Evaluation-order edge (EOG pass).
    Eog,
    /// Data-flow edge (DFG pass).
    Dfg,
    /// Reference → declaration resolution edge.
    RefersTo,
    /// Call site → called function (inter-procedural EOG entry).
    Invokes,
    /// Return statement → call site (inter-procedural EOG exit).
    Returns,
}

impl EdgeKind {
    /// Relationship-type string (`EOG`, `DFG`, `REFERS_TO`, or the AST role).
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Ast(role) => role.label(),
            EdgeKind::Eog => "EOG",
            EdgeKind::Dfg => "DFG",
            EdgeKind::RefersTo => "REFERS_TO",
            EdgeKind::Invokes => "INVOKES",
            EdgeKind::Returns => "RETURNS",
        }
    }

    /// Whether this is a syntax edge of any role.
    pub fn is_ast(self) -> bool {
        matches!(self, EdgeKind::Ast(_))
    }

    /// Parse a relationship-type string; `AST` matches any syntax role and is
    /// returned as [`AstRole::Child`] — use [`EdgeKind::is_ast`] when matching.
    pub fn from_label(label: &str) -> Option<EdgeKind> {
        match label {
            "EOG" => Some(EdgeKind::Eog),
            "DFG" => Some(EdgeKind::Dfg),
            "REFERS_TO" => Some(EdgeKind::RefersTo),
            "INVOKES" => Some(EdgeKind::Invokes),
            "RETURNS" => Some(EdgeKind::Returns),
            "AST" => Some(EdgeKind::Ast(AstRole::Child)),
            other => ALL_ROLES
                .iter()
                .copied()
                .find(|r| r.label() == other)
                .map(EdgeKind::Ast),
        }
    }
}

/// Every AST role, for label lookup.
pub const ALL_ROLES: &[AstRole] = &[
    AstRole::Child,
    AstRole::Declarations,
    AstRole::Fields,
    AstRole::Methods,
    AstRole::Constructors,
    AstRole::Parameters,
    AstRole::Body,
    AstRole::ReturnTypes,
    AstRole::Lhs,
    AstRole::Rhs,
    AstRole::Input,
    AstRole::Condition,
    AstRole::Then,
    AstRole::Else,
    AstRole::Initializer,
    AstRole::Update,
    AstRole::Callee,
    AstRole::Base,
    AstRole::Arguments,
    AstRole::SubscriptExpression,
    AstRole::ArrayExpression,
    AstRole::Specifiers,
    AstRole::Key,
    AstRole::Value,
    AstRole::Statements,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        for kind in ALL_KINDS {
            assert_eq!(NodeKind::from_label(kind.label()), Some(*kind));
        }
        for role in ALL_ROLES {
            assert_eq!(
                EdgeKind::from_label(role.label()),
                Some(EdgeKind::Ast(*role))
            );
        }
        assert_eq!(EdgeKind::from_label("DFG"), Some(EdgeKind::Dfg));
        assert_eq!(EdgeKind::from_label("NOPE"), None);
    }

    #[test]
    fn function_like() {
        assert!(NodeKind::ConstructorDeclaration.is_function_like());
        assert!(!NodeKind::ModifierDeclaration.is_function_like());
    }
}
