//! Modifier expansion (§4.2.2 of the paper).
//!
//! When a modifier is used in a function header, the code of the function is
//! wrapped into the modifier body at every `_;` placeholder. Expansion
//! happens on the AST before translation, creating copies of the modifier
//! code per application. Modifiers cannot be nested inside each other, and
//! functions use few modifiers, so the copy blow-up is bounded in practice.

use intern::Symbol;
use solidity::ast::*;
use solidity::Span;
use std::borrow::Cow;
use intern::FxHashMap;

/// Modifiers actually resolved and inlined into a function body.
static EXPANSIONS: telemetry::Counter = telemetry::Counter::new("cpg.modifier_expansions");

/// Expand all applied modifiers of `function` into its body, resolving
/// modifier names against `modifiers`. Returns the effective body, or `None`
/// when the function has no body.
///
/// Modifiers are applied left-to-right, the leftmost being the outermost
/// wrapper. Unresolvable modifier names (base-constructor invocations or
/// modifiers missing from a snippet) are skipped.
///
/// Modifier parameters are bound by prepending synthetic variable
/// declarations `T param = arg;` — this preserves the data flow from call
/// arguments into the modifier body without needing call semantics.
///
/// The common case — no modifier actually applies — borrows the original
/// body instead of deep-cloning it; only real expansions build an owned
/// copy.
///
/// The map is generic over [`Borrow`]`<ModifierDef>` so callers can hold
/// either owned definitions or `&ModifierDef` borrows of the source unit
/// (the builder does the latter — collecting modifiers then costs map
/// inserts, not deep AST clones).
pub fn expand_modifiers<'f, M: std::borrow::Borrow<ModifierDef>>(
    function: &'f FunctionDef,
    modifiers: &FxHashMap<Symbol, M>,
) -> Option<Cow<'f, Block>> {
    // Chaos hook: expansion is infallible, so an injected *error* at this
    // point escalates to a panic for the isolation layer to catch.
    if let Some(message) = faultinject::fire("cpg/expand") {
        panic!("faultinject: {message}");
    }
    // Traced only when there is something to expand: the no-modifier
    // common case would burn the per-trace span budget on no-ops.
    let _stage = if function.modifiers.is_empty() {
        telemetry::trace::StageGuard::inert()
    } else {
        telemetry::trace::stage("cpg-expand")
    };
    let mut body = Cow::Borrowed(function.body.as_ref()?);
    // Apply right-to-left so the leftmost modifier ends up outermost.
    for invocation in function.modifiers.iter().rev() {
        let Some(def) = modifiers.get(&invocation.name).map(std::borrow::Borrow::borrow)
        else {
            continue;
        };
        let Some(mod_body) = &def.body else { continue };
        EXPANSIONS.incr();
        let mut wrapped = substitute_placeholder(mod_body, &body);
        // Bind modifier parameters to the invocation arguments.
        let mut prelude: Vec<Statement> = Vec::new();
        for (param, arg) in def.params.iter().zip(&invocation.args) {
            let Some(name) = &param.name else { continue };
            prelude.push(Statement {
                kind: StatementKind::VariableDecl {
                    parts: vec![VarDeclPart {
                        ty: Some(param.ty.clone()),
                        storage: param.storage,
                        name: *name,
                        span: param.span,
                    }],
                    value: Some(arg.clone()),
                },
                span: arg.span,
            });
        }
        if !prelude.is_empty() {
            prelude.append(&mut wrapped.statements);
            wrapped.statements = prelude;
        }
        body = Cow::Owned(wrapped);
    }
    Some(body)
}

/// Replace every `_;` in `template` with a copy of `inner`.
fn substitute_placeholder(template: &Block, inner: &Block) -> Block {
    Block {
        statements: template
            .statements
            .iter()
            .map(|s| substitute_stmt(s, inner))
            .collect(),
        span: template.span,
    }
}

fn substitute_stmt(stmt: &Statement, inner: &Block) -> Statement {
    let kind = match &stmt.kind {
        StatementKind::ModifierPlaceholder => StatementKind::Block(Block {
            statements: inner.statements.clone(),
            span: inner.span,
        }),
        StatementKind::Block(b) => StatementKind::Block(substitute_placeholder(b, inner)),
        StatementKind::Unchecked(b) => {
            StatementKind::Unchecked(substitute_placeholder(b, inner))
        }
        StatementKind::If { cond, then, alt } => StatementKind::If {
            cond: cond.clone(),
            then: Box::new(substitute_stmt(then, inner)),
            alt: alt.as_ref().map(|a| Box::new(substitute_stmt(a, inner))),
        },
        StatementKind::While { cond, body } => StatementKind::While {
            cond: cond.clone(),
            body: Box::new(substitute_stmt(body, inner)),
        },
        StatementKind::DoWhile { body, cond } => StatementKind::DoWhile {
            body: Box::new(substitute_stmt(body, inner)),
            cond: cond.clone(),
        },
        StatementKind::For { init, cond, update, body } => StatementKind::For {
            init: init.clone(),
            cond: cond.clone(),
            update: update.clone(),
            body: Box::new(substitute_stmt(body, inner)),
        },
        StatementKind::Try { expr, success, catches } => StatementKind::Try {
            expr: expr.clone(),
            success: substitute_placeholder(success, inner),
            catches: catches.iter().map(|c| substitute_placeholder(c, inner)).collect(),
        },
        other => other.clone(),
    };
    Statement { kind, span: stmt.span }
}

/// Collect every modifier definition of a source unit, both free-standing
/// (snippets) and nested in contracts, keyed by name. Later definitions win,
/// which is irrelevant in practice since names are unique per study unit.
///
/// The map borrows the unit: collecting is a handful of map inserts, not a
/// deep clone of every modifier body.
pub fn collect_modifiers(unit: &SourceUnit) -> FxHashMap<Symbol, &ModifierDef> {
    let mut map = FxHashMap::default();
    for item in &unit.items {
        match item {
            SourceItem::Modifier(m) => {
                map.insert(m.name, m);
            }
            SourceItem::Contract(c) => {
                for part in &c.parts {
                    if let ContractPart::Modifier(m) = part {
                        map.insert(m.name, m);
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// A dummy span-carrying helper used by tests.
#[doc(hidden)]
pub fn dummy_span() -> Span {
    Span::DUMMY
}

#[cfg(test)]
mod tests {
    use super::*;
    use solidity::parse_snippet;
    use solidity::printer::print_stmt;

    fn setup(src: &str) -> (FunctionDef, SourceUnit) {
        let unit = parse_snippet(src).unwrap();
        let function = unit
            .items
            .iter()
            .find_map(|i| match i {
                SourceItem::Function(f) => Some(f.clone()),
                SourceItem::Contract(c) => c.parts.iter().find_map(|p| match p {
                    ContractPart::Function(f) if f.kind == FunctionKind::Function => {
                        Some(f.clone())
                    }
                    _ => None,
                }),
                _ => None,
            })
            .expect("function in test source");
        (function, unit)
    }

    #[test]
    fn wraps_body_in_modifier() {
        let (f, unit) = setup(
            "contract C { \
               modifier onlyOwner() { require(msg.sender == owner); _; } \
               function withdraw() public onlyOwner() { msg.sender.transfer(1); } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        // First statement is the require, second is the wrapped inner block.
        assert_eq!(body.statements.len(), 2);
        let printed = print_stmt(&body.statements[0]);
        assert!(printed.contains("require"), "got {printed}");
        assert!(matches!(body.statements[1].kind, StatementKind::Block(_)));
    }

    #[test]
    fn post_condition_modifiers_keep_order() {
        let (f, unit) = setup(
            "contract C { \
               modifier checked() { _; require(invariant()); } \
               function f() public checked() { x = 1; } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        assert!(matches!(body.statements[0].kind, StatementKind::Block(_)));
        assert!(print_stmt(&body.statements[1]).contains("require"));
    }

    #[test]
    fn multiple_modifiers_leftmost_outermost() {
        let (f, unit) = setup(
            "contract C { \
               modifier a() { pre_a(); _; } \
               modifier b() { pre_b(); _; } \
               function f() public a() b() { work(); } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        // Outermost is `a`: pre_a(); { pre_b(); { work(); } }
        assert!(print_stmt(&body.statements[0]).contains("pre_a"));
        let StatementKind::Block(inner) = &body.statements[1].kind else { panic!() };
        assert!(print_stmt(&inner.statements[0]).contains("pre_b"));
    }

    #[test]
    fn modifier_arguments_are_bound() {
        let (f, unit) = setup(
            "contract C { \
               modifier costs(uint price) { require(msg.value >= price); _; } \
               function buy() public costs(100) { sold += 1; } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        // Prelude declaration `uint price = 100;` comes first.
        let StatementKind::VariableDecl { parts, value } = &body.statements[0].kind else {
            panic!("expected prelude declaration")
        };
        assert_eq!(parts[0].name, "price");
        assert!(value.is_some());
    }

    #[test]
    fn unknown_modifiers_are_skipped() {
        let (f, unit) = setup(
            "contract C is Base { function f() public Base(1) { x = 2; } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        assert_eq!(body.statements.len(), 1);
    }

    #[test]
    fn bodyless_function_yields_none() {
        let unit = parse_snippet("contract C { function f() external; }").unwrap();
        let SourceItem::Contract(c) = &unit.items[0] else { panic!() };
        let ContractPart::Function(f) = &c.parts[0] else { panic!() };
        assert!(expand_modifiers(f, &FxHashMap::<Symbol, &ModifierDef>::default()).is_none());
    }

    #[test]
    fn placeholder_inside_branch_is_substituted() {
        let (f, unit) = setup(
            "contract C { \
               modifier gated() { if (open) { _; } else { revert(); } } \
               function f() public gated() { x = 1; } }",
        );
        let m = collect_modifiers(&unit);
        let body = expand_modifiers(&f, &m).unwrap();
        let StatementKind::If { then, .. } = &body.statements[0].kind else { panic!() };
        let StatementKind::Block(tb) = &then.kind else { panic!() };
        assert!(matches!(tb.statements[0].kind, StatementKind::Block(_)));
    }
}
