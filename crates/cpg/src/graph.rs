//! The property-graph arena.
//!
//! Nodes carry a [`NodeKind`] label plus a property bag; edges are typed by
//! [`EdgeKind`]. The graph offers the traversal primitives the vulnerability
//! detectors and the query engine build on: kind-filtered iteration,
//! in/out-edge walks, and bounded transitive reachability over edge-kind
//! sets (the `-[:DFG*]->` / `-[:EOG|INVOKES*]->` patterns of the paper's
//! Cypher queries).

use crate::kinds::{AstRole, EdgeKind, NodeKind};
use intern::{LineIndex, Symbol};
use serde::{Deserialize, Serialize};
use solidity::Span;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Properties of a graph node. Field names mirror the upstream CPG property
/// keys used in queries (`code`, `localName`, `operatorCode`, `value`, ...).
///
/// Every textual property is an interned [`Symbol`]: copies are free,
/// equality is an integer compare, and [`Props::get`] can hand out borrowed
/// `&'static str` views without cloning.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Props {
    /// Canonical source form of the node (`msg.sender`, `a + b`, ...).
    pub code: Symbol,
    /// Unqualified name: the member name of a member expression, the callee
    /// name of a call, the declared name of a declaration.
    pub local_name: Symbol,
    /// Operator text for binary/unary operators (`+`, `==`, `+=`, ...).
    pub operator_code: Option<Symbol>,
    /// Literal value text.
    pub value: Option<Symbol>,
    /// Declared or inferred type, canonical text form.
    pub ty: Option<Symbol>,
    /// Parameter position (0-based) for `ParamVariableDeclaration`s.
    pub index: Option<usize>,
    /// Whether the node was synthesized during inference (missing outer
    /// declarations of a snippet, cf. §4.2).
    pub is_inferred: bool,
    /// Record kind: `contract`, `interface`, `library`, `struct`.
    pub record_kind: Option<Symbol>,
    /// Declared visibility for functions and fields.
    pub visibility: Option<Symbol>,
    /// Anything else, e.g. `pragma` on the translation unit.
    pub extra: BTreeMap<Symbol, Symbol>,
}

impl Props {
    /// Property lookup by upstream key name, for the query engine.
    ///
    /// Returns a borrowed view for every stored text property; only the
    /// numeric `index` key allocates (it must be formatted).
    pub fn get(&self, key: &str) -> Option<Cow<'static, str>> {
        match key {
            "code" => Some(Cow::Borrowed(self.code.as_str())),
            "localName" => Some(Cow::Borrowed(self.local_name.as_str())),
            "operatorCode" => self.operator_code.map(|s| Cow::Borrowed(s.as_str())),
            "value" => self.value.map(|s| Cow::Borrowed(s.as_str())),
            "type" => self.ty.map(|s| Cow::Borrowed(s.as_str())),
            "index" => self.index.map(|i| Cow::Owned(i.to_string())),
            "isInferred" => {
                Some(Cow::Borrowed(if self.is_inferred { "true" } else { "false" }))
            }
            "kind" => self.record_kind.map(|s| Cow::Borrowed(s.as_str())),
            "visibility" => self.visibility.map(|s| Cow::Borrowed(s.as_str())),
            other => self.extra.get(other).map(|s| Cow::Borrowed(s.as_str())),
        }
    }
}

/// A node: label + properties + source span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Label.
    pub kind: NodeKind,
    /// Property bag.
    pub props: Props,
    /// Source span in the translated text.
    pub span: Span,
}

/// A directed, typed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Edge type.
    pub kind: EdgeKind,
    /// Target node.
    pub to: NodeId,
}

/// Sentinel for "no edge" in the intrusive adjacency lists.
const NIL: u32 = u32::MAX;

/// One stored edge plus its links in the per-node adjacency lists.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct EdgeCell {
    edge: Edge,
    next_out: u32,
    next_in: u32,
}

/// Per-node heads and tails of the outgoing and incoming edge lists.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct AdjHead {
    first_out: u32,
    last_out: u32,
    first_in: u32,
    last_in: u32,
}

impl AdjHead {
    const EMPTY: AdjHead =
        AdjHead { first_out: NIL, last_out: NIL, first_in: NIL, last_in: NIL };
}

/// The code property graph.
///
/// Edges live in one arena (`cells`), threaded through per-node intrusive
/// lists — adding a node or an edge performs no allocation beyond the
/// amortized growth of three flat `Vec`s. The previous representation
/// (one out-`Vec` and one in-`Vec` per node) spent two heap allocations
/// on every connected node, which dominated the translation hot path.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    cells: Vec<EdgeCell>,
    adj: Vec<AdjHead>,
    /// Membership index over `cells` so `add_edge` dedup is O(1) instead
    /// of a walk of the source node's out-list.
    dedup: intern::FxHashSet<Edge>,
    line_index: Option<Arc<LineIndex>>,
}

/// Iterator over one direction of a node's adjacency list, in insertion
/// order.
pub struct EdgeIter<'g> {
    cells: &'g [EdgeCell],
    next: u32,
    forward: bool,
}

impl Iterator for EdgeIter<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.next == NIL {
            return None;
        }
        let cell = &self.cells[self.next as usize];
        self.next = if self.forward { cell.next_out } else { cell.next_in };
        Some(cell.edge)
    }
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Pre-size the node and edge storage. Translation knows a reasonable
    /// ballpark up front; reserving once avoids the incremental rehash and
    /// regrow churn that otherwise dominates graph construction.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.nodes.reserve(nodes);
        self.adj.reserve(nodes);
        self.cells.reserve(edges);
        self.dedup.reserve(edges);
    }

    /// Attach the line index of the translated source, so spans can be
    /// resolved to 1-based line numbers on demand instead of storing a
    /// line per token.
    pub fn set_line_index(&mut self, index: Arc<LineIndex>) {
        self.line_index = Some(index);
    }

    /// Resolve a span to its 1-based start line (0 for dummy spans or when
    /// no line index is attached).
    pub fn line_of(&self, span: Span) -> u32 {
        if span.is_dummy() {
            return 0;
        }
        match &self.line_index {
            Some(index) => index.line_of(span.start),
            None => 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.cells.len()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, kind: NodeKind, props: Props, span: Span) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, props, span });
        self.adj.push(AdjHead::EMPTY);
        id
    }

    /// Add a typed edge. Parallel edges of the same kind are deduplicated.
    pub fn add_edge(&mut self, from: NodeId, kind: EdgeKind, to: NodeId) {
        let edge = Edge { from, kind, to };
        if !self.dedup.insert(edge) {
            return;
        }
        let idx = self.cells.len() as u32;
        self.cells.push(EdgeCell { edge, next_out: NIL, next_in: NIL });
        let from_adj = &mut self.adj[from.index()];
        if from_adj.last_out == NIL {
            from_adj.first_out = idx;
        } else {
            self.cells[from_adj.last_out as usize].next_out = idx;
        }
        let from_adj = &mut self.adj[from.index()];
        from_adj.last_out = idx;
        let to_adj = &mut self.adj[to.index()];
        if to_adj.last_in == NIL {
            let first = idx;
            to_adj.first_in = first;
        } else {
            self.cells[to_adj.last_in as usize].next_in = idx;
        }
        self.adj[to.index()].last_in = idx;
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access (used by passes to refine properties).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All nodes of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |id| self.node(*id).kind == kind)
    }

    /// Outgoing edges of a node, in insertion order.
    pub fn out_edges(&self, id: NodeId) -> EdgeIter<'_> {
        EdgeIter { cells: &self.cells, next: self.adj[id.index()].first_out, forward: true }
    }

    /// Incoming edges of a node, in insertion order.
    pub fn in_edges(&self, id: NodeId) -> EdgeIter<'_> {
        EdgeIter { cells: &self.cells, next: self.adj[id.index()].first_in, forward: false }
    }

    /// Outgoing neighbors over edges matching `pred`.
    pub fn out_by<'a>(
        &'a self,
        id: NodeId,
        pred: impl Fn(EdgeKind) -> bool + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.out_edges(id).filter(move |edge| pred(edge.kind)).map(|edge| edge.to)
    }

    /// Incoming neighbors over edges matching `pred`.
    pub fn in_by<'a>(
        &'a self,
        id: NodeId,
        pred: impl Fn(EdgeKind) -> bool + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.in_edges(id).filter(move |edge| pred(edge.kind)).map(|edge| edge.from)
    }

    /// Outgoing neighbors over exactly one edge kind.
    pub fn out_kind<'a>(&'a self, id: NodeId, kind: EdgeKind) -> impl Iterator<Item = NodeId> + 'a {
        self.out_by(id, move |k| k == kind)
    }

    /// Incoming neighbors over exactly one edge kind.
    pub fn in_kind<'a>(&'a self, id: NodeId, kind: EdgeKind) -> impl Iterator<Item = NodeId> + 'a {
        self.in_by(id, move |k| k == kind)
    }

    /// Outgoing AST children of any role.
    pub fn ast_children<'a>(&'a self, id: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.out_by(id, |k| k.is_ast())
    }

    /// The AST child in a specific role, if any.
    pub fn ast_child(&self, id: NodeId, role: AstRole) -> Option<NodeId> {
        self.out_kind(id, EdgeKind::Ast(role)).next()
    }

    /// All AST children in a specific role.
    pub fn ast_children_role<'a>(
        &'a self,
        id: NodeId,
        role: AstRole,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.out_kind(id, EdgeKind::Ast(role))
    }

    /// The AST parent, if any.
    pub fn ast_parent(&self, id: NodeId) -> Option<NodeId> {
        self.in_by(id, |k| k.is_ast()).next()
    }

    /// Walk up AST parents until a node satisfies `pred`.
    pub fn enclosing(&self, id: NodeId, pred: impl Fn(&Node) -> bool) -> Option<NodeId> {
        let mut current = self.ast_parent(id);
        while let Some(node) = current {
            if pred(self.node(node)) {
                return Some(node);
            }
            current = self.ast_parent(node);
        }
        None
    }

    /// The enclosing function or constructor of a node, if any.
    pub fn enclosing_function(&self, id: NodeId) -> Option<NodeId> {
        if self.node(id).kind.is_function_like() {
            return Some(id);
        }
        self.enclosing(id, |n| n.kind.is_function_like())
    }

    /// The enclosing record (contract) of a node, if any.
    pub fn enclosing_record(&self, id: NodeId) -> Option<NodeId> {
        if self.node(id).kind == NodeKind::RecordDeclaration {
            return Some(id);
        }
        self.enclosing(id, |n| n.kind == NodeKind::RecordDeclaration)
    }

    /// All AST descendants of a node (excluding the node itself).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut result = Vec::new();
        let mut stack: Vec<NodeId> = self.ast_children(id).collect();
        while let Some(node) = stack.pop() {
            result.push(node);
            stack.extend(self.ast_children(node));
        }
        result
    }

    /// Forward reachability over edge kinds matching `pred`, up to
    /// `max_depth` hops (`usize::MAX` for unbounded). Returns the set of
    /// reached nodes, excluding the start unless it lies on a cycle.
    ///
    /// `max_depth` is the lever behind the paper's second validation phase
    /// (§6.3): iteratively reducing the maximal data-flow path length to
    /// avoid path explosion.
    pub fn reach_forward(
        &self,
        start: NodeId,
        pred: impl Fn(EdgeKind) -> bool,
        max_depth: usize,
    ) -> HashSet<NodeId> {
        self.reach(start, &pred, max_depth, true)
    }

    /// Backward reachability over edge kinds matching `pred`.
    pub fn reach_backward(
        &self,
        start: NodeId,
        pred: impl Fn(EdgeKind) -> bool,
        max_depth: usize,
    ) -> HashSet<NodeId> {
        self.reach(start, &pred, max_depth, false)
    }

    fn reach(
        &self,
        start: NodeId,
        pred: &impl Fn(EdgeKind) -> bool,
        max_depth: usize,
        forward: bool,
    ) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((start, 0usize));
        while let Some((node, depth)) = queue.pop_front() {
            if depth >= max_depth {
                continue;
            }
            let edges = if forward { self.out_edges(node) } else { self.in_edges(node) };
            for edge in edges {
                if !pred(edge.kind) {
                    continue;
                }
                let next = if forward { edge.to } else { edge.from };
                if seen.insert(next) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        seen
    }

    /// Whether `to` is reachable from `from` over edges matching `pred`
    /// within `max_depth` hops.
    pub fn reaches(
        &self,
        from: NodeId,
        to: NodeId,
        pred: impl Fn(EdgeKind) -> bool,
        max_depth: usize,
    ) -> bool {
        if from == to {
            return true;
        }
        // Targeted BFS with early exit.
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((from, 0usize));
        while let Some((node, depth)) = queue.pop_front() {
            if depth >= max_depth {
                continue;
            }
            for edge in self.out_edges(node) {
                if !pred(edge.kind) {
                    continue;
                }
                if edge.to == to {
                    return true;
                }
                if seen.insert(edge.to) {
                    queue.push_back((edge.to, depth + 1));
                }
            }
        }
        false
    }

    /// Whether data flows from `from` to `to` (`-[:DFG*]->`), unbounded.
    pub fn dfg_reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.reaches(from, to, |k| k == EdgeKind::Dfg, usize::MAX)
    }

    /// Whether `to` is evaluation-order reachable from `from`
    /// (`-[:EOG*]->`), unbounded.
    pub fn eog_reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.reaches(from, to, |k| k == EdgeKind::Eog, usize::MAX)
    }

    /// One shortest path (list of node ids, start and end inclusive) from
    /// `from` to `to` over edges matching `pred`, if one exists.
    pub fn shortest_path(
        &self,
        from: NodeId,
        to: NodeId,
        pred: impl Fn(EdgeKind) -> bool,
    ) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(node) = queue.pop_front() {
            for edge in self.out_edges(node) {
                if !pred(edge.kind) || prev.contains_key(&edge.to) || edge.to == from {
                    continue;
                }
                prev.insert(edge.to, node);
                if edge.to == to {
                    let mut path = vec![to];
                    let mut current = to;
                    while let Some(&parent) = prev.get(&current) {
                        path.push(parent);
                        current = parent;
                        if current == from {
                            break;
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(edge.to);
            }
        }
        None
    }

    /// The declaration a reference resolves to, if resolved.
    pub fn refers_to(&self, reference: NodeId) -> Option<NodeId> {
        self.out_kind(reference, EdgeKind::RefersTo).next()
    }

    /// All references resolving to a declaration.
    pub fn references_of<'a>(&'a self, decl: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.in_kind(decl, EdgeKind::RefersTo)
    }

    /// Whether the node has no outgoing EOG edge — i.e. it terminates a
    /// program path (queries match `not exists ((last)-[:EOG]->())`).
    pub fn is_eog_exit(&self, id: NodeId) -> bool {
        self.out_kind(id, EdgeKind::Eog).next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(g: &mut Graph, kind: NodeKind, code: &str) -> NodeId {
        g.add_node(
            kind,
            Props { code: code.into(), ..Props::default() },
            Span::DUMMY,
        )
    }

    #[test]
    fn add_and_query() {
        let mut g = Graph::new();
        let a = n(&mut g, NodeKind::CallExpression, "f()");
        let b = n(&mut g, NodeKind::FieldDeclaration, "x");
        g.add_edge(a, EdgeKind::Dfg, b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.dfg_reaches(a, b));
        assert!(!g.dfg_reaches(b, a));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = Graph::new();
        let a = n(&mut g, NodeKind::Literal, "1");
        let b = n(&mut g, NodeKind::Literal, "2");
        g.add_edge(a, EdgeKind::Eog, b);
        g.add_edge(a, EdgeKind::Eog, b);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn transitive_reachability_with_depth_limit() {
        let mut g = Graph::new();
        let chain: Vec<NodeId> =
            (0..5).map(|i| n(&mut g, NodeKind::Literal, &i.to_string())).collect();
        for w in chain.windows(2) {
            g.add_edge(w[0], EdgeKind::Dfg, w[1]);
        }
        assert!(g.reaches(chain[0], chain[4], |k| k == EdgeKind::Dfg, usize::MAX));
        assert!(g.reaches(chain[0], chain[4], |k| k == EdgeKind::Dfg, 4));
        assert!(!g.reaches(chain[0], chain[4], |k| k == EdgeKind::Dfg, 3));
    }

    #[test]
    fn reach_handles_cycles() {
        let mut g = Graph::new();
        let a = n(&mut g, NodeKind::Literal, "a");
        let b = n(&mut g, NodeKind::Literal, "b");
        g.add_edge(a, EdgeKind::Eog, b);
        g.add_edge(b, EdgeKind::Eog, a);
        let reached = g.reach_forward(a, |k| k == EdgeKind::Eog, usize::MAX);
        assert!(reached.contains(&a));
        assert!(reached.contains(&b));
    }

    #[test]
    fn shortest_path_found() {
        let mut g = Graph::new();
        let a = n(&mut g, NodeKind::Literal, "a");
        let b = n(&mut g, NodeKind::Literal, "b");
        let c = n(&mut g, NodeKind::Literal, "c");
        g.add_edge(a, EdgeKind::Eog, b);
        g.add_edge(b, EdgeKind::Eog, c);
        g.add_edge(a, EdgeKind::Dfg, c);
        let p = g.shortest_path(a, c, |k| k == EdgeKind::Eog).unwrap();
        assert_eq!(p, vec![a, b, c]);
        assert!(g.shortest_path(c, a, |k| k == EdgeKind::Eog).is_none());
    }

    #[test]
    fn props_lookup_by_key() {
        let props = Props {
            code: "a + b".into(),
            operator_code: Some("+".into()),
            is_inferred: true,
            ..Props::default()
        };
        assert_eq!(props.get("code").as_deref(), Some("a + b"));
        assert_eq!(props.get("operatorCode").as_deref(), Some("+"));
        assert_eq!(props.get("isInferred").as_deref(), Some("true"));
        assert_eq!(props.get("missing"), None);
    }
}
