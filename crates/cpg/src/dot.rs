//! Graphviz DOT export of a code property graph.
//!
//! Reproduces the presentation of the paper's Figure 2: syntax (AST role)
//! edges dashed gray, EOG edges green, DFG edges blue.

use crate::graph::Graph;
use crate::kinds::{EdgeKind, NodeKind};

/// Render the whole graph in DOT format.
pub fn to_dot(graph: &Graph) -> String {
    to_dot_filtered(graph, |_| true)
}

/// Render only the nodes accepted by `keep` (plus edges between them).
pub fn to_dot_filtered(graph: &Graph, keep: impl Fn(NodeKind) -> bool) -> String {
    let mut out = String::from("digraph cpg {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for id in graph.node_ids() {
        let node = graph.node(id);
        if !keep(node.kind) {
            continue;
        }
        let label = format!(
            "{}\\n{}",
            node.kind.label(),
            escape(&truncate(&node.props.code, 40))
        );
        out.push_str(&format!("  n{} [label=\"{}\"];\n", id.0, label));
    }
    for id in graph.node_ids() {
        if !keep(graph.node(id).kind) {
            continue;
        }
        for edge in graph.out_edges(id) {
            if !keep(graph.node(edge.to).kind) {
                continue;
            }
            let (color, style, label) = match edge.kind {
                EdgeKind::Ast(role) => ("gray", "dashed", role.label().to_string()),
                EdgeKind::Eog => ("green", "solid", "EOG".to_string()),
                EdgeKind::Dfg => ("blue", "solid", "DFG".to_string()),
                EdgeKind::RefersTo => ("black", "dotted", "REFERS_TO".to_string()),
                EdgeKind::Invokes => ("red", "solid", "INVOKES".to_string()),
                EdgeKind::Returns => ("orange", "solid", "RETURNS".to_string()),
            };
            out.push_str(&format!(
                "  n{} -> n{} [color={color}, style={style}, label=\"{label}\", fontsize=8];\n",
                edge.from.0, edge.to.0
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..s.char_indices().take_while(|(i, _)| *i < max).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Cpg;

    #[test]
    fn figure_2_dot_contains_expected_edges() {
        let cpg = Cpg::from_snippet("if (msg.sender == owner) {}").unwrap();
        let dot = to_dot(&cpg.graph);
        assert!(dot.starts_with("digraph cpg {"));
        assert!(dot.contains("msg.sender"));
        assert!(dot.contains("color=green")); // EOG
        assert!(dot.contains("color=blue")); // DFG
        assert!(dot.contains("style=dashed")); // AST
        assert!(dot.contains("LHS"));
        assert!(dot.contains("CONDITION"));
    }

    #[test]
    fn filtered_export_drops_kinds() {
        let cpg = Cpg::from_snippet("if (msg.sender == owner) {}").unwrap();
        let dot = to_dot_filtered(&cpg.graph, |k| k != NodeKind::TranslationUnit);
        assert!(!dot.contains("TranslationUnit"));
    }

    #[test]
    fn escaping_and_truncation() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(truncate("short", 10), "short");
        assert!(truncate(&"x".repeat(100), 40).len() < 50);
    }
}
