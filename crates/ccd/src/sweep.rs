//! Parameter sweep over the CCD grid (Table 9 / Figure 9 of the paper).
//!
//! The paper evaluates N ∈ {3, 5, 7}, η ∈ {0.5..0.9} and ε ∈ {0.5..0.9}
//! against a labelled clone dataset and reports precision/recall per
//! combination. This module runs the same grid against any labelled corpus.
//!
//! # Sweep-once evaluation
//!
//! Naively the 75-cell grid re-runs the whole detection pipeline per cell,
//! but almost everything in that pipeline is shared between cells:
//!
//! * **fingerprints** do not depend on any parameter → computed once,
//! * the **N-gram index** depends only on N → built 3 times, not 75,
//! * **candidate retrieval** depends only on (N, η) → run 15 times,
//! * **pair scores** (Algorithm 1) depend on no parameter at all → each
//!   unordered document pair is scored exactly once across the whole grid,
//!   both directions in one matrix pass,
//! * the five **ε rows** of a (N, η) cell just re-threshold cached scores.
//!
//! [`SweepEngine`] implements that layering; [`evaluate_reference`] keeps
//! the original one-cell-at-a-time path as the oracle for the equivalence
//! property test (`sweep` output is bit-identical to it).

use crate::fingerprint::Fingerprint;
use crate::matcher::{order_independent_similarity_pair, CcdParams, CloneDetector};
use ngram_index::{DocId, NgramIndex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// N values of the Table 9 grid.
const NGRAM_SIZES: [usize; 3] = [3, 5, 7];
/// η values of the Table 9 grid.
const ETAS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];
/// ε values of the Table 9 grid.
const EPSILONS: [f64; 5] = [50.0, 60.0, 70.0, 80.0, 90.0];

/// The paper's parameter grid (Table 9).
pub fn parameter_grid() -> Vec<CcdParams> {
    let mut grid = Vec::new();
    for n in NGRAM_SIZES {
        for eta in ETAS {
            for epsilon in EPSILONS {
                grid.push(CcdParams { ngram_size: n, eta, epsilon });
            }
        }
    }
    grid
}

/// A labelled clone-detection dataset: documents plus ground-truth clone
/// pairs (unordered).
#[derive(Debug, Default, Clone)]
pub struct LabelledCorpus {
    /// (id, source) documents.
    pub documents: Vec<(DocId, String)>,
    /// Ground-truth clone pairs, stored with `a < b`.
    pub clone_pairs: HashSet<(DocId, DocId)>,
}

impl LabelledCorpus {
    /// Add a document.
    pub fn add_document(&mut self, id: DocId, source: impl Into<String>) {
        self.documents.push((id, source.into()));
    }

    /// Mark two documents as true clones.
    pub fn add_clone_pair(&mut self, a: DocId, b: DocId) {
        self.clone_pairs.insert((a.min(b), a.max(b)));
    }

    /// Whether a pair is a ground-truth clone.
    pub fn is_clone(&self, a: DocId, b: DocId) -> bool {
        self.clone_pairs.contains(&(a.min(b), a.max(b)))
    }
}

/// Precision/recall outcome of one parameter combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Parameters evaluated.
    pub params: CcdParams,
    /// True positives (reported pairs that are ground-truth clones).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives (ground-truth pairs not reported).
    pub fn_: usize,
}

impl SweepPoint {
    /// Precision; 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 1.0 when there is nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a reported unordered-pair set against the corpus ground truth.
fn score_reported(
    corpus: &LabelledCorpus,
    params: CcdParams,
    reported: &HashSet<(DocId, DocId)>,
) -> SweepPoint {
    let tp = reported.iter().filter(|(a, b)| corpus.is_clone(*a, *b)).count();
    let fp = reported.len() - tp;
    let fn_ = corpus
        .clone_pairs
        .iter()
        .filter(|(a, b)| !reported.contains(&(*a, *b)))
        .count();
    SweepPoint { params, tp, fp, fn_ }
}

/// Evaluate one parameter combination against a labelled corpus: every
/// document is matched against every other (the §5.7.1 methodology) and
/// reported pairs are scored against the ground truth.
///
/// A pair {a, b} is reported when *either* direction of Algorithm 1
/// passes the (η, ε) filters — the containment semantics of matching a
/// query against a corpus. (The Table 9 honeypot sweep in
/// `pipeline::eval_ccd` additionally requires both directions to agree;
/// see there.)
///
/// This is the reference path: it rebuilds the full detector for its one
/// cell and reuses nothing. [`sweep`] goes through [`SweepEngine`]
/// instead and must produce bit-identical `SweepPoint`s — the equivalence
/// is enforced by a property test.
pub fn evaluate_reference(corpus: &LabelledCorpus, params: CcdParams) -> SweepPoint {
    // Build the detector over all fingerprintable documents; the detector
    // owns the fingerprints, matched back against themselves below.
    let mut detector = CloneDetector::new(params);
    for (id, source) in &corpus.documents {
        if let Some(fp) = CloneDetector::fingerprint_source(source) {
            detector.insert_fingerprint(*id, fp);
        }
    }

    let mut reported: HashSet<(DocId, DocId)> = HashSet::new();
    for (id, fp) in detector.iter_fingerprints() {
        for m in detector.matches(fp) {
            if m.doc != id {
                reported.insert((m.doc.min(id), m.doc.max(id)));
            }
        }
    }
    score_reported(corpus, params, &reported)
}

/// One candidate pair of the sweep, ready for ε thresholding: unordered
/// index pair `(lo, hi)`, directed candidacy flags `(lo→hi, hi→lo)`, and
/// the cached directed scores in the same order.
type ScoredPair = ((usize, usize), (bool, bool), (f64, f64));

/// The sweep-once grid engine: every reusable artifact of the 75-cell
/// evaluation is computed at the outermost layer where its parameters
/// allow (see the module docs for the layering).
///
/// Document ids must be unique; documents that do not fingerprint are
/// skipped, exactly as in [`evaluate_reference`].
pub struct SweepEngine {
    ids: Vec<DocId>,
    fingerprints: Vec<Fingerprint>,
    /// `indexed_text()` of each fingerprint, cached for the 15 candidate
    /// retrievals.
    indexed: Vec<String>,
}

impl SweepEngine {
    /// Fingerprint documents once (fingerprints are parameter-independent).
    pub fn from_documents<'a, I>(docs: I) -> SweepEngine
    where
        I: IntoIterator<Item = (DocId, &'a str)>,
    {
        let mut engine = SweepEngine { ids: Vec::new(), fingerprints: Vec::new(), indexed: Vec::new() };
        for (id, source) in docs {
            if let Some(fp) = CloneDetector::fingerprint_source(source) {
                engine.ids.push(id);
                engine.indexed.push(fp.indexed_text());
                engine.fingerprints.push(fp);
            }
        }
        engine
    }

    /// Engine over a labelled corpus's documents.
    pub fn from_corpus(corpus: &LabelledCorpus) -> SweepEngine {
        Self::from_documents(corpus.documents.iter().map(|(id, s)| (*id, s.as_str())))
    }

    /// Engine over already-computed fingerprints — the `CorpusBuilder`
    /// path in `pipeline::api`, where the fingerprinting pass has been
    /// paid once and the sweep must not repeat it. Documents arrive in the
    /// caller's order; ids must be unique.
    pub fn from_fingerprints<I>(docs: I) -> SweepEngine
    where
        I: IntoIterator<Item = (DocId, Fingerprint)>,
    {
        let mut engine =
            SweepEngine { ids: Vec::new(), fingerprints: Vec::new(), indexed: Vec::new() };
        for (id, fp) in docs {
            engine.ids.push(id);
            engine.indexed.push(fp.indexed_text());
            engine.fingerprints.push(fp);
        }
        engine
    }

    /// Number of fingerprintable documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no document fingerprinted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Visit every cell of the Table 9 grid, in [`parameter_grid`] order,
    /// with the set of *directed* passing pairs: `(query, candidate)`
    /// pairs where the candidate survived the (N, η) filter and
    /// `score(query → candidate) ≥ ε`. Self-pairs are never reported.
    ///
    /// Callers choose the pair semantics: union of directions for the
    /// either-direction corpus sweep ([`sweep`]), intersection for the
    /// both-directions honeypot benchmark (`pipeline::eval_ccd`).
    pub fn for_each_cell<F>(&self, mut visit: F)
    where
        F: FnMut(CcdParams, &HashSet<(DocId, DocId)>),
    {
        static CELLS: telemetry::Counter = telemetry::Counter::new("ccd.sweep.cells");
        static CACHE_HITS: telemetry::Counter =
            telemetry::Counter::new("ccd.sweep.score_cache.hits");
        static CACHE_MISSES: telemetry::Counter =
            telemetry::Counter::new("ccd.sweep.score_cache.misses");
        let _span = telemetry::span("ccd/sweep");
        // Chaos hook: the sweep is infallible, so an injected *error* at
        // `ccd/sweep` escalates to a panic for the isolation layer.
        if let Some(message) = faultinject::fire("ccd/sweep") {
            panic!("faultinject: {message}");
        }
        // Directed Algorithm 1 scores per unordered index pair (lo < hi):
        // (lo → hi, hi → lo). Scores depend on no parameter, so the cache
        // spans the entire grid.
        let mut scores: HashMap<(usize, usize), (f64, f64)> = HashMap::new();
        for n in NGRAM_SIZES {
            // One index per N; documents are keyed by position.
            let _span = telemetry::span("index");
            let index = NgramIndex::from_documents(
                n,
                self.indexed.iter().enumerate().map(|(i, text)| (i as DocId, text.as_str())),
            );
            drop(_span);
            for eta in ETAS {
                // One candidate retrieval per (N, η): directed candidacy
                // flags per unordered pair.
                let mut pairs: HashMap<(usize, usize), (bool, bool)> = HashMap::new();
                for (i, text) in self.indexed.iter().enumerate() {
                    for cand in index.candidates(text, eta) {
                        let j = cand as usize;
                        if j == i {
                            continue;
                        }
                        let flags = pairs.entry((i.min(j), i.max(j))).or_insert((false, false));
                        if i < j {
                            flags.0 = true;
                        } else {
                            flags.1 = true;
                        }
                    }
                }
                // Attach scores, computing both directions of a fresh pair
                // in a single matrix pass.
                let scored: Vec<ScoredPair> = pairs
                    .into_iter()
                    .map(|((lo, hi), flags)| {
                        let score = match scores.get(&(lo, hi)) {
                            Some(cached) => {
                                CACHE_HITS.incr();
                                *cached
                            }
                            None => {
                                CACHE_MISSES.incr();
                                let fresh = order_independent_similarity_pair(
                                    &self.fingerprints[lo],
                                    &self.fingerprints[hi],
                                );
                                scores.insert((lo, hi), fresh);
                                fresh
                            }
                        };
                        ((lo, hi), flags, score)
                    })
                    .collect();
                // The five ε rows just re-threshold the cached scores.
                for epsilon in EPSILONS {
                    let mut directed: HashSet<(DocId, DocId)> = HashSet::new();
                    for &((lo, hi), (fwd, bwd), (s_fwd, s_bwd)) in &scored {
                        if fwd && s_fwd >= epsilon {
                            directed.insert((self.ids[lo], self.ids[hi]));
                        }
                        if bwd && s_bwd >= epsilon {
                            directed.insert((self.ids[hi], self.ids[lo]));
                        }
                    }
                    CELLS.incr();
                    visit(CcdParams { ngram_size: n, eta, epsilon }, &directed);
                }
            }
        }
    }
}

/// Run the full Table 9 grid through the sweep-once engine. Output is
/// bit-identical to mapping [`evaluate_reference`] over
/// [`parameter_grid`], at a fraction of the work.
pub fn sweep(corpus: &LabelledCorpus) -> Vec<SweepPoint> {
    let engine = SweepEngine::from_corpus(corpus);
    let mut points = Vec::with_capacity(NGRAM_SIZES.len() * ETAS.len() * EPSILONS.len());
    engine.for_each_cell(|params, directed| {
        let reported: HashSet<(DocId, DocId)> =
            directed.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        points.push(score_reported(corpus, params, &reported));
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> LabelledCorpus {
        let mut corpus = LabelledCorpus::default();
        corpus.add_document(
            0,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        );
        // Type II clone of 0.
        corpus.add_document(
            1,
            "contract B { function out(uint x) public { msg.sender.transfer(x); } }",
        );
        // Unrelated.
        corpus.add_document(
            2,
            "contract V { mapping(address => bool) voted; uint tally; \
             function vote() public { require(!voted[msg.sender]); \
             voted[msg.sender] = true; tally += 1; } }",
        );
        corpus.add_clone_pair(0, 1);
        corpus
    }

    #[test]
    fn grid_has_75_points() {
        assert_eq!(parameter_grid().len(), 75);
    }

    #[test]
    fn perfect_detection_on_tiny_corpus() {
        let point = evaluate_reference(&tiny_corpus(), CcdParams::best());
        assert_eq!(point.tp, 1, "{point:?}");
        assert_eq!(point.fp, 0, "{point:?}");
        assert_eq!(point.fn_, 0, "{point:?}");
        assert_eq!(point.precision(), 1.0);
        assert_eq!(point.recall(), 1.0);
        assert_eq!(point.f1(), 1.0);
    }

    #[test]
    fn stricter_epsilon_cannot_increase_recall() {
        let corpus = tiny_corpus();
        let loose = evaluate_reference(&corpus, CcdParams { epsilon: 50.0, ..CcdParams::best() });
        let strict = evaluate_reference(&corpus, CcdParams { epsilon: 90.0, ..CcdParams::best() });
        assert!(strict.recall() <= loose.recall() + 1e-9);
    }

    #[test]
    fn empty_corpus_is_well_defined() {
        let point = evaluate_reference(&LabelledCorpus::default(), CcdParams::best());
        assert_eq!(point.precision(), 1.0);
        assert_eq!(point.recall(), 1.0);
        assert_eq!(sweep(&LabelledCorpus::default()).len(), 75);
    }

    #[test]
    fn engine_sweep_matches_reference_on_tiny_corpus() {
        let corpus = tiny_corpus();
        let fast = sweep(&corpus);
        assert_eq!(fast.len(), 75);
        for (point, params) in fast.iter().zip(parameter_grid()) {
            assert_eq!(*point, evaluate_reference(&corpus, params));
        }
    }

    #[test]
    fn engine_skips_unfingerprintable_documents() {
        let mut corpus = tiny_corpus();
        corpus.add_document(99, "not solidity — plain prose that cannot parse");
        let engine = SweepEngine::from_corpus(&corpus);
        assert_eq!(engine.len(), 3);
        for (point, params) in sweep(&corpus).iter().zip(parameter_grid()) {
            assert_eq!(*point, evaluate_reference(&corpus, params));
        }
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Random parseable contract: a few shapes sharing statement
        /// material, so generated corpora contain near-clones, partial
        /// overlaps and unrelated documents — exercising every filter.
        fn doc_strategy() -> impl Strategy<Value = String> {
            ("[a-z]{3,8}", "[a-z]{3,8}", 0usize..4, 0usize..3).prop_map(
                |(name, var, extra, shape)| {
                    let pool = [
                        "msg.sender.transfer(v);",
                        "total += v;",
                        "require(v > 0);",
                    ];
                    let body: String = pool[..extra.min(pool.len())].join(" ");
                    match shape {
                        0 => format!(
                            "contract C {{ uint total; \
                             function {name}(uint v) public {{ {body} \
                             msg.sender.transfer(v); }} }}"
                        ),
                        1 => format!(
                            "contract C {{ mapping(address => bool) voted; uint {var}; \
                             function {name}(uint v) public {{ \
                             require(!voted[msg.sender]); voted[msg.sender] = true; \
                             {var} += 1; {body} }} }}"
                        ),
                        _ => format!(
                            "contract C {{ uint {var}; uint total; \
                             function {name}(uint v) public {{ {var} = v; {body} }} }}"
                        ),
                    }
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// The tentpole invariant: the sweep-once engine's output is
            /// bit-identical to the per-cell reference across the full
            /// 75-point grid, on seeded random corpora.
            #[test]
            fn sweep_once_bit_identical_to_reference_on_full_grid(
                docs in proptest::collection::vec(doc_strategy(), 3..7),
            ) {
                let mut corpus = LabelledCorpus::default();
                for (i, source) in docs.iter().enumerate() {
                    corpus.add_document(i as DocId, source.clone());
                }
                corpus.add_clone_pair(0, 1);
                let fast = sweep(&corpus);
                let grid = parameter_grid();
                prop_assert_eq!(fast.len(), grid.len());
                for (point, params) in fast.iter().zip(grid) {
                    let reference = evaluate_reference(&corpus, params);
                    prop_assert_eq!(*point, reference);
                }
            }
        }
    }
}
