//! Parameter sweep over the CCD grid (Table 9 / Figure 9 of the paper).
//!
//! The paper evaluates N ∈ {3, 5, 7}, η ∈ {0.5..0.9} and ε ∈ {0.5..0.9}
//! against a labelled clone dataset and reports precision/recall per
//! combination. This module runs the same grid against any labelled corpus.

use crate::fingerprint::Fingerprint;
use crate::matcher::{CcdParams, CloneDetector};
use ngram_index::DocId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The paper's parameter grid (Table 9).
pub fn parameter_grid() -> Vec<CcdParams> {
    let mut grid = Vec::new();
    for n in [3usize, 5, 7] {
        for eta in [0.5, 0.6, 0.7, 0.8, 0.9] {
            for epsilon in [50.0, 60.0, 70.0, 80.0, 90.0] {
                grid.push(CcdParams { ngram_size: n, eta, epsilon });
            }
        }
    }
    grid
}

/// A labelled clone-detection dataset: documents plus ground-truth clone
/// pairs (unordered).
#[derive(Debug, Default, Clone)]
pub struct LabelledCorpus {
    /// (id, source) documents.
    pub documents: Vec<(DocId, String)>,
    /// Ground-truth clone pairs, stored with `a < b`.
    pub clone_pairs: HashSet<(DocId, DocId)>,
}

impl LabelledCorpus {
    /// Add a document.
    pub fn add_document(&mut self, id: DocId, source: impl Into<String>) {
        self.documents.push((id, source.into()));
    }

    /// Mark two documents as true clones.
    pub fn add_clone_pair(&mut self, a: DocId, b: DocId) {
        self.clone_pairs.insert((a.min(b), a.max(b)));
    }

    /// Whether a pair is a ground-truth clone.
    pub fn is_clone(&self, a: DocId, b: DocId) -> bool {
        self.clone_pairs.contains(&(a.min(b), a.max(b)))
    }
}

/// Precision/recall outcome of one parameter combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Parameters evaluated.
    pub params: CcdParams,
    /// True positives (reported pairs that are ground-truth clones).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives (ground-truth pairs not reported).
    pub fn_: usize,
}

impl SweepPoint {
    /// Precision; 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 1.0 when there is nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluate one parameter combination against a labelled corpus: every
/// document is matched against every other (the §5.7.1 methodology) and
/// reported pairs are scored against the ground truth.
pub fn evaluate(corpus: &LabelledCorpus, params: CcdParams) -> SweepPoint {
    // Build the detector over all fingerprintable documents.
    let mut detector = CloneDetector::new(params);
    let mut fingerprints: Vec<(DocId, Fingerprint)> = Vec::new();
    for (id, source) in &corpus.documents {
        if let Some(fp) = CloneDetector::fingerprint_source(source) {
            detector.insert_fingerprint(*id, fp.clone());
            fingerprints.push((*id, fp));
        }
    }

    let mut reported: HashSet<(DocId, DocId)> = HashSet::new();
    for (id, fp) in &fingerprints {
        for m in detector.matches(fp) {
            if m.doc != *id {
                reported.insert((m.doc.min(*id), m.doc.max(*id)));
            }
        }
    }

    let tp = reported.iter().filter(|(a, b)| corpus.is_clone(*a, *b)).count();
    let fp = reported.len() - tp;
    let fn_ = corpus
        .clone_pairs
        .iter()
        .filter(|(a, b)| !reported.contains(&(*a, *b)))
        .count();
    SweepPoint { params, tp, fp, fn_ }
}

/// Run the full Table 9 grid.
pub fn sweep(corpus: &LabelledCorpus) -> Vec<SweepPoint> {
    parameter_grid().into_iter().map(|p| evaluate(corpus, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> LabelledCorpus {
        let mut corpus = LabelledCorpus::default();
        corpus.add_document(
            0,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }",
        );
        // Type II clone of 0.
        corpus.add_document(
            1,
            "contract B { function out(uint x) public { msg.sender.transfer(x); } }",
        );
        // Unrelated.
        corpus.add_document(
            2,
            "contract V { mapping(address => bool) voted; uint tally; \
             function vote() public { require(!voted[msg.sender]); \
             voted[msg.sender] = true; tally += 1; } }",
        );
        corpus.add_clone_pair(0, 1);
        corpus
    }

    #[test]
    fn grid_has_75_points() {
        assert_eq!(parameter_grid().len(), 75);
    }

    #[test]
    fn perfect_detection_on_tiny_corpus() {
        let point = evaluate(&tiny_corpus(), CcdParams::best());
        assert_eq!(point.tp, 1, "{point:?}");
        assert_eq!(point.fp, 0, "{point:?}");
        assert_eq!(point.fn_, 0, "{point:?}");
        assert_eq!(point.precision(), 1.0);
        assert_eq!(point.recall(), 1.0);
        assert_eq!(point.f1(), 1.0);
    }

    #[test]
    fn stricter_epsilon_cannot_increase_recall() {
        let corpus = tiny_corpus();
        let loose = evaluate(&corpus, CcdParams { epsilon: 50.0, ..CcdParams::best() });
        let strict = evaluate(&corpus, CcdParams { epsilon: 90.0, ..CcdParams::best() });
        assert!(strict.recall() <= loose.recall() + 1e-9);
    }

    #[test]
    fn empty_corpus_is_well_defined() {
        let point = evaluate(&LabelledCorpus::default(), CcdParams::best());
        assert_eq!(point.precision(), 1.0);
        assert_eq!(point.recall(), 1.0);
    }
}
