//! Fingerprint generation (§5.4 of the paper).
//!
//! Each function's token stream is fed token-by-token into the fuzzy hasher
//! (enforcing context on piece boundaries); the resulting sub-fingerprints
//! are concatenated with `.` between functions and `:` between contracts.
//! The separators let the matcher compare function fingerprints
//! irrespective of their order in the code (§5.5).

use crate::tokenize::TokenizedUnit;
use fuzzyhash::FuzzyHasher;
use serde::{Deserialize, Serialize};

/// Trigger block size of the fuzzy hasher: the expected number of tokens
/// per digest piece. Fixed across all fingerprints so digests are mutually
/// comparable. Two tokens per piece keeps sub-fingerprints long enough for
/// the edit distance to discriminate between small functions.
pub const BLOCK_SIZE: u32 = 2;

/// A structured fingerprint: base-64 sub-fingerprints per function,
/// `.`-separated within a contract, `:`-separated between contracts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint(pub String);

impl Fingerprint {
    /// Compute the fingerprint of a tokenized unit.
    ///
    /// Only function bodies are hashed: after normalization every contract
    /// header reads `contract c`, so a header piece would match everything
    /// and only dilute the similarity score. Headers with inheritance
    /// (`is` clauses) still carry signal and are kept.
    pub fn of(unit: &TokenizedUnit) -> Fingerprint {
        let mut contracts = Vec::new();
        for contract in &unit.contracts {
            let mut parts = Vec::new();
            if contract.header.len() > 2 {
                parts.push(hash_stream(&contract.header));
            }
            for function in &contract.functions {
                parts.push(hash_stream(function));
            }
            contracts.push(parts.join("."));
        }
        Fingerprint(contracts.join(":"))
    }

    /// The flat text form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length in characters, separators included.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the fingerprint is empty (nothing tokenizable).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The function-level sub-fingerprints, flattened across contracts.
    /// Empty sub-fingerprints (empty function bodies hashing to nothing)
    /// are dropped.
    pub fn sub_fingerprints(&self) -> Vec<&str> {
        self.0
            .split(['.', ':'])
            .filter(|s| !s.is_empty())
            .collect()
    }

    /// The fingerprint text with separators removed, as indexed for N-gram
    /// retrieval.
    pub fn indexed_text(&self) -> String {
        self.0.replace(['.', ':'], "")
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn hash_stream(tokens: &[intern::Symbol]) -> String {
    let mut hasher = FuzzyHasher::new(BLOCK_SIZE);
    for token in tokens {
        hasher.update_token(token);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_unit;
    use crate::tokenize::tokenize_unit;
    use solidity::parse_snippet;

    fn fp(src: &str) -> Fingerprint {
        let mut unit = parse_snippet(src).unwrap();
        normalize_unit(&mut unit);
        Fingerprint::of(&tokenize_unit(&unit))
    }

    #[test]
    fn functions_are_separated_by_periods() {
        let f = fp("contract A { function x() { a = 1; } function y() { b = 2; } }");
        // Two functions → two sub-fingerprints (plain headers carry no
        // signal after normalization and are not hashed).
        assert_eq!(f.0.matches('.').count(), 1);
        assert_eq!(f.sub_fingerprints().len(), 2);
    }

    #[test]
    fn contracts_are_separated_by_colons() {
        let f = fp("contract A { function x() {} } contract B { function y() {} }");
        assert_eq!(f.0.matches(':').count(), 1);
    }

    #[test]
    fn type_ii_clones_have_identical_fingerprints() {
        let a = fp("contract Bank { function pay(uint amount) public { msg.sender.transfer(amount); } }");
        let b = fp("contract Safe { function give(uint total) external { msg.sender.transfer(total); } }");
        assert_eq!(a, b);
    }

    #[test]
    fn type_i_clones_have_identical_fingerprints() {
        let a = fp("contract A { function f() { x = 1; } }");
        let b = fp("contract A {\n  // comment\n  function f() {\n    x = 1;\n  }\n}");
        assert_eq!(a, b);
    }

    #[test]
    fn figure_5_local_change_property() {
        // Adding a constructor only perturbs part of the fingerprint: the
        // withdraw function's sub-fingerprint is unchanged.
        let unsafe_fp = fp(
            "contract Unsafe { \
               function unsafeWithdraw(uint value) { msg.sender.transfer(value); } }",
        );
        let safe_fp = fp(
            "contract Unsafe { \
               function unsafeWithdraw(uint value) { msg.sender.transfer(value); } \
               address deployer; \
               constructor() { deployer = msg.sender; } }",
        );
        let shared: Vec<&str> = unsafe_fp
            .sub_fingerprints()
            .into_iter()
            .filter(|s| safe_fp.sub_fingerprints().contains(s))
            .collect();
        // The untouched withdraw function's piece survives verbatim.
        assert!(!shared.is_empty(), "{unsafe_fp} vs {safe_fp}");
    }

    #[test]
    fn different_code_different_fingerprints() {
        let a = fp("contract A { function f() { x = 1; } }");
        let b = fp("contract B { function g(address to, uint v) { require(msg.sender == owner); to.transfer(v); } }");
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_text_strips_separators() {
        let f = fp("contract A { function x() {} } contract B { function y() {} }");
        assert!(!f.indexed_text().contains(':'));
        assert!(!f.indexed_text().contains('.'));
    }
}
