//! CCD — the Contract Clone Detector.
//!
//! Detects Type I (exact), Type II (renamed) and Type III (near-miss)
//! clones of Solidity code snippets across large contract corpora (§5 of
//! the paper), via the pipeline of Figure 4:
//!
//! 1. **Parsing** ([`solidity`], snippet-tolerant; comments/whitespace
//!    vanish in the lexer → Type I),
//! 2. **Normalization** ([`normalize`]: identifier renaming, type-based
//!    variable names, string-literal folding, visibility removal →
//!    Type II),
//! 3. **Tokenization** ([`tokenize`]: per-contract/per-function token
//!    streams split on symbols),
//! 4. **Fingerprinting** ([`fingerprint`]: token-wise fuzzy hashing;
//!    `.`/`:` separators between functions/contracts),
//! 5. **Matching** ([`matcher`]: η N-gram pre-filter + Algorithm 1
//!    order-independent edit-distance similarity ε → Type III).
//!
//! ```
//! use ccd::{CcdParams, CloneDetector};
//!
//! let mut detector = CloneDetector::new(CcdParams::best());
//! detector.insert_source(1, "contract Wallet { \
//!     function takeOut(uint amount) public { msg.sender.transfer(amount); } }");
//! let query = CloneDetector::fingerprint_source(
//!     "contract Unsafe { function w(uint v) public { msg.sender.transfer(v); } }",
//! ).unwrap();
//! let matches = detector.matches(&query);
//! assert_eq!(matches[0].doc, 1); // Type II clone found
//! ```


#![warn(missing_docs)]

pub mod fingerprint;
pub mod matcher;
pub mod normalize;
pub mod sweep;
pub mod tokenize;

pub use fingerprint::Fingerprint;
pub use solidity::AnalysisError;
pub use matcher::{
    order_independent_similarity, order_independent_similarity_pair, CcdParams, CloneDetector,
    CloneMatch,
};
pub use sweep::{
    evaluate_reference, parameter_grid, sweep, LabelledCorpus, SweepEngine, SweepPoint,
};
