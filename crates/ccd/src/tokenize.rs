//! Structured tokenization (§5.3 of the paper).
//!
//! The normalized source is split into tokens per contract and per
//! function: state-variable and event declarations are ignored, and only
//! contract declarations, function declarations and function-level
//! statements are kept. Code is divided on symbols, preserving member
//! access dots and operators but dropping grouping punctuation — e.g.
//! `msg.sender.transfer(uint)` becomes
//! `['msg', '.', 'sender', '.', 'transfer', 'uint']`.

use intern::Symbol;
use solidity::ast::*;
use solidity::lexer::lex;
use solidity::printer;
use solidity::token::TokenKind;

/// Token streams of one normalized source unit, structured for
/// fingerprinting: functions grouped under their contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TokenizedUnit {
    /// One entry per contract (snippet-level functions and statements are
    /// collected under synthetic contracts).
    pub contracts: Vec<TokenizedContract>,
}

/// Token streams of one contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TokenizedContract {
    /// Tokens of the contract header (`contract c is c2`).
    pub header: Vec<Symbol>,
    /// Tokens of each function body (including its header), in source
    /// order.
    pub functions: Vec<Vec<Symbol>>,
}

impl TokenizedUnit {
    /// Total token count across all contracts and functions.
    pub fn token_count(&self) -> usize {
        self.contracts
            .iter()
            .map(|c| {
                c.header.len() + c.functions.iter().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    /// Whether nothing tokenizable was found.
    pub fn is_empty(&self) -> bool {
        self.token_count() == 0
    }
}

/// Punctuation kept as tokens (operators and member access); everything
/// else (brackets, separators) is dropped.
fn keep_punct(p: &str) -> bool {
    !matches!(p, "(" | ")" | "{" | "}" | "[" | "]" | ";" | ",")
}

/// Split a source fragment into tokens using the Solidity lexer, dropping
/// grouping punctuation.
pub fn split_tokens(fragment: &str) -> Vec<Symbol> {
    let Ok(tokens) = lex(fragment) else {
        return Vec::new();
    };
    tokens
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Ident(s) => Some(s),
            TokenKind::Keyword(k) => Some(Symbol::intern(k.as_str())),
            TokenKind::Number(n) => Some(n),
            TokenKind::Str(_) => Some("stringLiteral".into()),
            TokenKind::HexStr(h) => Some(h),
            TokenKind::Punct(p) if keep_punct(p) => Some(Symbol::intern(p)),
            _ => None,
        })
        .collect()
}

/// Tokenize a (normalized) source unit.
pub fn tokenize_unit(unit: &SourceUnit) -> TokenizedUnit {
    let mut out = TokenizedUnit::default();
    // Free-standing functions and bare statements are grouped under
    // synthetic contracts so every fingerprint has the same two-level
    // structure.
    let mut loose_functions: Vec<Vec<Symbol>> = Vec::new();
    let mut loose_statements: Vec<String> = Vec::new();

    for item in &unit.items {
        match item {
            SourceItem::Contract(c) => out.contracts.push(tokenize_contract(c)),
            SourceItem::Function(f) => loose_functions.push(tokenize_function(f)),
            SourceItem::Modifier(m) => loose_functions.push(tokenize_modifier(m)),
            SourceItem::Statement(s) => {
                loose_statements.push(printer::print_stmt(s));
            }
            // State variables and events are ignored (§5.3).
            _ => {}
        }
    }

    if !loose_statements.is_empty() {
        loose_functions.push(split_tokens(&loose_statements.join("\n")));
    }
    if !loose_functions.is_empty() {
        out.contracts.push(TokenizedContract {
            header: Vec::new(),
            functions: loose_functions,
        });
    }
    out.contracts.retain(|c| !c.functions.is_empty() || !c.header.is_empty());
    out
}

fn tokenize_contract(c: &ContractDef) -> TokenizedContract {
    let mut header = vec![Symbol::intern(c.kind.as_str()), c.name];
    for base in &c.bases {
        header.push("is".into());
        header.push(base.name);
    }
    let mut functions = Vec::new();
    for part in &c.parts {
        match part {
            ContractPart::Function(f) => functions.push(tokenize_function(f)),
            ContractPart::Modifier(m) => functions.push(tokenize_modifier(m)),
            // State variables and events are ignored (§5.3).
            _ => {}
        }
    }
    TokenizedContract { header, functions }
}

fn tokenize_function(f: &FunctionDef) -> Vec<Symbol> {
    split_tokens(&printer::print_function(f))
}

fn tokenize_modifier(m: &ModifierDef) -> Vec<Symbol> {
    let header = format!("modifier {}", m.name);
    let body = m
        .body
        .as_ref()
        .map(|b| {
            b.statements
                .iter()
                .map(printer::print_stmt)
                .collect::<Vec<_>>()
                .join("\n")
        })
        .unwrap_or_default();
    split_tokens(&format!("{header} {body}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use solidity::parse_snippet;

    #[test]
    fn paper_tokenization_example() {
        let tokens = split_tokens("msg.sender.transfer(uint)");
        assert_eq!(
            tokens,
            vec!["msg", ".", "sender", ".", "transfer", "uint"]
        );
    }

    #[test]
    fn operators_are_kept() {
        let tokens = split_tokens("a += b * 2;");
        assert_eq!(tokens, vec!["a", "+=", "b", "*", "2"]);
    }

    #[test]
    fn contract_and_functions_are_structured() {
        let unit = parse_snippet(
            "contract c { uint x; \
             function f(uint) { msg.sender.transfer(uint); } \
             function f(uint) { x = uint; } }",
        )
        .unwrap();
        let t = tokenize_unit(&unit);
        assert_eq!(t.contracts.len(), 1);
        assert_eq!(t.contracts[0].header[0], "contract");
        assert_eq!(t.contracts[0].functions.len(), 2);
    }

    #[test]
    fn state_vars_and_events_are_ignored() {
        let unit = parse_snippet(
            "contract c { uint balance; event E(uint x); function f() {} }",
        )
        .unwrap();
        let t = tokenize_unit(&unit);
        let all: Vec<&Symbol> = t.contracts[0].functions.iter().flatten().collect();
        assert!(!all.iter().any(|t| *t == "balance"));
        assert!(!all.iter().any(|t| *t == "E"));
    }

    #[test]
    fn loose_statements_form_synthetic_function() {
        let unit = parse_snippet("x = 1;\ny = x + 2;").unwrap();
        let t = tokenize_unit(&unit);
        assert_eq!(t.contracts.len(), 1);
        assert_eq!(t.contracts[0].functions.len(), 1);
        assert!(t.contracts[0].functions[0].contains(&"+".into()));
    }

    #[test]
    fn empty_unit_is_empty() {
        let unit = parse_snippet("pragma solidity ^0.8.0;").unwrap();
        let t = tokenize_unit(&unit);
        assert!(t.is_empty());
    }
}
