//! Fingerprint matching (§5.5 of the paper).
//!
//! Two challenges drive the design: **execution time** — solved by an
//! N-gram pre-filter retrieving only candidates sharing ≥ η of the query's
//! N-grams — and **code order** — solved by the order-independent
//! similarity of Algorithm 1, which matches every sub-fingerprint of one
//! fingerprint against the best-scoring sub-fingerprint of the other.

use crate::fingerprint::Fingerprint;
use crate::normalize::normalize_unit;
use crate::tokenize::tokenize_unit;
use fuzzyhash::similarity_above;
use ngram_index::{DocId, NgramIndex};
use serde::{Deserialize, Serialize};
use solidity::AnalysisError;
use std::sync::Arc;

/// CCD matching parameters (Table 9 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcdParams {
    /// N-gram size for candidate retrieval (paper sweeps {3, 5, 7}).
    pub ngram_size: usize,
    /// η — minimum shared-N-gram fraction for a candidate (0..=1).
    pub eta: f64,
    /// ε — minimum order-independent similarity for a clone (0..=100).
    pub epsilon: f64,
}

impl CcdParams {
    /// The paper's best precision/recall trade-off (§5.7.1): N = 3,
    /// η = 0.5, ε = 0.7.
    pub fn best() -> CcdParams {
        CcdParams { ngram_size: 3, eta: 0.5, epsilon: 70.0 }
    }

    /// The conservative high-confidence configuration of the large-scale
    /// experiment (§6.3): N = 3, η = 0.5, ε = 0.9.
    pub fn conservative() -> CcdParams {
        CcdParams { ngram_size: 3, eta: 0.5, epsilon: 90.0 }
    }
}

impl Default for CcdParams {
    fn default() -> Self {
        CcdParams::best()
    }
}

/// Algorithm 1 — order-independent similarity score ε of two fingerprints.
///
/// Every sub-fingerprint `s1 ∈ f1` is scored against all `s2 ∈ f2` with the
/// δ edit-distance similarity; the final score is the mean of the per-`s1`
/// maxima.
///
/// The per-`s1` running best is threaded into the δ computation as a lower
/// bound ([`fuzzyhash::similarity_above`]): sub-fingerprints whose length
/// gap already caps δ at or below the best are skipped outright, the rest
/// run a banded edit distance that aborts once the band is exceeded. Both
/// prunings only discard scores that provably cannot raise the maximum, so
/// the result is bit-identical to the exhaustive double loop.
pub fn order_independent_similarity(f1: &Fingerprint, f2: &Fingerprint) -> f64 {
    let subs1 = f1.sub_fingerprints();
    let subs2 = f2.sub_fingerprints();
    if subs1.is_empty() || subs2.is_empty() {
        return if subs1.is_empty() && subs2.is_empty() { 100.0 } else { 0.0 };
    }
    let mut total = 0.0;
    for s1 in &subs1 {
        let mut best = 0.0f64;
        for s2 in &subs2 {
            if let Some(score) = similarity_above(s1, s2, best) {
                best = best.max(score);
            }
        }
        total += best;
    }
    total / subs1.len() as f64
}

/// Both directions of Algorithm 1 in a single pass over the
/// |subs(f1)| × |subs(f2)| score matrix: row maxima average to
/// `score(f1 → f2)`, column maxima to `score(f2 → f1)`.
///
/// δ is symmetric, so one matrix serves both directions — this halves the
/// edit-distance work of the all-pairs sweep, which needs both. Pruning
/// uses the *smaller* of the two running bests for a cell (a score can
/// only matter if it raises its row or its column maximum), preserving
/// bit-identity with two independent [`order_independent_similarity`]
/// calls.
pub fn order_independent_similarity_pair(f1: &Fingerprint, f2: &Fingerprint) -> (f64, f64) {
    let subs1 = f1.sub_fingerprints();
    let subs2 = f2.sub_fingerprints();
    if subs1.is_empty() || subs2.is_empty() {
        let score = if subs1.is_empty() && subs2.is_empty() { 100.0 } else { 0.0 };
        return (score, score);
    }
    let mut col_best = vec![0.0f64; subs2.len()];
    let mut total_rows = 0.0;
    for s1 in &subs1 {
        let mut row_best = 0.0f64;
        for (j, s2) in subs2.iter().enumerate() {
            let floor = row_best.min(col_best[j]);
            if let Some(score) = similarity_above(s1, s2, floor) {
                row_best = row_best.max(score);
                col_best[j] = col_best[j].max(score);
            }
        }
        total_rows += row_best;
    }
    let forward = total_rows / subs1.len() as f64;
    let backward = col_best.iter().sum::<f64>() / subs2.len() as f64;
    (forward, backward)
}

/// A match result: document id and its ε score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloneMatch {
    /// The matched document.
    pub doc: DocId,
    /// Order-independent similarity (0..=100).
    pub score: f64,
}

/// A corpus of fingerprinted documents with N-gram-accelerated clone
/// search — the CCD pipeline of Figure 4.
///
/// `Clone` is cheap-ish: the fingerprint vector is shared by reference
/// count (copy-on-write on the next insert); only the postings map is
/// deep-copied. The corpus handle in `pipeline` relies on this for its
/// `Arc::make_mut` insert path.
#[derive(Clone)]
pub struct CloneDetector {
    params: CcdParams,
    index: NgramIndex,
    /// Shared so that several detectors (e.g. per-parameter sweeps or the
    /// analysis service's warm state) can point at one corpus without
    /// cloning every fingerprint; uniquely owned during the build phase.
    fingerprints: Arc<Vec<(DocId, Fingerprint)>>,
}

impl CloneDetector {
    /// Create an empty detector with the given parameters.
    pub fn new(params: CcdParams) -> CloneDetector {
        CloneDetector {
            params,
            index: NgramIndex::new(params.ngram_size),
            fingerprints: Arc::new(Vec::new()),
        }
    }

    /// Build a detector over an already-fingerprinted shared corpus. Only
    /// the N-gram index is constructed; the fingerprints themselves are
    /// borrowed through the `Arc`, so several detectors (different
    /// parameters, different service workers) share one corpus allocation.
    pub fn from_shared(params: CcdParams, corpus: Arc<Vec<(DocId, Fingerprint)>>) -> CloneDetector {
        let mut index = NgramIndex::new(params.ngram_size);
        for (doc, fp) in corpus.iter() {
            index.insert(*doc, &fp.indexed_text());
        }
        CloneDetector { params, index, fingerprints: corpus }
    }

    /// Reassemble a detector from an already-built N-gram index and its
    /// corpus — the snapshot warm-start path: nothing is re-grammed.
    ///
    /// The caller (the validated snapshot loader in `index-store`)
    /// guarantees `index` was built over exactly `corpus`; a detector
    /// assembled from mismatched parts silently misses candidates, so the
    /// `n`-vs-params mismatch is at least rejected here.
    pub fn from_parts(
        params: CcdParams,
        corpus: Arc<Vec<(DocId, Fingerprint)>>,
        index: NgramIndex,
    ) -> Result<CloneDetector, AnalysisError> {
        if index.n() != params.ngram_size {
            return Err(AnalysisError::index_corrupt(format!(
                "snapshot index has n={}, params want n={}",
                index.n(),
                params.ngram_size
            )));
        }
        if index.len() != corpus.len() {
            return Err(AnalysisError::index_corrupt(format!(
                "snapshot index covers {} docs, corpus has {}",
                index.len(),
                corpus.len()
            )));
        }
        Ok(CloneDetector { params, index, fingerprints: corpus })
    }

    /// The shared fingerprint corpus, cloneable by reference count only.
    pub fn shared_fingerprints(&self) -> Arc<Vec<(DocId, Fingerprint)>> {
        Arc::clone(&self.fingerprints)
    }

    /// The configured parameters.
    pub fn params(&self) -> CcdParams {
        self.params
    }

    /// The detector's N-gram index — read access for the snapshot writer,
    /// which serializes the postings instead of re-deriving them.
    pub fn index(&self) -> &NgramIndex {
        &self.index
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// The indexed fingerprints, in insertion order. The detector already
    /// owns every fingerprint, so sweep-style callers iterate here instead
    /// of keeping a shadow copy.
    pub fn iter_fingerprints(&self) -> impl Iterator<Item = (DocId, &Fingerprint)> + '_ {
        self.fingerprints.iter().map(|(doc, fp)| (*doc, fp))
    }

    /// Normalize, tokenize and fingerprint a source fragment, reporting
    /// *why* it is not fingerprintable: a parse failure carries its
    /// location, an empty token stream (nothing hashable in the fragment)
    /// is an invalid request.
    pub fn try_fingerprint_source(source: &str) -> Result<Fingerprint, AnalysisError> {
        static FINGERPRINTS: telemetry::Counter = telemetry::Counter::new("ccd.fingerprints");
        static FAILURES: telemetry::Counter =
            telemetry::Counter::new("ccd.fingerprint_failures");
        let _stage = telemetry::trace::stage("ccd-fingerprint");
        let fingerprint = (|| {
            let mut unit = solidity::parse_snippet(source)?;
            normalize_unit(&mut unit);
            let tokens = tokenize_unit(&unit);
            if tokens.is_empty() {
                return Err(AnalysisError::invalid(
                    "nothing fingerprintable in the fragment",
                ));
            }
            Ok(Fingerprint::of(&tokens))
        })();
        match fingerprint {
            Ok(_) => FINGERPRINTS.incr(),
            Err(_) => FAILURES.incr(),
        }
        fingerprint
    }

    /// Normalize, tokenize and fingerprint a source fragment. Returns
    /// `None` when the fragment does not parse or nothing is tokenizable;
    /// use [`CloneDetector::try_fingerprint_source`] to learn why.
    pub fn fingerprint_source(source: &str) -> Option<Fingerprint> {
        Self::try_fingerprint_source(source).ok()
    }

    /// Index a pre-computed fingerprint under a document id.
    ///
    /// Inserting is normally a build-phase operation. If the corpus is
    /// already shared with another detector (via
    /// [`CloneDetector::from_shared`] or
    /// [`CloneDetector::shared_fingerprints`]), the shared storage is
    /// cloned first (copy-on-write) so this detector diverges instead of
    /// panicking; the other detectors keep the old corpus.
    pub fn insert_fingerprint(&mut self, doc: DocId, fingerprint: Fingerprint) {
        self.index.insert(doc, &fingerprint.indexed_text());
        Arc::make_mut(&mut self.fingerprints).push((doc, fingerprint));
    }

    /// Fingerprint and index a source fragment; returns `false` when the
    /// fragment is not fingerprintable.
    pub fn insert_source(&mut self, doc: DocId, source: &str) -> bool {
        match Self::fingerprint_source(source) {
            Some(fp) => {
                self.insert_fingerprint(doc, fp);
                true
            }
            None => false,
        }
    }

    /// All clones of `query` in the corpus: N-gram candidates (η filter)
    /// scored with Algorithm 1 and thresholded at ε. Sorted by descending
    /// score.
    pub fn matches(&self, query: &Fingerprint) -> Vec<CloneMatch> {
        static QUERIES: telemetry::Counter = telemetry::Counter::new("ccd.matcher.queries");
        static MATCHES: telemetry::Counter = telemetry::Counter::new("ccd.matcher.matches");
        QUERIES.incr();
        let _stage = telemetry::trace::stage("ccd-match");
        // Chaos hook: matching is infallible, so an injected *error* at
        // `ccd/match` escalates to a panic for the isolation layer.
        if let Some(message) = faultinject::fire("ccd/match") {
            panic!("faultinject: {message}");
        }
        let candidates = self.index.candidates(&query.indexed_text(), self.params.eta);
        let candidate_set: std::collections::HashSet<DocId> = candidates.into_iter().collect();
        telemetry::trace::annotate("candidates", candidate_set.len());
        let mut matches: Vec<CloneMatch> = self
            .fingerprints
            .iter()
            .filter(|(doc, _)| candidate_set.contains(doc))
            .filter_map(|(doc, fp)| {
                let score = order_independent_similarity(query, fp);
                (score >= self.params.epsilon).then_some(CloneMatch { doc: *doc, score })
            })
            .collect();
        matches.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        MATCHES.add(matches.len() as u64);
        matches
    }

    /// Brute-force variant without the N-gram pre-filter — the baseline of
    /// the "Execution Time" challenge (§5.5), kept for the ablation bench.
    pub fn matches_bruteforce(&self, query: &Fingerprint) -> Vec<CloneMatch> {
        let mut matches: Vec<CloneMatch> = self
            .fingerprints
            .iter()
            .filter_map(|(doc, fp)| {
                let score = order_independent_similarity(query, fp);
                (score >= self.params.epsilon).then_some(CloneMatch { doc: *doc, score })
            })
            .collect();
        matches.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNIPPET: &str = "contract Unsafe { \
        function unsafeWithdraw(uint value) public { msg.sender.transfer(value); } }";

    /// Type II clone: renamed identifiers.
    const RENAMED: &str = "contract Wallet { \
        function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

    /// Type III clone: added statements around the copied function.
    const EXTENDED: &str = "contract Wallet { \
        address deployer; \
        constructor() { deployer = msg.sender; } \
        function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

    const UNRELATED: &str = "contract Voting { \
        mapping(address => bool) voted; uint yes; uint no; \
        function vote(bool support) public { \
          require(!voted[msg.sender]); voted[msg.sender] = true; \
          if (support) { yes += 1; } else { no += 1; } } \
        function tally() public returns (uint, uint) { return (yes, no); } }";

    fn detector_with_corpus() -> CloneDetector {
        let mut d = CloneDetector::new(CcdParams::best());
        assert!(d.insert_source(0, RENAMED));
        assert!(d.insert_source(1, EXTENDED));
        assert!(d.insert_source(2, UNRELATED));
        d
    }

    #[test]
    fn type_ii_clone_scores_100() {
        let d = detector_with_corpus();
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        let m = d.matches(&q);
        let exact = m.iter().find(|m| m.doc == 0).expect("renamed clone found");
        assert_eq!(exact.score, 100.0);
    }

    #[test]
    fn type_iii_clone_scores_high_but_below_100() {
        let d = detector_with_corpus();
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        let m = d.matches(&q);
        let near = m.iter().find(|m| m.doc == 1).expect("extended clone found");
        assert!(near.score >= 70.0, "{}", near.score);
    }

    #[test]
    fn unrelated_contract_is_not_matched() {
        let d = detector_with_corpus();
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        let m = d.matches(&q);
        assert!(m.iter().all(|m| m.doc != 2), "{m:?}");
    }

    #[test]
    fn order_independence() {
        // Same functions, swapped order → still 100.
        let a = CloneDetector::fingerprint_source(
            "contract C { function f() { x = 1; } function g() { y = 2; } }",
        )
        .unwrap();
        let b = CloneDetector::fingerprint_source(
            "contract C { function g() { y = 2; } function f() { x = 1; } }",
        )
        .unwrap();
        assert_eq!(order_independent_similarity(&a, &b), 100.0);
    }

    #[test]
    fn bruteforce_and_filtered_agree_on_strong_clones() {
        let d = detector_with_corpus();
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        let filtered: Vec<u64> = d.matches(&q).iter().map(|m| m.doc).collect();
        let brute: Vec<u64> = d.matches_bruteforce(&q).iter().map(|m| m.doc).collect();
        // The filter may drop weak candidates but must keep the exact clone.
        assert!(brute.contains(&0));
        assert!(filtered.contains(&0));
    }

    #[test]
    fn unparsable_source_is_rejected() {
        let mut d = CloneDetector::new(CcdParams::best());
        assert!(!d.insert_source(9, "this is prose, not solidity at all — just words"));
        assert!(d.is_empty());
    }

    #[test]
    fn conservative_params_demand_higher_similarity() {
        let mut d = CloneDetector::new(CcdParams::conservative());
        d.insert_source(1, EXTENDED);
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        let loose = CloneDetector::new(CcdParams::best());
        let _ = loose;
        // With ε = 0.9 the Type III clone may or may not pass; with exact
        // clones it always does.
        let mut d2 = CloneDetector::new(CcdParams::conservative());
        d2.insert_source(0, SNIPPET);
        assert_eq!(d2.matches(&q).len(), 1);
        let _ = d.matches(&q);
    }

    #[test]
    fn empty_fingerprints_compare_safely() {
        let empty = Fingerprint(String::new());
        let non_empty = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        assert_eq!(order_independent_similarity(&empty, &empty), 100.0);
        assert_eq!(order_independent_similarity(&empty, &non_empty), 0.0);
        assert_eq!(order_independent_similarity_pair(&empty, &non_empty), (0.0, 0.0));
        assert_eq!(order_independent_similarity_pair(&empty, &empty), (100.0, 100.0));
    }

    #[test]
    fn pair_scoring_matches_two_directed_calls_bitwise() {
        let sources = [SNIPPET, RENAMED, EXTENDED, UNRELATED];
        let fps: Vec<Fingerprint> = sources
            .iter()
            .map(|s| CloneDetector::fingerprint_source(s).unwrap())
            .collect();
        for a in &fps {
            for b in &fps {
                let (fwd, bwd) = order_independent_similarity_pair(a, b);
                assert_eq!(fwd.to_bits(), order_independent_similarity(a, b).to_bits());
                assert_eq!(bwd.to_bits(), order_independent_similarity(b, a).to_bits());
            }
        }
    }

    #[test]
    fn iter_fingerprints_exposes_insertion_order() {
        let d = detector_with_corpus();
        let ids: Vec<u64> = d.iter_fingerprints().map(|(doc, _)| doc).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn shared_corpus_is_not_duplicated_across_detectors() {
        let d = detector_with_corpus();
        let corpus = d.shared_fingerprints();
        let strict = CloneDetector::from_shared(CcdParams::conservative(), Arc::clone(&corpus));
        // Both detectors point at the same allocation …
        assert!(Arc::ptr_eq(&corpus, &strict.shared_fingerprints()));
        // … and the stricter detector still finds the exact clone.
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        assert!(strict.matches(&q).iter().any(|m| m.doc == 0));
    }

    #[test]
    fn inserting_into_a_shared_corpus_diverges_by_copy_on_write() {
        let mut d = detector_with_corpus();
        let shared = d.shared_fingerprints();
        let before = shared.len();
        assert!(d.insert_source(9, SNIPPET));
        // The inserting detector sees the new document …
        let q = CloneDetector::fingerprint_source(SNIPPET).unwrap();
        assert!(d.matches(&q).iter().any(|m| m.doc == 9));
        // … while the previously shared corpus is untouched.
        assert_eq!(shared.len(), before);
        assert!(!Arc::ptr_eq(&shared, &d.shared_fingerprints()));
    }

    #[test]
    fn try_fingerprint_reports_parse_and_empty_failures() {
        let err = CloneDetector::try_fingerprint_source("function f( {").unwrap_err();
        assert_eq!(err.code(), "parse");
        let err = CloneDetector::try_fingerprint_source("").unwrap_err();
        assert_eq!(err.code(), "invalid_request");
        assert!(CloneDetector::try_fingerprint_source(SNIPPET).is_ok());
    }
}
