//! Source normalization (§5.2 of the paper).
//!
//! To detect Type-I and Type-II clones, the source is parsed and the AST is
//! rewritten:
//!
//! * contract names → `c`, library names → `l`, interface names → `i`,
//! * function names → `f`, modifier names → `m`,
//! * parameters and variables → their declared type (default `uint` when
//!   the declaration is missing from the snippet),
//! * string literals → `stringLiteral`,
//! * function visibility and mutability are removed.
//!
//! Numeric constants are deliberately left untouched: a changed constant
//! can flip a contract from vulnerable to safe (§5.2).

use intern::Symbol;
use solidity::ast::*;
use std::collections::HashMap;

/// Builtin *member* names (`msg.sender`, `x.transfer`, `a.length`) that are
/// never renamed in member position.
const MEMBER_BUILTINS: &[&str] = &[
    "sender", "value", "data", "sig", "gas", "origin", "gasprice", "timestamp", "number",
    "difficulty", "coinbase", "gaslimit", "blockhash", "transfer", "send", "call",
    "delegatecall", "callcode", "staticcall", "length", "push", "pop", "balance", "encode",
    "encodePacked", "encodeWithSelector", "encodeWithSignature", "decode", "min", "max",
];

/// Builtin *bare* identifiers that are never renamed in identifier
/// position. A user variable named `value` is still renamed to its type —
/// only genuine globals are protected.
const IDENT_BUILTINS: &[&str] = &[
    "msg", "tx", "block", "now", "this", "super", "abi", "require", "assert", "revert",
    "selfdestruct", "suicide", "keccak256", "sha3", "sha256", "ripemd160", "ecrecover",
    "addmod", "mulmod", "gasleft", "blockhash", "type", "stringLiteral", "_",
];

/// Normalize a parsed source unit in place, returning the renaming that was
/// applied (useful for debugging and tests).
pub fn normalize_unit(unit: &mut SourceUnit) -> HashMap<Symbol, Symbol> {
    let mut n = Normalizer::default();
    n.collect_unit(unit);
    // Second collection pass: subscript-base usage of undeclared names.
    {
        struct SubscriptScan<'a>(&'a mut Normalizer);
        impl solidity::visitor::Visit for SubscriptScan<'_> {
            fn visit_expr(&mut self, expr: &Expr) {
                if let ExprKind::Index { base, .. } = &expr.kind {
                    if let ExprKind::Ident(name) = &base.kind {
                        if !self.0.renames.contains_key(name)
                            && !self.0.var_types.contains_key(name)
                        {
                            self.0.subscripted.insert(*name);
                        }
                    }
                }
                solidity::visitor::walk_expr(self, expr);
            }
        }
        let mut scan = SubscriptScan(&mut n);
        solidity::visitor::walk_unit(&mut scan, unit);
    }
    for item in &mut unit.items {
        n.item(item);
    }
    n.renames
}

#[derive(Default)]
struct Normalizer {
    /// Global renaming decisions: original → replacement.
    renames: HashMap<Symbol, Symbol>,
    /// Variable → declared type (canonical), feeding the type-renaming.
    var_types: HashMap<Symbol, Symbol>,
    /// Undeclared names observed as subscript bases (`x[..]`): renamed to
    /// `mapping` rather than the flat default, so a snippet missing the
    /// `mapping(...)` declaration still normalizes like the full contract.
    subscripted: std::collections::HashSet<Symbol>,
}

impl Normalizer {
    // ---- collection pass: decide every rename up front -------------------

    fn collect_unit(&mut self, unit: &SourceUnit) {
        for item in &unit.items {
            match item {
                SourceItem::Contract(c) => {
                    let replacement = match c.kind {
                        ContractKind::Library => "l",
                        ContractKind::Interface => "i",
                        _ => "c",
                    };
                    self.renames.insert(c.name, Symbol::intern(replacement));
                    for part in &c.parts {
                        self.collect_part(part);
                    }
                }
                SourceItem::Function(f) => self.collect_function(f),
                SourceItem::Modifier(m) => self.collect_modifier(m),
                SourceItem::Variable(v) => {
                    self.var_types.insert(v.name, type_token(&v.ty));
                }
                SourceItem::Struct(s) => {
                    self.renames.insert(s.name, "s".into());
                    for field in &s.fields {
                        if let Some(name) = field.name {
                            self.var_types.insert(name, type_token(&field.ty));
                        }
                    }
                }
                SourceItem::Event(e) => {
                    self.renames.insert(e.name, "e".into());
                }
                SourceItem::ErrorDef(e) => {
                    self.renames.insert(e.name, "err".into());
                }
                SourceItem::Statement(s) => self.collect_stmt(s),
                _ => {}
            }
        }
    }

    fn collect_part(&mut self, part: &ContractPart) {
        match part {
            ContractPart::Variable(v) => {
                self.var_types.insert(v.name, type_token(&v.ty));
            }
            ContractPart::Function(f) => self.collect_function(f),
            ContractPart::Modifier(m) => self.collect_modifier(m),
            ContractPart::Struct(s) => {
                self.renames.insert(s.name, "s".into());
            }
            ContractPart::Event(e) => {
                self.renames.insert(e.name, "e".into());
            }
            ContractPart::ErrorDef(e) => {
                self.renames.insert(e.name, "err".into());
            }
            _ => {}
        }
    }

    fn collect_function(&mut self, f: &FunctionDef) {
        if let Some(name) = f.name {
            self.renames.insert(name, "f".into());
        }
        for p in f.params.iter().chain(&f.returns) {
            if let Some(name) = p.name {
                self.var_types.insert(name, type_token(&p.ty));
            }
        }
        if let Some(body) = &f.body {
            for s in &body.statements {
                self.collect_stmt(s);
            }
        }
    }

    fn collect_modifier(&mut self, m: &ModifierDef) {
        self.renames.insert(m.name, "m".into());
        for p in &m.params {
            if let Some(name) = p.name {
                self.var_types.insert(name, type_token(&p.ty));
            }
        }
        if let Some(body) = &m.body {
            for s in &body.statements {
                self.collect_stmt(s);
            }
        }
    }

    fn collect_stmt(&mut self, s: &Statement) {
        match &s.kind {
            StatementKind::VariableDecl { parts, .. } => {
                for part in parts {
                    let ty = part.ty.as_ref().map(type_token).unwrap_or_else(|| "uint".into());
                    self.var_types.insert(part.name, ty);
                }
            }
            StatementKind::Block(b) | StatementKind::Unchecked(b) => {
                for inner in &b.statements {
                    self.collect_stmt(inner);
                }
            }
            StatementKind::If { then, alt, .. } => {
                self.collect_stmt(then);
                if let Some(alt) = alt {
                    self.collect_stmt(alt);
                }
            }
            StatementKind::While { body, .. } | StatementKind::DoWhile { body, .. } => {
                self.collect_stmt(body);
            }
            StatementKind::For { init, body, .. } => {
                if let Some(init) = init {
                    self.collect_stmt(init);
                }
                self.collect_stmt(body);
            }
            StatementKind::Try { success, catches, .. } => {
                for inner in &success.statements {
                    self.collect_stmt(inner);
                }
                for c in catches {
                    for inner in &c.statements {
                        self.collect_stmt(inner);
                    }
                }
            }
            _ => {}
        }
    }

    fn rename(&self, name: Symbol) -> Symbol {
        if let Some(replacement) = self.renames.get(&name) {
            return *replacement;
        }
        if let Some(ty) = self.var_types.get(&name) {
            return *ty;
        }
        if IDENT_BUILTINS.contains(&name.as_str()) {
            return name;
        }
        if self.subscripted.contains(&name) {
            return "mapping".into();
        }
        // Missing declaration (incomplete snippet): the paper's default.
        "uint".into()
    }

    // ---- rewrite pass ------------------------------------------------------

    fn item(&mut self, item: &mut SourceItem) {
        match item {
            SourceItem::Contract(c) => {
                c.name = self.rename(c.name);
                for base in &mut c.bases {
                    base.name = self.rename(base.name);
                    for arg in &mut base.args {
                        self.expr(arg);
                    }
                }
                for part in &mut c.parts {
                    self.part(part);
                }
            }
            SourceItem::Function(f) => self.function(f),
            SourceItem::Modifier(m) => self.modifier(m),
            SourceItem::Variable(v) => self.state_var(v),
            SourceItem::Statement(s) => self.stmt(s),
            SourceItem::Struct(s) => {
                s.name = self.rename(s.name);
                for field in &mut s.fields {
                    self.param(field);
                }
            }
            SourceItem::Event(e) => {
                e.name = self.rename(e.name);
                for p in &mut e.params {
                    self.param(p);
                }
            }
            SourceItem::ErrorDef(e) => {
                e.name = self.rename(e.name);
                for p in &mut e.params {
                    self.param(p);
                }
            }
            SourceItem::UsingFor(u) => {
                u.library = self.rename(u.library);
            }
            _ => {}
        }
    }

    fn part(&mut self, part: &mut ContractPart) {
        match part {
            ContractPart::Variable(v) => self.state_var(v),
            ContractPart::Function(f) => self.function(f),
            ContractPart::Modifier(m) => self.modifier(m),
            ContractPart::Struct(s) => {
                s.name = self.rename(s.name);
                for field in &mut s.fields {
                    self.param(field);
                }
            }
            ContractPart::Event(e) => {
                e.name = self.rename(e.name);
                for p in &mut e.params {
                    self.param(p);
                }
            }
            ContractPart::ErrorDef(e) => {
                e.name = self.rename(e.name);
            }
            ContractPart::UsingFor(u) => {
                u.library = self.rename(u.library);
            }
            ContractPart::Enum(e) => {
                e.name = self.rename(e.name);
            }
            ContractPart::Placeholder(_) => {}
        }
    }

    fn state_var(&mut self, v: &mut StateVarDecl) {
        self.ty(&mut v.ty);
        v.visibility = None;
        v.name = self.rename(v.name);
        if let Some(init) = &mut v.initializer {
            self.expr(init);
        }
    }

    fn function(&mut self, f: &mut FunctionDef) {
        if let Some(name) = f.name {
            f.name = Some(self.rename(name));
        }
        // Visibility and mutability are removed entirely (§5.2).
        f.visibility = None;
        f.mutability = None;
        f.is_virtual = false;
        f.is_override = false;
        for p in f.params.iter_mut().chain(f.returns.iter_mut()) {
            self.param(p);
        }
        for m in &mut f.modifiers {
            m.name = self.rename(m.name);
            for arg in &mut m.args {
                self.expr(arg);
            }
        }
        if let Some(body) = &mut f.body {
            self.block(body);
        }
    }

    fn modifier(&mut self, m: &mut ModifierDef) {
        m.name = self.rename(m.name);
        for p in &mut m.params {
            self.param(p);
        }
        if let Some(body) = &mut m.body {
            self.block(body);
        }
    }

    fn param(&mut self, p: &mut Param) {
        self.ty(&mut p.ty);
        // The parameter is renamed to its type; dropping the name achieves
        // the same token stream as the paper's `function f(uint)` example.
        // The data location is kept (it is semantics, not naming).
        p.name = None;
        p.indexed = false;
    }

    fn ty(&mut self, ty: &mut TypeName) {
        match ty {
            TypeName::UserDefined(name) => {
                *name = self.rename(*name);
            }
            TypeName::Mapping(k, v) => {
                self.ty(k);
                self.ty(v);
            }
            TypeName::Array(inner, len) => {
                self.ty(inner);
                if let Some(len) = len {
                    self.expr(len);
                }
            }
            TypeName::Function { params, returns } => {
                for t in params.iter_mut().chain(returns.iter_mut()) {
                    self.ty(t);
                }
            }
            TypeName::Elementary(_) | TypeName::Unknown => {}
        }
    }

    fn block(&mut self, b: &mut Block) {
        for s in &mut b.statements {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &mut Statement) {
        match &mut s.kind {
            StatementKind::Block(b) | StatementKind::Unchecked(b) => self.block(b),
            StatementKind::If { cond, then, alt } => {
                self.expr(cond);
                self.stmt(then);
                if let Some(alt) = alt {
                    self.stmt(alt);
                }
            }
            StatementKind::While { cond, body } => {
                self.expr(cond);
                self.stmt(body);
            }
            StatementKind::DoWhile { body, cond } => {
                self.stmt(body);
                self.expr(cond);
            }
            StatementKind::For { init, cond, update, body } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(cond) = cond {
                    self.expr(cond);
                }
                if let Some(update) = update {
                    self.expr(update);
                }
                self.stmt(body);
            }
            StatementKind::Expression(e) | StatementKind::Emit(e) => self.expr(e),
            StatementKind::VariableDecl { parts, value } => {
                for part in parts {
                    if let Some(ty) = &mut part.ty {
                        self.ty(ty);
                    }
                    // Data locations are *kept*: `storage` vs `memory`
                    // changes behavior (uninitialized storage pointers!),
                    // so collapsing them would merge vulnerable and safe
                    // code into one clone class.
                    let ty = part.ty.as_ref().map(type_token).unwrap_or_else(|| "uint".into());
                    part.name = ty;
                }
                if let Some(value) = value {
                    self.expr(value);
                }
            }
            StatementKind::Return(value) | StatementKind::Revert(value) => {
                if let Some(value) = value {
                    self.expr(value);
                }
            }
            StatementKind::Try { expr, success, catches } => {
                self.expr(expr);
                self.block(success);
                for c in catches {
                    self.block(c);
                }
            }
            _ => {}
        }
    }

    fn expr(&mut self, e: &mut Expr) {
        match &mut e.kind {
            ExprKind::Ident(name) => {
                *name = self.rename(*name);
            }
            ExprKind::Literal(lit) => {
                if let Lit::Str(_) = lit {
                    // String literals → the `stringLiteral` keyword (§5.2).
                    e.kind = ExprKind::Ident("stringLiteral".into());
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Ternary { cond, then, alt } => {
                self.expr(cond);
                self.expr(then);
                self.expr(alt);
            }
            ExprKind::Call { callee, options, args, .. } => {
                self.expr(callee);
                for (_, option) in options {
                    self.expr(option);
                }
                for arg in args {
                    self.expr(arg);
                }
            }
            ExprKind::Member { base, member } => {
                self.expr(base);
                if !MEMBER_BUILTINS.contains(&member.as_str()) {
                    *member = self.rename(*member);
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                if let Some(index) = index {
                    self.expr(index);
                }
            }
            ExprKind::Tuple(entries) => {
                for entry in entries.iter_mut().flatten() {
                    self.expr(entry);
                }
            }
            ExprKind::New(ty) => self.ty(ty),
            ExprKind::ElementaryType(_) | ExprKind::Ellipsis => {}
        }
    }
}

/// The single-token type name used for variable renaming: `uint` for
/// `uint`/`uint256`, the canonical text otherwise, `uint` for unknown.
fn type_token(ty: &TypeName) -> Symbol {
    match ty {
        TypeName::Elementary(t) => Symbol::intern(t.split(' ').next().unwrap_or("uint")),
        TypeName::UserDefined(_) => "s".into(),
        TypeName::Mapping(..) => "mapping".into(),
        TypeName::Array(..) => "array".into(),
        TypeName::Function { .. } => "function".into(),
        TypeName::Unknown => "uint".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solidity::parse_snippet;
    use solidity::printer::print_unit;

    fn normalize(src: &str) -> String {
        let mut unit = parse_snippet(src).unwrap();
        normalize_unit(&mut unit);
        print_unit(&unit)
    }

    #[test]
    fn paper_example() {
        // The §5.2 example: contract Test → c, test → f, amount → uint.
        let out = normalize(
            "contract Test { function test(uint amount) { msg.sender.transfer(amount); } }",
        );
        assert!(out.contains("contract c"), "{out}");
        assert!(out.contains("function f(uint)"), "{out}");
        assert!(out.contains("msg.sender.transfer(uint)"), "{out}");
    }

    #[test]
    fn type_ii_clones_normalize_identically() {
        let a = normalize(
            "contract Bank { function pay(uint amount) public { msg.sender.transfer(amount); } }",
        );
        let b = normalize(
            "contract Vault { function withdraw(uint sum) external { msg.sender.transfer(sum); } }",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn string_literals_are_replaced() {
        let out = normalize("function f() public { revert(\"nope\"); }");
        assert!(out.contains("stringLiteral"), "{out}");
        assert!(!out.contains("nope"), "{out}");
    }

    #[test]
    fn numeric_constants_are_preserved() {
        let out = normalize("function f() public { x = 1337; }");
        assert!(out.contains("1337"), "{out}");
    }

    #[test]
    fn library_renamed_to_l() {
        let out = normalize("library SafeMath { function add(uint a, uint b) internal {} }");
        assert!(out.contains("library l"), "{out}");
    }

    #[test]
    fn modifiers_renamed_to_m() {
        let out = normalize(
            "contract C { modifier onlyOwner() { _; } function f() public onlyOwner() {} }",
        );
        assert!(out.contains("modifier m"), "{out}");
        assert!(out.contains("function f() m"), "{out}");
    }

    #[test]
    fn visibility_is_removed() {
        let out = normalize("contract C { uint public x; function f() public view {} }");
        assert!(!out.contains("public"), "{out}");
        assert!(!out.contains("view"), "{out}");
    }

    #[test]
    fn undeclared_variables_default_to_uint() {
        let out = normalize("balances[to] += amount;");
        assert!(out.contains("uint"), "{out}");
        assert!(!out.contains("amount"), "{out}");
    }

    #[test]
    fn builtins_survive() {
        let out = normalize("function f() public { require(msg.sender == tx.origin); }");
        assert!(out.contains("msg.sender"), "{out}");
        assert!(out.contains("tx.origin"), "{out}");
        assert!(out.contains("require"), "{out}");
    }

    #[test]
    fn state_variables_renamed_by_type() {
        let out = normalize(
            "contract C { address owner; function f() public { owner = msg.sender; } }",
        );
        assert!(out.contains("address = msg.sender"), "{out}");
    }
}
