//! Persistent, versioned snapshots of the CCD corpus index.
//!
//! The paper's large-scale experiment (§6) matches submissions against a
//! fixed snippet corpus; the analysis service previously re-fingerprinted
//! that corpus from source on every boot. This crate is the persistence
//! layer that removes the rebuild: the fingerprint set and the N-gram
//! postings are written once into a flat, mmap-friendly snapshot file
//! ([`format`]) and committed under a generation number with an atomic
//! pointer flip ([`store`]), so a service restart assembles its matcher
//! from validated bytes in milliseconds — no Solidity parsing, no
//! normalization, no re-gramming.
//!
//! * [`format`] — the v1 byte layout: fixed-width header + tables,
//!   interned string blobs, offset-based postings, FNV-1a checksum.
//!   Decoding validates everything and returns typed errors
//!   (`index_corrupt`, `index_version`); hostile bytes never panic.
//! * [`store`] — `gen-<N>.idx` files plus a `CURRENT` pointer, both
//!   written tmp+rename (the `bench::checkpoint` discipline) and fsynced
//!   (file before rename, directory after), so a crash mid-commit always
//!   leaves the previous generation loadable — including across power
//!   loss.
//! * [`wal`] — the write-ahead delta log: one `wal-<N>.log` segment per
//!   generation takes every insert before it is applied in memory, and
//!   warm start replays the tail on top of the snapshot, so live inserts
//!   survive `kill -9` without waiting for a compaction.
//! * [`mmap`] — read-only file mapping via the reactor's `extern "C"`
//!   syscall idiom on unix, with a plain-read fallback elsewhere.
//!
//! The live-service layers above — incremental insert, compaction,
//! sharding, the near-duplicate front cache and the `/v1/index` admin
//! API — live in `pipeline::api::CorpusHandle` and `crates/server`; this
//! crate owns only the bytes.

#![warn(missing_docs)]

pub mod format;
pub mod mmap;
pub mod store;
pub mod wal;

pub use format::{decode, encode, FORMAT_VERSION};
pub use store::{Snapshot, SnapshotStore, CURRENT};
pub use wal::{FsyncPolicy, WalStats, WalWriter};
