//! Read-only file mapping.
//!
//! On unix the snapshot file is `mmap`ed (`PROT_READ`/`MAP_PRIVATE`) via
//! the same `extern "C"` discipline as the server's epoll reactor — the
//! kernel pages the postings in on demand, so warm-start cost is
//! independent of snapshot size until the first query touches it. On
//! other platforms (and for zero-length files, which `mmap` rejects) the
//! file is simply read into memory; [`Mapped`] hides the difference
//! behind `Deref<Target = [u8]>`.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only view of a file's bytes: an `mmap` region on unix, an
/// owned buffer elsewhere. Unmapped (or freed) on drop.
#[derive(Debug)]
pub enum Mapped {
    /// A live `mmap` region.
    #[cfg(unix)]
    Mmap {
        /// Base address returned by `mmap` (never null; owned by this value).
        ptr: *mut u8,
        /// Mapped length in bytes (non-zero).
        len: usize,
    },
    /// Fallback: the whole file read into memory.
    Owned(Vec<u8>),
}

// The region is read-only and exclusively owned until munmap in drop.
#[cfg(unix)]
unsafe impl Send for Mapped {}
#[cfg(unix)]
unsafe impl Sync for Mapped {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mapped {
    /// Map `path` read-only. Zero-length files yield an empty
    /// [`Mapped::Owned`] buffer (a valid `mmap` needs `len > 0`); if the
    /// mapping syscall fails the file is read instead, so callers never
    /// see an mmap-specific error.
    pub fn open(path: &Path) -> io::Result<Mapped> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            if len > 0 {
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != sys::MAP_FAILED {
                    return Ok(Mapped::Mmap { ptr: ptr.cast(), len });
                }
            }
        }
        Ok(Mapped::Owned(std::fs::read(path)?))
    }
}

impl Deref for Mapped {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Mapped::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mapped::Owned(bytes) => bytes,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapped::Mmap { ptr, len } = *self {
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("sodd_mmap_{}.bin", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let mapped = Mapped::open(&path).unwrap();
        assert_eq!(&*mapped, b"hello mapping");
        #[cfg(unix)]
        assert!(matches!(mapped, Mapped::Mmap { .. }));
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = std::env::temp_dir().join(format!("sodd_mmap0_{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mapped = Mapped::open(&path).unwrap();
        assert!(mapped.is_empty());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mapped::open(Path::new("/nonexistent/sodd_mmap.bin")).is_err());
    }
}
