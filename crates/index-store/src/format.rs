//! Snapshot format v1: a flat, mmap-friendly encoding of a fingerprint
//! corpus plus its prebuilt N-gram index.
//!
//! ```text
//! header (72 bytes, little-endian)
//!   0  magic      8B  "SODDIDX\0"
//!   8  version    u32 format version (1)
//!   12 n          u32 N-gram size the postings were built with
//!   16 generation u64 snapshot generation
//!   24 doc_count  u64 documents
//!   32 gram_count u64 distinct N-grams
//!   40 post_count u64 total posting entries
//!   48 fp_blob    u64 fingerprint string-blob length in bytes
//!   56 gram_blob  u64 gram string-blob length in bytes
//!   64 checksum   u64 FNV-1a over every byte after the header
//! doc table    doc_count  x 24B  (doc_id u64, fp_off u32, fp_len u32,
//!                                 gram_count u32, reserved u32)
//! gram table   gram_count x 16B  (str_off u32, str_len u32,
//!                                 post_off u32, post_len u32)
//! postings     post_count x 4B   u32 doc-table positions
//! fp blob      fp_blob bytes     UTF-8, interned (deduplicated) strings
//! gram blob    gram_blob bytes   UTF-8, interned (deduplicated) strings
//! ```
//!
//! Every table is fixed-width and every string is an `(offset, length)`
//! into an interned blob ([`intern::StrTable`]), so a reader seeks
//! directly without parsing; postings reference doc-table *positions*
//! (u32), not 8-byte doc ids, halving the dominant section. The decoder
//! trusts nothing: lengths, offsets, UTF-8 boundaries, positions and the
//! checksum are all validated and every failure is a typed
//! [`AnalysisError`] (`index_corrupt` / `index_version`) — hostile bytes
//! can never panic the loader.

use ccd::Fingerprint;
use intern::StrTable;
use ngram_index::{DocId, NgramIndex};
use solidity::AnalysisError;

/// File magic: identifies a snapshot regardless of version.
pub const MAGIC: [u8; 8] = *b"SODDIDX\0";
/// Format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 72;

const DOC_ENTRY: usize = 24;
const GRAM_ENTRY: usize = 16;
const POST_ENTRY: usize = 4;

/// FNV-1a 64 over a byte slice — the payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(message: impl Into<String>) -> AnalysisError {
    AnalysisError::index_corrupt(message)
}

/// A fully decoded and validated snapshot, ready to assemble into a
/// [`ccd::CloneDetector`] without re-fingerprinting or re-gramming.
#[derive(Debug)]
pub struct Decoded {
    /// Snapshot generation from the header.
    pub generation: u64,
    /// N-gram size the postings were built with.
    pub n: usize,
    /// `(doc id, fingerprint)` in original corpus order.
    pub fingerprints: Vec<(DocId, Fingerprint)>,
    /// Per-document distinct-gram counts, as stored.
    pub doc_grams: Vec<(DocId, usize)>,
    /// Postings lists keyed by gram.
    pub postings: Vec<(Box<str>, Vec<DocId>)>,
}

impl Decoded {
    /// Rebuild the N-gram index from the decoded flat parts.
    pub fn into_index_and_corpus(self) -> (NgramIndex, Vec<(DocId, Fingerprint)>) {
        let index = NgramIndex::from_parts(self.n, self.doc_grams, self.postings);
        (index, self.fingerprints)
    }
}

/// Encode a corpus and its index into snapshot bytes.
///
/// `docs` is the corpus in its canonical order (preserved on decode, so a
/// detector rebuilt from the snapshot matches in the same tie-break order
/// as the in-memory original); `index` must be the N-gram index built
/// over exactly those documents.
pub fn encode(
    generation: u64,
    docs: &[(DocId, Fingerprint)],
    index: &NgramIndex,
) -> Result<Vec<u8>, AnalysisError> {
    let mut positions = intern::FxHashMap::default();
    for (pos, (doc, _)) in docs.iter().enumerate() {
        let pos = u32::try_from(pos)
            .map_err(|_| AnalysisError::internal("snapshot exceeds u32 documents"))?;
        if positions.insert(*doc, pos).is_some() {
            return Err(AnalysisError::internal(format!("duplicate doc id {doc} in corpus")));
        }
    }
    let grams_per_doc: intern::FxHashMap<DocId, usize> =
        index.doc_grams_sorted().into_iter().collect();
    if grams_per_doc.len() != docs.len() {
        return Err(AnalysisError::internal(format!(
            "index covers {} docs, corpus has {}",
            grams_per_doc.len(),
            docs.len()
        )));
    }

    // String sections: every distinct fingerprint and gram written once.
    let mut fp_table = StrTable::new();
    let mut doc_table = Vec::with_capacity(docs.len() * DOC_ENTRY);
    for (doc, fp) in docs {
        let id = fp_table.intern(fp.as_str());
        let (off, len) = fp_table.spans()[id as usize];
        let count = grams_per_doc
            .get(doc)
            .copied()
            .ok_or_else(|| AnalysisError::internal(format!("doc {doc} missing from index")))?;
        let count = u32::try_from(count)
            .map_err(|_| AnalysisError::internal("gram count exceeds u32"))?;
        doc_table.extend_from_slice(&doc.to_le_bytes());
        doc_table.extend_from_slice(&off.to_le_bytes());
        doc_table.extend_from_slice(&len.to_le_bytes());
        doc_table.extend_from_slice(&count.to_le_bytes());
        doc_table.extend_from_slice(&0u32.to_le_bytes());
    }

    let sorted = index.postings_sorted();
    let mut gram_table = Vec::with_capacity(sorted.len() * GRAM_ENTRY);
    let mut postings = Vec::new();
    let mut gram_strings = StrTable::new();
    for (gram, ids) in &sorted {
        let id = gram_strings.intern(gram);
        let (off, len) = gram_strings.spans()[id as usize];
        let post_off = u32::try_from(postings.len() / POST_ENTRY)
            .map_err(|_| AnalysisError::internal("postings exceed u32 entries"))?;
        let post_len = u32::try_from(ids.len())
            .map_err(|_| AnalysisError::internal("postings list exceeds u32 entries"))?;
        for doc in *ids {
            let pos = positions
                .get(doc)
                .ok_or_else(|| AnalysisError::internal(format!("posting for unknown doc {doc}")))?;
            postings.extend_from_slice(&pos.to_le_bytes());
        }
        gram_table.extend_from_slice(&off.to_le_bytes());
        gram_table.extend_from_slice(&len.to_le_bytes());
        gram_table.extend_from_slice(&post_off.to_le_bytes());
        gram_table.extend_from_slice(&post_len.to_le_bytes());
    }

    let post_count = (postings.len() / POST_ENTRY) as u64;
    let mut payload = doc_table;
    payload.extend_from_slice(&gram_table);
    payload.extend_from_slice(&postings);
    payload.extend_from_slice(fp_table.blob().as_bytes());
    payload.extend_from_slice(gram_strings.blob().as_bytes());

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(index.n() as u32).to_le_bytes());
    bytes.extend_from_slice(&generation.to_le_bytes());
    bytes.extend_from_slice(&(docs.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(sorted.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&post_count.to_le_bytes());
    bytes.extend_from_slice(&(fp_table.blob().len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(gram_strings.blob().len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    debug_assert_eq!(bytes.len(), HEADER_LEN);
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("caller checked bounds"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("caller checked bounds"))
}

/// Slice `(off, len)` out of a validated UTF-8 blob, rejecting
/// out-of-bounds spans and char-splitting offsets.
fn span<'b>(blob: &'b str, off: u32, len: u32, what: &str) -> Result<&'b str, AnalysisError> {
    let (start, end) = (off as usize, off as usize + len as usize);
    if end > blob.len() || !blob.is_char_boundary(start) || !blob.is_char_boundary(end) {
        return Err(corrupt(format!("{what} span {off}+{len} outside its blob")));
    }
    Ok(&blob[start..end])
}

/// Decode and validate snapshot bytes (the mmap'ed file contents).
pub fn decode(bytes: &[u8]) -> Result<Decoded, AnalysisError> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!("{} bytes is shorter than the header", bytes.len())));
    }
    if bytes[0..8] != MAGIC {
        return Err(corrupt("bad magic (not a snapshot file)"));
    }
    let version = read_u32(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(AnalysisError::index_version(version, FORMAT_VERSION));
    }
    let n = read_u32(bytes, 12) as usize;
    let generation = read_u64(bytes, 16);
    let doc_count = read_u64(bytes, 24);
    let gram_count = read_u64(bytes, 32);
    let post_count = read_u64(bytes, 40);
    let fp_blob_len = read_u64(bytes, 48);
    let gram_blob_len = read_u64(bytes, 56);
    let checksum = read_u64(bytes, 64);
    if n == 0 {
        return Err(corrupt("header n = 0"));
    }

    // Section layout, with overflow-checked arithmetic: the total must
    // match the file length exactly (a short file is truncation, a long
    // one trailing garbage).
    let section = |count: u64, width: usize, what: &str| -> Result<usize, AnalysisError> {
        usize::try_from(count)
            .ok()
            .and_then(|c| c.checked_mul(width))
            .ok_or_else(|| corrupt(format!("{what} count {count} overflows")))
    };
    let doc_table_len = section(doc_count, DOC_ENTRY, "doc")?;
    let gram_table_len = section(gram_count, GRAM_ENTRY, "gram")?;
    let postings_len = section(post_count, POST_ENTRY, "posting")?;
    let blob = |len: u64, what: &str| -> Result<usize, AnalysisError> {
        usize::try_from(len).map_err(|_| corrupt(format!("{what} blob length overflows")))
    };
    let fp_blob_bytes = blob(fp_blob_len, "fingerprint")?;
    let gram_blob_bytes = blob(gram_blob_len, "gram")?;
    let expected = [doc_table_len, gram_table_len, postings_len, fp_blob_bytes, gram_blob_bytes]
        .iter()
        .try_fold(HEADER_LEN, |acc, len| acc.checked_add(*len))
        .ok_or_else(|| corrupt("section lengths overflow"))?;
    if bytes.len() != expected {
        return Err(corrupt(format!(
            "file is {} bytes, header describes {expected}",
            bytes.len()
        )));
    }
    let payload = &bytes[HEADER_LEN..];
    if fnv1a(payload) != checksum {
        return Err(corrupt("payload checksum mismatch"));
    }

    let doc_table = &payload[..doc_table_len];
    let gram_table = &payload[doc_table_len..doc_table_len + gram_table_len];
    let postings_bytes =
        &payload[doc_table_len + gram_table_len..doc_table_len + gram_table_len + postings_len];
    let blobs_at = doc_table_len + gram_table_len + postings_len;
    let fp_blob = std::str::from_utf8(&payload[blobs_at..blobs_at + fp_blob_bytes])
        .map_err(|_| corrupt("fingerprint blob is not UTF-8"))?;
    let gram_blob = std::str::from_utf8(&payload[blobs_at + fp_blob_bytes..])
        .map_err(|_| corrupt("gram blob is not UTF-8"))?;

    let doc_count = doc_count as usize;
    let mut fingerprints = Vec::with_capacity(doc_count);
    let mut doc_grams = Vec::with_capacity(doc_count);
    let mut doc_ids = Vec::with_capacity(doc_count);
    let mut seen = intern::FxHashSet::default();
    for entry in 0..doc_count {
        let at = entry * DOC_ENTRY;
        let doc = read_u64(doc_table, at);
        let fp = span(fp_blob, read_u32(doc_table, at + 8), read_u32(doc_table, at + 12),
            "fingerprint")?;
        let grams = read_u32(doc_table, at + 16) as usize;
        if !seen.insert(doc) {
            return Err(corrupt(format!("duplicate doc id {doc}")));
        }
        fingerprints.push((doc, Fingerprint(fp.to_string())));
        doc_grams.push((doc, grams));
        doc_ids.push(doc);
    }

    let gram_count = gram_count as usize;
    let mut postings = Vec::with_capacity(gram_count);
    for entry in 0..gram_count {
        let at = entry * GRAM_ENTRY;
        let gram = span(gram_blob, read_u32(gram_table, at), read_u32(gram_table, at + 4),
            "gram")?;
        let post_off = read_u32(gram_table, at + 8) as usize;
        let post_len = read_u32(gram_table, at + 12) as usize;
        let end = post_off
            .checked_add(post_len)
            .filter(|end| *end <= post_count as usize)
            .ok_or_else(|| corrupt(format!("postings range {post_off}+{post_len} out of range")))?;
        let mut ids = Vec::with_capacity(post_len);
        for pos in post_off..end {
            let doc_pos = read_u32(postings_bytes, pos * POST_ENTRY) as usize;
            let doc = doc_ids
                .get(doc_pos)
                .ok_or_else(|| corrupt(format!("posting references doc position {doc_pos}")))?;
            ids.push(*doc);
        }
        postings.push((gram.into(), ids));
    }

    Ok(Decoded { generation, n, fingerprints, doc_grams, postings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd::{CcdParams, CloneDetector};

    fn sample_detector() -> CloneDetector {
        let mut d = CloneDetector::new(CcdParams::best());
        assert!(d.insert_source(
            0,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }"
        ));
        assert!(d.insert_source(
            1,
            "contract B { uint total; function add(uint v) public { total += v; } }"
        ));
        d
    }

    #[test]
    fn encode_decode_roundtrip_preserves_matches() {
        let d = sample_detector();
        let docs = d.shared_fingerprints();
        let bytes = encode(7, &docs, d.index()).unwrap();
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.generation, 7);
        assert_eq!(decoded.n, d.params().ngram_size);
        assert_eq!(decoded.fingerprints, *docs);
        let (index, corpus) = decoded.into_index_and_corpus();
        let rebuilt =
            CloneDetector::from_parts(d.params(), std::sync::Arc::new(corpus), index).unwrap();
        let q = CloneDetector::fingerprint_source(
            "contract C { function out(uint x) public { msg.sender.transfer(x); } }",
        )
        .unwrap();
        assert_eq!(rebuilt.matches(&q), d.matches(&q));
    }

    #[test]
    fn encoding_is_deterministic() {
        let (a, b) = (sample_detector(), sample_detector());
        assert_eq!(
            encode(1, &a.shared_fingerprints(), a.index()).unwrap(),
            encode(1, &b.shared_fingerprints(), b.index()).unwrap()
        );
    }

    #[test]
    fn truncation_anywhere_is_typed_corruption() {
        let d = sample_detector();
        let bytes = encode(1, &d.shared_fingerprints(), d.index()).unwrap();
        for cut in [0, 8, HEADER_LEN - 1, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert_eq!(err.code(), "index_corrupt", "cut at {cut}: {err}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let d = sample_detector();
        let bytes = encode(1, &d.shared_fingerprints(), d.index()).unwrap();
        // Flipping any bit of the payload must trip the checksum; flips in
        // the header are caught by magic/version/length checks or produce
        // a decode that fails validation. A flip may never panic.
        for at in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match decode(&bad) {
                Err(e) => assert!(
                    matches!(e.code(), "index_corrupt" | "index_version"),
                    "byte {at}: {e}"
                ),
                // A header flip that enlarges a count is caught by the
                // total-length check; one that survives decode entirely
                // (e.g. the generation field) is fine — payload bits are
                // always checksummed.
                Ok(_) => assert!(at == 16 || at == 17 || (18..24).contains(&at),
                    "undetected flip at byte {at}"),
            }
        }
    }

    #[test]
    fn wrong_version_is_a_version_error() {
        let d = sample_detector();
        let mut bytes = encode(1, &d.shared_fingerprints(), d.index()).unwrap();
        bytes[8] = 9;
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.code(), "index_version");
        assert!(err.to_string().contains("v9"));
    }

    #[test]
    fn wrong_magic_is_corruption() {
        let d = sample_detector();
        let mut bytes = encode(1, &d.shared_fingerprints(), d.index()).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err().code(), "index_corrupt");
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [0usize, 7, 72, 100, 4096] {
            let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert!(decode(&garbage).is_err());
            // Same garbage under a valid magic + version prefix.
            if len >= HEADER_LEN {
                let mut disguised = garbage;
                disguised[0..8].copy_from_slice(&MAGIC);
                disguised[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
                assert!(decode(&disguised).is_err());
            }
        }
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let d = CloneDetector::new(CcdParams::best());
        let bytes = encode(1, &d.shared_fingerprints(), d.index()).unwrap();
        let decoded = decode(&bytes).unwrap();
        assert!(decoded.fingerprints.is_empty());
        assert!(decoded.postings.is_empty());
    }
}
