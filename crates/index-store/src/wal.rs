//! Write-ahead delta log for the corpus index.
//!
//! One `wal-<N>.log` segment per snapshot generation. Every accepted
//! insert is appended here *before* it is applied in memory, so a
//! `kill -9` between the append and the next compaction loses nothing:
//! warm start loads the committed `gen-<N>.idx` snapshot and replays the
//! segment's records on top of it.
//!
//! ## On-disk layout
//!
//! ```text
//! header (24 bytes, little-endian):
//!   [0..8)   magic  "SODDWAL\0"
//!   [8..12)  format version (1)
//!   [12..16) reserved (0)
//!   [16..24) generation this segment belongs to
//! records, densely packed:
//!   [0..4)   payload length (u32)
//!   [4..12)  FNV-1a checksum of the payload (u64)
//!   [12..)   payload: doc id (u64) + fingerprint UTF-8 bytes
//! ```
//!
//! The record framing matches the snapshot format's conventions (same
//! FNV-1a, same little-endian fixed-width fields). Unlike the snapshot
//! there is no trailer: a segment is *expected* to end mid-record after
//! a crash. [`replay`] therefore recovers the longest valid record
//! prefix and reports the tail as a typed truncation, never an error —
//! corruption of the *header* (wrong magic, version, or generation) is
//! the only fatal shape, because then the whole segment is
//! untrustworthy, not just its tail.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] decides when appended bytes are forced to the
//! platter:
//!
//! * `always` — fsync inside every append; an acknowledged insert
//!   survives power loss, at the cost of one fsync per request;
//! * `batch:<ms>` (default `batch:5`) — group commit: appends only
//!   write, a flusher thread fsyncs the segment at most once per
//!   window while dirty. Bounded loss window under power failure,
//!   near-`never` throughput. `kill -9` alone loses nothing under any
//!   policy (page-cache writes survive process death);
//! * `never` — leave flushing to the kernel entirely.
//!
//! Chaos hooks: `wal/append` fires before a record's bytes are written,
//! `wal/fsync` before any segment fsync, `wal/replay` at replay entry.

use ccd::Fingerprint;
use ngram_index::DocId;
use solidity::AnalysisError;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"SODDWAL\0";

/// Version of the WAL record framing.
pub const WAL_VERSION: u32 = 1;

/// Bytes of segment header before the first record.
pub const WAL_HEADER_LEN: usize = 24;

/// Bytes of record framing (length + checksum) before the payload.
pub const RECORD_HEADER_LEN: usize = 12;

/// Upper bound on a record payload; a decoded length above this is
/// treated as tail corruption rather than an allocation request. Far
/// above the service's 4 MiB body cap.
pub const MAX_RECORD_LEN: usize = 64 << 20;

static WAL_APPENDS: telemetry::Counter = telemetry::Counter::new("wal.appends");
static WAL_FSYNCS: telemetry::Counter = telemetry::Counter::new("wal.fsyncs");
static WAL_REPLAY_TRUNCATED: telemetry::Counter =
    telemetry::Counter::new("wal.replay_truncated");
static WAL_REPLAYED_RECORDS: telemetry::Counter =
    telemetry::Counter::new("wal.replayed_records");

/// When appended records are fsynced — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync inside every append.
    Always,
    /// Group commit: fsync at most once per window (milliseconds) while
    /// the segment is dirty.
    Batch(u64),
    /// Never fsync; the kernel flushes when it pleases.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> FsyncPolicy {
        FsyncPolicy::Batch(5)
    }
}

impl FsyncPolicy {
    /// Parse `always`, `batch:<ms>` or `never` (the `--wal-fsync` flag).
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match text.strip_prefix("batch:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(FsyncPolicy::Batch(ms)),
                    _ => Err(format!("bad batch window {ms:?} (want a positive integer)")),
                },
                None => Err(format!(
                    "unknown fsync policy {text:?} (want always, batch:<ms> or never)"
                )),
            },
        }
    }

    /// Canonical spelling, `FsyncPolicy::parse`-compatible.
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Batch(ms) => format!("batch:{ms}"),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// Live counters of an open segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Valid records in the segment (replayed + appended).
    pub records: u64,
    /// Record bytes in the segment, excluding the header.
    pub bytes: u64,
}

/// Result of replaying a segment: the longest valid record prefix.
#[derive(Debug)]
pub struct Replay {
    /// Generation the segment belongs to (validated against the header).
    pub generation: u64,
    /// Decoded records, in append order.
    pub records: Vec<(DocId, Fingerprint)>,
    /// File offset at the end of the last valid record — a writer
    /// resuming this segment truncates here.
    pub valid_bytes: u64,
    /// Why the tail beyond `valid_bytes` was discarded, when it was.
    pub truncated: Option<String>,
}

fn encode_record(doc: DocId, fingerprint: &Fingerprint) -> Vec<u8> {
    let fp = fingerprint.as_str().as_bytes();
    let len = 8 + fp.len();
    let mut payload = Vec::with_capacity(len);
    payload.extend_from_slice(&doc.to_le_bytes());
    payload.extend_from_slice(fp);
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN + len);
    record.extend_from_slice(&(len as u32).to_le_bytes());
    record.extend_from_slice(&crate::format::fnv1a(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

fn encode_header(generation: u64) -> [u8; WAL_HEADER_LEN] {
    let mut header = [0u8; WAL_HEADER_LEN];
    header[0..8].copy_from_slice(&WAL_MAGIC);
    header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&generation.to_le_bytes());
    header
}

/// Decode a segment's bytes: header validation is strict (typed
/// `index_corrupt`/`index_version` errors), record validation is
/// forgiving (truncate at the first torn or corrupt record). Never
/// panics on arbitrary input.
pub fn replay_bytes(bytes: &[u8], expected_generation: u64) -> Result<Replay, AnalysisError> {
    if let Some(message) = faultinject::fire("wal/replay") {
        return Err(AnalysisError::internal(format!("injected: {message}")));
    }
    if bytes.len() < WAL_HEADER_LEN {
        // A crash during segment creation can leave a short header; the
        // segment provably holds no records, so recover it as empty.
        WAL_REPLAY_TRUNCATED.incr();
        return Ok(Replay {
            generation: expected_generation,
            records: Vec::new(),
            valid_bytes: 0,
            truncated: Some(format!("header torn at {} of {WAL_HEADER_LEN} bytes", bytes.len())),
        });
    }
    if bytes[0..8] != WAL_MAGIC {
        return Err(AnalysisError::index_corrupt("not a WAL segment (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(AnalysisError::index_version(version, WAL_VERSION));
    }
    if bytes[12..16] != [0, 0, 0, 0] {
        return Err(AnalysisError::index_corrupt("WAL header reserved bytes are not zero"));
    }
    let generation = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if generation != expected_generation {
        return Err(AnalysisError::index_corrupt(format!(
            "WAL segment claims generation {generation}, expected {expected_generation}"
        )));
    }
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let mut truncated = None;
    while offset < bytes.len() {
        let Some(step) = decode_record(&bytes[offset..]) else {
            truncated = Some(describe_tail(&bytes[offset..], offset));
            break;
        };
        let (doc, fingerprint, consumed) = step;
        records.push((doc, fingerprint));
        offset += consumed;
    }
    if truncated.is_some() {
        WAL_REPLAY_TRUNCATED.incr();
    }
    Ok(Replay { generation, records, valid_bytes: offset as u64, truncated })
}

/// Decode one record at the head of `bytes`; `None` on any torn or
/// corrupt shape (the caller truncates here).
fn decode_record(bytes: &[u8]) -> Option<(DocId, Fingerprint, usize)> {
    if bytes.len() < RECORD_HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if !(8..=MAX_RECORD_LEN).contains(&len) {
        return None;
    }
    let checksum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let payload = bytes.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len)?;
    if crate::format::fnv1a(payload) != checksum {
        return None;
    }
    let doc = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let fingerprint = std::str::from_utf8(&payload[8..]).ok()?;
    Some((doc, Fingerprint(fingerprint.to_string()), RECORD_HEADER_LEN + len))
}

fn describe_tail(tail: &[u8], offset: usize) -> String {
    if tail.len() < RECORD_HEADER_LEN {
        return format!("torn record framing at offset {offset} ({} trailing bytes)", tail.len());
    }
    let len = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes")) as usize;
    if !(8..=MAX_RECORD_LEN).contains(&len) {
        return format!("impossible record length {len} at offset {offset}");
    }
    if tail.len() < RECORD_HEADER_LEN + len {
        return format!(
            "torn payload at offset {offset} ({} of {len} bytes)",
            tail.len() - RECORD_HEADER_LEN
        );
    }
    format!("record checksum mismatch at offset {offset}")
}

/// Replay the segment at `path`; `Ok(None)` when it does not exist.
pub fn replay(path: &Path, expected_generation: u64) -> Result<Option<Replay>, AnalysisError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(AnalysisError::index_corrupt(format!(
                "cannot read WAL segment {}: {e}",
                path.display()
            )))
        }
    };
    let replay = replay_bytes(&bytes, expected_generation)?;
    WAL_REPLAYED_RECORDS.add(replay.records.len() as u64);
    if let Some(reason) = &replay.truncated {
        eprintln!(
            "[index-store] WAL tail truncated in {}: {reason} ({} records recovered)",
            path.display(),
            replay.records.len()
        );
    }
    Ok(Some(replay))
}

struct FlushState {
    dirty: bool,
    stop: bool,
}

struct WalShared {
    file: Mutex<File>,
    flush: Mutex<FlushState>,
    flush_wake: Condvar,
    records: AtomicU64,
    bytes: AtomicU64,
}

impl WalShared {
    /// Fsync the segment (best-effort in background contexts — callers
    /// that must surface the error use the returned result).
    fn sync(&self) -> std::io::Result<()> {
        if let Some(message) = faultinject::fire("wal/fsync") {
            return Err(std::io::Error::other(format!("injected: {message}")));
        }
        let file = self.file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        file.sync_data()?;
        WAL_FSYNCS.incr();
        Ok(())
    }
}

/// Append handle on one WAL segment. Created fresh (truncating) at cold
/// boot and on compaction rotation, or resumed over a replayed tail at
/// warm boot. Dropping the writer stops the flusher thread and, except
/// under [`FsyncPolicy::Never`], fsyncs the final bytes.
pub struct WalWriter {
    shared: Arc<WalShared>,
    flusher: Option<std::thread::JoinHandle<()>>,
    policy: FsyncPolicy,
    generation: u64,
    path: PathBuf,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("generation", &self.generation)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WalWriter {
    /// Start a fresh segment for `generation`, truncating any previous
    /// file at `path` (cold boot and compaction rotation — the records
    /// a truncated file held are either in the committed snapshot or in
    /// memory about to be committed).
    pub fn create(
        path: impl Into<PathBuf>,
        generation: u64,
        policy: FsyncPolicy,
    ) -> Result<WalWriter, AnalysisError> {
        let path = path.into();
        let io = |what: &str, e: std::io::Error| {
            AnalysisError::index_corrupt(format!("{what} {}: {e}", path.display()))
        };
        let mut file = File::create(&path).map_err(|e| io("cannot create WAL segment", e))?;
        file.write_all(&encode_header(generation))
            .map_err(|e| io("cannot write WAL header", e))?;
        if policy != FsyncPolicy::Never {
            file.sync_data().map_err(|e| io("cannot sync WAL header", e))?;
            crate::store::sync_parent_dir(&path)?;
        }
        Ok(Self::assemble(path, file, generation, policy, 0, 0))
    }

    /// Resume the segment a [`Replay`] validated: truncate the torn tail
    /// (if any) at `replay.valid_bytes` and append after it.
    pub fn resume(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        replay: &Replay,
    ) -> Result<WalWriter, AnalysisError> {
        let path = path.into();
        if (replay.valid_bytes as usize) < WAL_HEADER_LEN {
            // The header itself was torn — nothing valid to keep.
            return Self::create(path, replay.generation, policy);
        }
        let io = |what: &str, e: std::io::Error| {
            AnalysisError::index_corrupt(format!("{what} {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io("cannot open WAL segment", e))?;
        file.set_len(replay.valid_bytes).map_err(|e| io("cannot truncate WAL tail", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io("cannot seek WAL segment", e))?;
        Ok(Self::assemble(
            path,
            file,
            replay.generation,
            policy,
            replay.records.len() as u64,
            replay.valid_bytes - WAL_HEADER_LEN as u64,
        ))
    }

    fn assemble(
        path: PathBuf,
        file: File,
        generation: u64,
        policy: FsyncPolicy,
        records: u64,
        bytes: u64,
    ) -> WalWriter {
        let shared = Arc::new(WalShared {
            file: Mutex::new(file),
            flush: Mutex::new(FlushState { dirty: false, stop: false }),
            flush_wake: Condvar::new(),
            records: AtomicU64::new(records),
            bytes: AtomicU64::new(bytes),
        });
        let flusher = match policy {
            FsyncPolicy::Batch(ms) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("wal-flusher".into())
                        .spawn(move || flusher_loop(&shared, ms))
                        .expect("spawn wal flusher"),
                )
            }
            _ => None,
        };
        WalWriter { shared, flusher, policy, generation, path }
    }

    /// Generation of the segment this writer appends to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Live counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.shared.records.load(Ordering::Relaxed),
            bytes: self.shared.bytes.load(Ordering::Relaxed),
        }
    }

    /// Append one record. Under `always` the record is on the platter
    /// when this returns; under `batch` the flusher is poked; under
    /// `never` the bytes are the kernel's problem. A failed append is a
    /// typed error and writes nothing the caller may rely on — the
    /// insert must be rejected, not applied.
    pub fn append(&mut self, doc: DocId, fingerprint: &Fingerprint) -> Result<(), AnalysisError> {
        let start = std::time::Instant::now();
        if let Some(message) = faultinject::fire("wal/append") {
            return Err(AnalysisError::internal(format!("injected: {message}")));
        }
        let record = encode_record(doc, fingerprint);
        {
            let mut file =
                self.shared.file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            file.write_all(&record).map_err(|e| {
                AnalysisError::index_corrupt(format!(
                    "cannot append to WAL segment {}: {e}",
                    self.path.display()
                ))
            })?;
        }
        self.shared.records.fetch_add(1, Ordering::Relaxed);
        self.shared.bytes.fetch_add(record.len() as u64, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => self.shared.sync().map_err(|e| {
                AnalysisError::index_corrupt(format!(
                    "cannot sync WAL segment {}: {e}",
                    self.path.display()
                ))
            })?,
            FsyncPolicy::Batch(_) => {
                let mut flush =
                    self.shared.flush.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                flush.dirty = true;
                self.shared.flush_wake.notify_one();
            }
            FsyncPolicy::Never => {}
        }
        WAL_APPENDS.incr();
        telemetry::duration_observe_us("wal.append_us", start.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Force an fsync now, regardless of policy (used when consolidating
    /// replayed segments at boot, before deleting their source files).
    pub fn sync(&self) -> Result<(), AnalysisError> {
        self.shared.sync().map_err(|e| {
            AnalysisError::index_corrupt(format!(
                "cannot sync WAL segment {}: {e}",
                self.path.display()
            ))
        })
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        {
            let mut flush =
                self.shared.flush.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            flush.stop = true;
            self.shared.flush_wake.notify_one();
        }
        // Joining the flusher drains any pending group commit; under
        // `always` every append already synced, and `never` means never,
        // even on graceful shutdown.
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

/// Group-commit loop: wake on the first dirty append (or every window),
/// fsync once for however many appends accumulated, repeat. One fsync
/// per window bounds the power-loss exposure without paying one fsync
/// per request.
fn flusher_loop(shared: &WalShared, window_ms: u64) {
    let window = std::time::Duration::from_millis(window_ms.max(1));
    let mut flush = shared.flush.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    loop {
        if flush.dirty {
            flush.dirty = false;
            drop(flush);
            if let Err(e) = shared.sync() {
                // Background fsync failure: the records are still in the
                // page cache (kill -9 safe); surface loudly for power-
                // loss durability and keep serving.
                eprintln!("[index-store] WAL group commit fsync failed: {e}");
            }
            // Pace group commits: at most one fsync per window.
            std::thread::sleep(window);
            flush = shared.flush.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        }
        if flush.stop {
            return;
        }
        flush = shared
            .flush_wake
            .wait(flush)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sodd_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-1.log")
    }

    fn fp(text: &str) -> Fingerprint {
        Fingerprint(text.to_string())
    }

    fn sample_segment(tag: &str, records: &[(u64, &str)]) -> (PathBuf, Vec<u8>) {
        let path = temp_path(tag);
        let mut writer = WalWriter::create(&path, 1, FsyncPolicy::Never).unwrap();
        for (doc, text) in records {
            writer.append(*doc, &fp(text)).unwrap();
        }
        drop(writer);
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    const RECORDS: &[(u64, &str)] =
        &[(0, "alpha fingerprint"), (7, "beta"), (u64::MAX, "gamma delta epsilon")];

    #[test]
    fn append_then_replay_roundtrips() {
        let (path, _) = sample_segment("roundtrip", RECORDS);
        let replay = replay(&path, 1).unwrap().expect("segment exists");
        assert_eq!(replay.generation, 1);
        assert!(replay.truncated.is_none());
        let got: Vec<(u64, String)> =
            replay.records.iter().map(|(d, f)| (*d, f.as_str().to_string())).collect();
        let want: Vec<(u64, String)> =
            RECORDS.iter().map(|(d, t)| (*d, t.to_string())).collect();
        assert_eq!(got, want);
        assert_eq!(replay.valid_bytes, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn missing_segment_is_none() {
        let path = temp_path("missing");
        assert!(replay(&path, 1).unwrap().is_none());
    }

    #[test]
    fn resume_continues_after_replay() {
        let (path, _) = sample_segment("resume", RECORDS);
        let first = replay(&path, 1).unwrap().unwrap();
        let mut writer = WalWriter::resume(&path, FsyncPolicy::Never, &first).unwrap();
        assert_eq!(writer.stats().records, RECORDS.len() as u64);
        writer.append(9, &fp("resumed")).unwrap();
        drop(writer);
        let second = replay(&path, 1).unwrap().unwrap();
        assert_eq!(second.records.len(), RECORDS.len() + 1);
        assert_eq!(second.records.last().unwrap().0, 9);
    }

    #[test]
    fn generation_mismatch_is_typed() {
        let (path, _) = sample_segment("genmismatch", RECORDS);
        assert_eq!(replay(&path, 2).unwrap_err().code(), "index_corrupt");
    }

    #[test]
    fn wrong_version_is_typed() {
        let (path, mut bytes) = sample_segment("version", RECORDS);
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(replay(&path, 1).unwrap_err().code(), "index_version");
    }

    #[test]
    fn foreign_bytes_are_typed_corruption() {
        let path = temp_path("foreign");
        std::fs::write(&path, [0x55u8; 64]).unwrap();
        assert_eq!(replay(&path, 1).unwrap_err().code(), "index_corrupt");
    }

    /// The crash shape the WAL exists for: a segment cut at *every*
    /// possible byte offset must replay to the longest valid record
    /// prefix — never a panic, never a wrong record.
    #[test]
    fn torn_tail_at_every_offset_recovers_a_prefix() {
        let (_, bytes) = sample_segment("torn", RECORDS);
        let full = replay_bytes(&bytes, 1).unwrap();
        let boundaries: Vec<u64> = record_boundaries(&full);
        for cut in 0..bytes.len() {
            let replay = replay_bytes(&bytes[..cut], 1)
                .unwrap_or_else(|e| panic!("cut={cut} must not be fatal: {e}"));
            if cut < WAL_HEADER_LEN {
                // A torn header recovers an empty segment.
                assert_eq!(replay.valid_bytes, 0, "cut={cut}");
                assert!(replay.records.is_empty() && replay.truncated.is_some(), "cut={cut}");
                continue;
            }
            // The recovered prefix ends exactly at a record boundary at
            // or before the cut.
            assert!(boundaries.contains(&replay.valid_bytes), "cut={cut}");
            assert!(replay.valid_bytes <= cut as u64, "cut={cut}");
            let whole: Vec<_> = full.records.iter().take(replay.records.len()).collect();
            let got: Vec<_> = replay.records.iter().collect();
            assert_eq!(got, whole, "cut={cut} must recover a record prefix");
            // A cut exactly on a record boundary leaves a complete (just
            // shorter) segment; everywhere else the tail is flagged.
            assert_eq!(
                replay.truncated.is_some(),
                !boundaries.contains(&(cut as u64)),
                "cut={cut}"
            );
        }
    }

    /// Every single-bit corruption must be caught: header flips are
    /// typed errors, record-region flips truncate the replay strictly
    /// before the full record count. Nothing panics, nothing decodes to
    /// a wrong record.
    #[test]
    fn every_single_bit_flip_is_detected() {
        let (_, bytes) = sample_segment("bitflip", RECORDS);
        let full = replay_bytes(&bytes, 1).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match replay_bytes(&corrupt, 1) {
                    Err(_) => assert!(
                        byte < WAL_HEADER_LEN,
                        "fatal error outside the header at byte {byte}"
                    ),
                    Ok(replay) => {
                        assert!(
                            replay.records.len() < full.records.len(),
                            "flip at byte {byte} bit {bit} went undetected"
                        );
                        let whole: Vec<_> =
                            full.records.iter().take(replay.records.len()).collect();
                        let got: Vec<_> = replay.records.iter().collect();
                        assert_eq!(got, whole, "flip at byte {byte} bit {bit}");
                    }
                }
            }
        }
    }

    #[test]
    fn random_garbage_tail_never_panics() {
        let (_, mut bytes) = sample_segment("garbage", &RECORDS[..1]);
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..256 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bytes.push((state >> 56) as u8);
        }
        let replay = replay_bytes(&bytes, 1).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated.is_some());
    }

    #[test]
    fn fsync_policy_parse_roundtrips() {
        for text in ["always", "never", "batch:1", "batch:250"] {
            assert_eq!(FsyncPolicy::parse(text).unwrap().name(), text);
        }
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("batch:fast").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Batch(5));
    }

    #[test]
    fn batch_policy_appends_reach_disk() {
        let path = temp_path("batch");
        let mut writer = WalWriter::create(&path, 1, FsyncPolicy::Batch(1)).unwrap();
        for (doc, text) in RECORDS {
            writer.append(*doc, &fp(text)).unwrap();
        }
        drop(writer); // joins the flusher
        let replay = replay(&path, 1).unwrap().unwrap();
        assert_eq!(replay.records.len(), RECORDS.len());
    }

    #[test]
    fn injected_append_fault_is_typed_and_writes_nothing() {
        let path = temp_path("fault");
        let mut writer = WalWriter::create(&path, 1, FsyncPolicy::Never).unwrap();
        faultinject::install(Some(
            faultinject::FaultPlan::parse("wal/append:err:1.0", 1).unwrap(),
        ));
        let result = writer.append(1, &fp("doomed"));
        faultinject::install(None);
        let err = result.unwrap_err();
        assert_eq!(err.code(), "internal");
        assert_eq!(writer.stats().records, 0);
        // The segment replays to nothing — the rejected insert left no
        // trace to resurrect.
        drop(writer);
        assert!(replay(&path, 1).unwrap().unwrap().records.is_empty());
    }

    fn record_boundaries(full: &Replay) -> Vec<u64> {
        let mut at = WAL_HEADER_LEN as u64;
        let mut boundaries = vec![at];
        for (doc, fp) in &full.records {
            at += (RECORD_HEADER_LEN + 8 + fp.as_str().len()) as u64;
            let _ = doc;
            boundaries.push(at);
        }
        boundaries
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary (doc, fingerprint) batches encode and replay back
        /// byte-exactly, in order.
        #[test]
        fn record_batches_roundtrip(
            docs in proptest::collection::vec(0u64..u64::MAX, 1..12),
            texts in proptest::collection::vec("[a-zA-Z0-9 :;={}()]{0,48}", 1..12),
        ) {
            let mut bytes = encode_header(3).to_vec();
            let pairs: Vec<(u64, String)> = docs
                .iter()
                .zip(texts.iter())
                .map(|(d, t)| (*d, t.clone()))
                .collect();
            for (doc, text) in &pairs {
                bytes.extend_from_slice(&encode_record(*doc, &fp(text)));
            }
            let replay = replay_bytes(&bytes, 3).unwrap();
            prop_assert!(replay.truncated.is_none());
            prop_assert_eq!(replay.valid_bytes, bytes.len() as u64);
            let got: Vec<(u64, String)> = replay
                .records
                .iter()
                .map(|(d, f)| (*d, f.as_str().to_string()))
                .collect();
            prop_assert_eq!(got, pairs);
        }
    }
}
