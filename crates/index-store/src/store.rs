//! Generation-managed snapshot directory.
//!
//! ```text
//! <dir>/gen-7.idx   immutable snapshot files, one per generation
//! <dir>/gen-8.idx
//! <dir>/CURRENT     "8\n" — the committed generation
//! ```
//!
//! Writes follow the `bench::checkpoint` discipline: snapshot bytes land
//! in `<file>.tmp` and are `rename`d into place, then `CURRENT` is
//! rewritten the same way. `rename` is atomic on POSIX, so a crash at any
//! instant leaves either the old committed generation or the new one —
//! never a torn pointer. The previous generation's file is kept until the
//! *next* compaction commits, so a kill during compaction always leaves a
//! loadable snapshot behind (`ci.sh` proves this with a real `kill -9`).
//!
//! Rename atomicity alone only covers process death. For power loss the
//! writes are fsync-disciplined: the tmp file is `sync_all`ed before its
//! rename, and the parent directory is fsynced after each rename, so
//! `CURRENT` can never point at bytes (or a directory entry) the disk
//! has not seen. The live-insert side of the same discipline is the
//! write-ahead log in [`crate::wal`]; its `wal-<N>.log` segments live in
//! this directory and are managed through [`SnapshotStore::wal_path`].

use crate::format;
use crate::mmap::Mapped;
use ccd::{CcdParams, CloneDetector, Fingerprint};
use ngram_index::DocId;
use solidity::AnalysisError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Name of the committed-generation pointer file.
pub const CURRENT: &str = "CURRENT";

/// A decoded snapshot with its provenance.
#[derive(Debug)]
pub struct Snapshot {
    /// The generation this snapshot was committed as.
    pub generation: u64,
    /// N-gram size its postings were built with.
    pub n: usize,
    decoded: format::Decoded,
}

impl Snapshot {
    /// The corpus, in canonical order (borrowed — the strings move into
    /// the detector on [`Snapshot::into_detector`], never copied).
    pub fn fingerprints(&self) -> &[(DocId, Fingerprint)] {
        &self.decoded.fingerprints
    }

    /// Assemble a [`CloneDetector`] from the snapshot.
    ///
    /// When `params.ngram_size` matches the snapshot's `n` the prebuilt
    /// postings are imported verbatim (the warm-start fast path); under a
    /// different N the index is rebuilt from the fingerprints — correct,
    /// just not free.
    pub fn into_detector(self, params: CcdParams) -> Result<CloneDetector, AnalysisError> {
        static REBUILDS: telemetry::Counter =
            telemetry::Counter::new("index_store.n_mismatch_rebuilds");
        if params.ngram_size == self.n {
            let (index, corpus) = self.decoded.into_index_and_corpus();
            return CloneDetector::from_parts(params, Arc::new(corpus), index);
        }
        REBUILDS.incr();
        Ok(CloneDetector::from_shared(params, Arc::new(self.decoded.fingerprints)))
    }
}

/// A snapshot directory: load the committed generation, commit new ones.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating if needed) a snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, AnalysisError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            AnalysisError::index_corrupt(format!(
                "cannot create snapshot dir {}: {e}",
                dir.display()
            ))
        })?;
        Ok(SnapshotStore { dir })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a generation's snapshot file.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation}.idx"))
    }

    /// Path of a generation's write-ahead log segment.
    pub fn wal_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("wal-{generation}.log"))
    }

    /// Generations that have a WAL segment on disk, ascending. Files that
    /// merely look like segments (`wal-x.log`) are ignored — replay
    /// validates the real ones by header.
    pub fn wal_generations(&self) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut generations: Vec<u64> = entries
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                let name = name.to_str()?;
                name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
            })
            .collect();
        generations.sort_unstable();
        generations
    }

    /// Delete WAL segments of generations before `current` — their
    /// records are in the committed snapshot. Best-effort: a segment that
    /// cannot be removed is re-attempted at the next compaction and is
    /// skipped (not replayed) at boot either way.
    pub fn remove_stale_wals(&self, current: u64) {
        for generation in self.wal_generations() {
            if generation < current {
                let _ = std::fs::remove_file(self.wal_path(generation));
            }
        }
    }

    /// The committed generation, or `None` when the directory has none
    /// (fresh deploy). A malformed `CURRENT` is typed corruption.
    pub fn current_generation(&self) -> Result<Option<u64>, AnalysisError> {
        let path = self.dir.join(CURRENT);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(AnalysisError::index_corrupt(format!("cannot read CURRENT: {e}")))
            }
        };
        text.trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| AnalysisError::index_corrupt(format!("CURRENT is not a generation: {text:?}")))
    }

    /// Load a specific generation's snapshot.
    pub fn load_generation(&self, generation: u64) -> Result<Snapshot, AnalysisError> {
        static LOADS: telemetry::Counter = telemetry::Counter::new("index_store.loads");
        static LOAD_BYTES: telemetry::Counter = telemetry::Counter::new("index_store.load_bytes");
        let _span = telemetry::span("index-store/load");
        let path = self.generation_path(generation);
        let mapped = Mapped::open(&path).map_err(|e| {
            AnalysisError::index_corrupt(format!("cannot map {}: {e}", path.display()))
        })?;
        LOAD_BYTES.add(mapped.len() as u64);
        let decoded = format::decode(&mapped)?;
        if decoded.generation != generation {
            return Err(AnalysisError::index_corrupt(format!(
                "{} claims generation {}, expected {generation}",
                path.display(),
                decoded.generation
            )));
        }
        LOADS.incr();
        Ok(Snapshot { generation, n: decoded.n, decoded })
    }

    /// Load the committed generation; `Ok(None)` on a fresh directory.
    pub fn load_current(&self) -> Result<Option<Snapshot>, AnalysisError> {
        match self.current_generation()? {
            Some(generation) => self.load_generation(generation).map(Some),
            None => Ok(None),
        }
    }

    /// Commit `detector`'s corpus and index as `generation`: write the
    /// snapshot file, then flip `CURRENT`. Returns the snapshot path.
    ///
    /// Crash windows (`index/commit` is a faultinject point between the
    /// two steps, used by the CI kill test):
    /// * during the snapshot write — only a `.tmp` file is lost;
    /// * after the snapshot rename, before `CURRENT` — an unreferenced
    ///   `gen-N.idx` remains; `CURRENT` still names the old generation;
    /// * during the `CURRENT` rewrite — rename atomicity keeps the old
    ///   pointer until the new one is fully in place.
    pub fn commit(
        &self,
        detector: &CloneDetector,
        generation: u64,
    ) -> Result<PathBuf, AnalysisError> {
        static COMMITS: telemetry::Counter = telemetry::Counter::new("index_store.commits");
        static COMMIT_BYTES: telemetry::Counter =
            telemetry::Counter::new("index_store.commit_bytes");
        let _span = telemetry::span("index-store/commit");
        let bytes = format::encode(generation, &detector.shared_fingerprints(), detector.index())?;
        let path = self.generation_path(generation);
        write_atomic(&path, &bytes)?;
        // Chaos hook: a delay here holds the commit in its most adversarial
        // window (snapshot on disk, CURRENT not yet flipped); an injected
        // error models a full disk after the data write.
        if let Some(message) = faultinject::fire("index/commit") {
            return Err(AnalysisError::internal(format!("injected: {message}")));
        }
        write_atomic(&self.dir.join(CURRENT), format!("{generation}\n").as_bytes())?;
        COMMITS.incr();
        COMMIT_BYTES.add(bytes.len() as u64);
        Ok(path)
    }
}

/// `bench::checkpoint`'s atomic write discipline, hardened for power
/// loss: same-directory tmp file, `sync_all` *before* the rename (the
/// name must never point at unsynced bytes), rename, then fsync the
/// parent directory so the new directory entry itself is durable.
/// Readers observe either the old bytes or the new, never a prefix —
/// even across a power cut.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), AnalysisError> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    let io = |what: &str, e: std::io::Error| {
        AnalysisError::index_corrupt(format!("{what} {}: {e}", path.display()))
    };
    let mut file = std::fs::File::create(&tmp).map_err(|e| io("cannot create", e))?;
    file.write_all(bytes).map_err(|e| io("cannot write", e))?;
    file.sync_all().map_err(|e| io("cannot sync", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io("cannot commit", e))?;
    sync_parent_dir(path)
}

/// Fsync `path`'s parent directory: a rename is only durable once the
/// directory holding the new entry is. No-op on platforms where
/// directories cannot be opened for sync.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), AnalysisError> {
    #[cfg(unix)]
    {
        let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) else {
            return Ok(());
        };
        std::fs::File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| {
                AnalysisError::index_corrupt(format!("cannot sync dir {}: {e}", dir.display()))
            })?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sodd_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_detector() -> CloneDetector {
        let mut d = CloneDetector::new(CcdParams::best());
        assert!(d.insert_source(
            0,
            "contract A { function w(uint v) public { msg.sender.transfer(v); } }"
        ));
        d
    }

    #[test]
    fn fresh_directory_has_no_current() {
        let store = SnapshotStore::open(temp_dir("fresh")).unwrap();
        assert_eq!(store.current_generation().unwrap(), None);
        assert!(store.load_current().unwrap().is_none());
    }

    #[test]
    fn commit_then_load_roundtrips() {
        let store = SnapshotStore::open(temp_dir("roundtrip")).unwrap();
        let d = sample_detector();
        store.commit(&d, 1).unwrap();
        assert_eq!(store.current_generation().unwrap(), Some(1));
        let snapshot = store.load_current().unwrap().expect("committed generation");
        assert_eq!(snapshot.generation, 1);
        let rebuilt = snapshot.into_detector(d.params()).unwrap();
        assert_eq!(rebuilt.shared_fingerprints(), d.shared_fingerprints());
    }

    #[test]
    fn previous_generation_survives_an_uncommitted_next_one() {
        let store = SnapshotStore::open(temp_dir("survive")).unwrap();
        let d = sample_detector();
        store.commit(&d, 1).unwrap();
        // Simulate a crash after the gen-2 data write but before the
        // CURRENT flip: a stray data file and a torn tmp file.
        std::fs::write(store.generation_path(2), b"torn partial write").unwrap();
        std::fs::write(store.dir().join("gen-3.idx.tmp"), b"torn tmp").unwrap();
        let snapshot = store.load_current().unwrap().expect("gen 1 still committed");
        assert_eq!(snapshot.generation, 1);
    }

    #[test]
    fn malformed_current_is_typed() {
        let store = SnapshotStore::open(temp_dir("badcurrent")).unwrap();
        std::fs::write(store.dir().join(CURRENT), "not a number").unwrap();
        assert_eq!(store.current_generation().unwrap_err().code(), "index_corrupt");
    }

    #[test]
    fn current_pointing_at_missing_file_is_typed() {
        let store = SnapshotStore::open(temp_dir("dangling")).unwrap();
        std::fs::write(store.dir().join(CURRENT), "42\n").unwrap();
        assert_eq!(store.load_current().unwrap_err().code(), "index_corrupt");
    }

    #[test]
    fn generation_mismatch_inside_file_is_typed() {
        let store = SnapshotStore::open(temp_dir("genmismatch")).unwrap();
        let d = sample_detector();
        store.commit(&d, 1).unwrap();
        // Copy gen-1's bytes to gen-5 and point CURRENT at it.
        std::fs::copy(store.generation_path(1), store.generation_path(5)).unwrap();
        std::fs::write(store.dir().join(CURRENT), "5\n").unwrap();
        assert_eq!(store.load_current().unwrap_err().code(), "index_corrupt");
    }

    #[test]
    fn wal_generations_are_discovered_and_retired() {
        let store = SnapshotStore::open(temp_dir("walgens")).unwrap();
        for generation in [3u64, 1, 2] {
            std::fs::write(store.wal_path(generation), b"ignored here").unwrap();
        }
        std::fs::write(store.dir().join("wal-x.log"), b"not a generation").unwrap();
        std::fs::write(store.dir().join("wal-7.txt"), b"wrong suffix").unwrap();
        assert_eq!(store.wal_generations(), vec![1, 2, 3]);
        store.remove_stale_wals(3);
        assert_eq!(store.wal_generations(), vec![3]);
    }

    #[test]
    fn n_mismatch_rebuilds_instead_of_failing() {
        let store = SnapshotStore::open(temp_dir("nmismatch")).unwrap();
        let d = sample_detector();
        store.commit(&d, 1).unwrap();
        let other = CcdParams { ngram_size: 5, ..CcdParams::best() };
        let rebuilt = store.load_current().unwrap().unwrap().into_detector(other).unwrap();
        assert_eq!(rebuilt.params().ngram_size, 5);
        assert_eq!(rebuilt.len(), 1);
    }
}
