//! Confusion-matrix accounting: TP/FP/FN counters with precision, recall
//! and F1, as reported in Tables 1–3 of the paper.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// A TP/FP/FN counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// A fresh counter.
    pub fn new() -> Confusion {
        Confusion::default()
    }

    /// Build from counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Confusion {
        Confusion { tp, fp, fn_ }
    }

    /// Precision = TP / (TP + FP); 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl AddAssign for Confusion {
    fn add_assign(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics() {
        let c = Confusion::from_counts(158, 13, 46);
        // The paper's CCC totals: precision 92.3%, recall 77.4%.
        assert!((c.precision() - 0.9239766).abs() < 1e-6);
        assert!((c.recall() - 0.7745098).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Confusion::new();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let all_missed = Confusion::from_counts(0, 0, 10);
        assert_eq!(all_missed.recall(), 0.0);
        assert_eq!(all_missed.f1(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut total = Confusion::new();
        total += Confusion::from_counts(1, 2, 3);
        total += Confusion::from_counts(4, 5, 6);
        assert_eq!(total, Confusion::from_counts(5, 7, 9));
    }
}
