//! Statistics used by the study: Spearman's rank correlation with
//! p-values (§6.2, Table 5) and precision/recall/F1 accounting
//! (§4.6, §5.7).
//!
//! The paper measures the monotonic relationship between a snippet's view
//! count ν and the number of deployed contracts containing it (nr) with
//! Spearman's ρ, explicitly avoiding Pearson because the data is not
//! normally distributed. p-values use the t-distribution approximation
//! customary for n > 20 (all of the paper's samples are in the thousands).


#![warn(missing_docs)]

pub mod confusion;
pub mod spearman;

pub use confusion::Confusion;
pub use spearman::{spearman, spearman_permutation_p, SpearmanResult};
