//! Spearman's rank correlation coefficient ρ with a t-approximation
//! p-value.

use serde::{Deserialize, Serialize};

/// Result of a Spearman correlation test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpearmanResult {
    /// The rank correlation coefficient, in [-1, 1].
    pub rho: f64,
    /// Two-sided p-value under the t-distribution approximation.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Mid-ranks of a sample (ties share the average of their positions, the
/// standard treatment for Spearman with tied data such as view counts).
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut result = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the mid-rank.
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &index in &order[i..=j] {
            result[index] = mid;
        }
        i = j + 1;
    }
    result
}

/// Pearson correlation of two equally long samples.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman's ρ: Pearson correlation of the mid-ranks, with the two-sided
/// p-value from `t = ρ·sqrt((n−2)/(1−ρ²))` against Student's t with n−2
/// degrees of freedom.
///
/// Returns `None` for samples shorter than 3 or of unequal length.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<SpearmanResult> {
    static CALLS: telemetry::Counter = telemetry::Counter::new("stats.spearman.calls");
    CALLS.incr();
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let rho = pearson(&ranks(x), &ranks(y));
    let n = x.len();
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let df = (n - 2) as f64;
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        2.0 * student_t_sf(t.abs(), df)
    };
    Some(SpearmanResult { rho, p_value, n })
}

/// Survival function of Student's t-distribution, via the regularized
/// incomplete beta function: `P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2`.
fn student_t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    0.5 * incomplete_beta(df / 2.0, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes' `betacf`).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of ln Γ(x).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
        2.5066282746310005,
    ];
    let mut ser = 1.000000000190015;
    let mut y = x;
    for (i, g) in G.iter().take(6).enumerate() {
        y += 1.0;
        ser += g / y;
        let _ = i;
    }
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    -tmp + (G[6] * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn perfect_monotonic_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]; // nonlinear but monotone
        let r = spearman(&x, &y).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn perfect_inverse_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        let r = spearman(&x, &y).unwrap();
        assert!((r.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_has_small_rho_and_large_p() {
        // Deterministic pseudo-random but uncorrelated sequences.
        let x: Vec<f64> = (0..200).map(|i| ((i * 73 + 11) % 199) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 151 + 7) % 211) as f64).collect();
        let r = spearman(&x, &y).unwrap();
        assert!(r.rho.abs() < 0.2, "rho = {}", r.rho);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn known_value_against_scipy() {
        // scipy.stats.spearmanr([1,2,3,4,5], [5,6,7,8,7]) = (0.8207826816681233, 0.08858700531354381)
        let r = spearman(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5.0, 6.0, 7.0, 8.0, 7.0]).unwrap();
        assert!((r.rho - 0.8207826816681233).abs() < 1e-9, "rho = {}", r.rho);
        assert!((r.p_value - 0.08858700531354381).abs() < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(spearman(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_series_yields_zero() {
        let r = spearman(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(r.rho, 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24 → ln = 3.178...
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }
}

/// Permutation-test p-value for Spearman's ρ: the fraction of `rounds`
/// random reshuffles of `y` whose |ρ| meets or exceeds the observed |ρ|.
/// Used as a distribution-free cross-check of the t-approximation.
pub fn spearman_permutation_p(
    x: &[f64],
    y: &[f64],
    rounds: usize,
    seed: u64,
) -> Option<f64> {
    let observed = spearman(x, y)?.rho.abs();
    // Deterministic xorshift permutation source (no rand dependency here).
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut shuffled = y.to_vec();
    let mut hits = 0usize;
    for _ in 0..rounds {
        // Fisher-Yates with the xorshift stream.
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        if let Some(result) = spearman(x, &shuffled) {
            if result.rho.abs() >= observed - 1e-12 {
                hits += 1;
            }
        }
    }
    Some((hits as f64 + 1.0) / (rounds as f64 + 1.0))
}

#[cfg(test)]
mod permutation_tests {
    use super::*;

    #[test]
    fn permutation_p_agrees_with_t_approximation() {
        // A clearly correlated sample: both p-values must be small.
        let x: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + ((v * 7.0) % 13.0)).collect();
        let t_p = spearman(&x, &y).unwrap().p_value;
        let perm_p = spearman_permutation_p(&x, &y, 400, 42).unwrap();
        assert!(t_p < 0.01, "t-approx p = {t_p}");
        assert!(perm_p < 0.02, "permutation p = {perm_p}");
    }

    #[test]
    fn permutation_p_is_large_for_noise() {
        let x: Vec<f64> = (0..80).map(|i| ((i * 73 + 11) % 199) as f64).collect();
        let y: Vec<f64> = (0..80).map(|i| ((i * 151 + 7) % 211) as f64).collect();
        let perm_p = spearman_permutation_p(&x, &y, 300, 7).unwrap();
        assert!(perm_p > 0.05, "permutation p = {perm_p}");
    }

    #[test]
    fn permutation_is_deterministic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let a = spearman_permutation_p(&x, &y, 200, 9).unwrap();
        let b = spearman_permutation_p(&x, &y, 200, 9).unwrap();
        assert_eq!(a, b);
    }
}
