//! Synthetic corpora (under construction).

#![warn(missing_docs)]

pub mod contracts;
pub mod smartbugs;
pub mod honeypots;
pub mod keywords;
pub mod mutate;
pub mod qa;
pub mod templates;
