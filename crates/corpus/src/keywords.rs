//! Language keyword filtering (§6.1 of the paper).
//!
//! Q&A posts tagged "solidity" also contain JavaScript (web3 client code)
//! and pseudo-code. The paper filters non-Solidity snippets by keeping only
//! snippets containing at least one keyword that is *unique* to Solidity —
//! of Solidity's keyword set, the ones not shared with JavaScript
//! (`var`, `public`, `new`, ... are shared; `contract`, `mapping`,
//! `payable`, `uint256`, ... are unique).

use std::collections::HashSet;
use std::sync::OnceLock;

/// JavaScript keywords, reserved words and ubiquitous globals, as a
/// crawler-side filter would use them.
pub fn javascript_keywords() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        [
            // Reserved words.
            "await", "break", "case", "catch", "class", "const", "continue", "debugger",
            "default", "delete", "do", "else", "enum", "export", "extends", "false",
            "finally", "for", "function", "if", "implements", "import", "in", "instanceof",
            "interface", "let", "new", "null", "package", "private", "protected", "public",
            "return", "static", "super", "switch", "this", "throw", "true", "try", "typeof",
            "var", "void", "while", "with", "yield",
            // Common globals and members seen in web3 snippets.
            "console", "log", "require", "module", "exports", "window", "document",
            "undefined", "NaN", "Infinity", "Promise", "async", "Array", "Object", "String",
            "Number", "Boolean", "Math", "JSON", "Date", "RegExp", "Error", "Map", "Set",
            "Symbol", "Proxy", "Reflect", "parseInt", "parseFloat", "isNaN", "eval",
            "arguments", "constructor", "prototype", "then", "resolve", "reject", "fetch",
            "setTimeout", "setInterval", "get", "set", "of", "as", "from", "target",
            "length", "push", "pop", "shift", "unshift", "slice", "splice", "concat",
            "join", "indexOf", "forEach", "map", "filter", "reduce", "keys", "values",
            "entries", "assign", "freeze", "test", "exec", "match", "replace", "split",
            "toString", "valueOf", "hasOwnProperty", "call", "apply", "bind", "web3",
            "ethers", "send", "error",
        ]
        .into_iter()
        .collect()
    })
}

/// The full Solidity keyword set: language keywords, reserved words,
/// global builtins, and the sized elementary types.
pub fn solidity_keywords() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        let mut set: HashSet<&'static str> = [
            "abstract", "address", "anonymous", "as", "assembly", "bool", "break", "byte",
            "bytes", "calldata", "catch", "constant", "constructor", "continue", "contract",
            "days", "delete", "do", "else", "emit", "enum", "error", "ether", "event",
            "external", "fallback", "false", "finney", "fixed", "for", "function", "gwei",
            "hours", "if", "immutable", "import", "indexed", "interface", "internal", "is",
            "library", "mapping", "memory", "minutes", "modifier", "new", "override",
            "payable", "pragma", "private", "public", "pure", "receive", "return",
            "returns", "seconds", "solidity", "storage", "string", "struct", "szabo",
            "throw", "true", "try", "type", "ufixed", "unchecked", "using", "var", "view",
            "virtual", "weeks", "wei", "while", "years", "uint", "int",
            // Globals specific to the EVM environment. Deliberately *not*
            // prose-prone member names like `balance` or `sender`: the
            // filter must not classify English text or web3 JavaScript as
            // Solidity.
            // (`tx` is deliberately absent: it is a ubiquitous JavaScript
            // variable name and would misclassify web3 client code.)
            "msg", "gasprice", "coinbase", "gaslimit", "blockhash", "revert",
            "selfdestruct", "suicide", "keccak256", "sha3", "ecrecover", "addmod",
            "mulmod", "gasleft", "delegatecall", "callcode", "staticcall",
        ]
        .into_iter()
        .collect();
        set.extend(SIZED_TYPES.iter().copied());
        set
    })
}

/// The sized elementary type names `uint8`..`uint256`, `int8`..`int256`,
/// `bytes1`..`bytes32` (96 keywords).
pub static SIZED_TYPES: &[&str] = &[
    "uint8", "uint16", "uint24", "uint32", "uint40", "uint48", "uint56", "uint64",
    "uint72", "uint80", "uint88", "uint96", "uint104", "uint112", "uint120", "uint128",
    "uint136", "uint144", "uint152", "uint160", "uint168", "uint176", "uint184", "uint192",
    "uint200", "uint208", "uint216", "uint224", "uint232", "uint240", "uint248", "uint256",
    "int8", "int16", "int24", "int32", "int40", "int48", "int56", "int64", "int72",
    "int80", "int88", "int96", "int104", "int112", "int120", "int128", "int136", "int144",
    "int152", "int160", "int168", "int176", "int184", "int192", "int200", "int208",
    "int216", "int224", "int232", "int240", "int248", "int256", "bytes1", "bytes2",
    "bytes3", "bytes4", "bytes5", "bytes6", "bytes7", "bytes8", "bytes9", "bytes10",
    "bytes11", "bytes12", "bytes13", "bytes14", "bytes15", "bytes16", "bytes17", "bytes18",
    "bytes19", "bytes20", "bytes21", "bytes22", "bytes23", "bytes24", "bytes25", "bytes26",
    "bytes27", "bytes28", "bytes29", "bytes30", "bytes31", "bytes32",
];

/// Keywords unique to Solidity: the Solidity set minus everything
/// JavaScript shares (§6.1 — the paper arrives at 166 unique keywords).
pub fn unique_solidity_keywords() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        solidity_keywords()
            .difference(javascript_keywords())
            .copied()
            .collect()
    })
}

/// Whether a snippet looks like Solidity: it contains at least one keyword
/// unique to Solidity as a standalone word.
pub fn looks_like_solidity(snippet: &str) -> bool {
    let unique = unique_solidity_keywords();
    words(snippet).any(|w| unique.contains(w))
}

fn words(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_set_sizes_are_plausible() {
        // The paper reports 124 JavaScript keywords, 251 Solidity keywords
        // and 166 unique ones; our curated sets land in the same regime.
        let js = javascript_keywords().len();
        let sol = solidity_keywords().len();
        let unique = unique_solidity_keywords().len();
        assert!((100..=160).contains(&js), "js = {js}");
        assert!((160..=280).contains(&sol), "sol = {sol}");
        assert!((130..=230).contains(&unique), "unique = {unique}");
        assert!(unique < sol);
    }

    #[test]
    fn shared_keywords_are_not_unique() {
        let unique = unique_solidity_keywords();
        for shared in ["var", "public", "new", "function", "this", "true"] {
            assert!(!unique.contains(shared), "{shared} should be shared with JS");
        }
        for only_sol in ["contract", "mapping", "payable", "uint256", "pragma", "wei"] {
            assert!(unique.contains(only_sol), "{only_sol} should be unique");
        }
    }

    #[test]
    fn solidity_snippets_pass_the_filter() {
        assert!(looks_like_solidity("contract C { uint x; }"));
        assert!(looks_like_solidity("pragma solidity ^0.8.0;"));
        assert!(looks_like_solidity("mapping(address => uint256) balances;"));
    }

    #[test]
    fn javascript_snippets_fail_the_filter() {
        assert!(!looks_like_solidity(
            "const balance = await web3.eth.getBalance(account); console.log(balance);"
        ));
        assert!(!looks_like_solidity("function add(a, b) { return a + b; }"));
    }

    #[test]
    fn prose_fails_the_filter() {
        assert!(!looks_like_solidity(
            "You should check the balance before sending the transaction."
        ));
    }

    #[test]
    fn substrings_do_not_count() {
        // `contractor` contains `contract` but is not the keyword.
        assert!(!looks_like_solidity("the contractor signed the papers"));
    }

    #[test]
    fn sized_types_cover_the_grid() {
        assert_eq!(SIZED_TYPES.len(), 96);
        assert!(SIZED_TYPES.contains(&"uint256"));
        assert!(SIZED_TYPES.contains(&"bytes32"));
    }
}
