//! Clone mutation engine: derive Type I/II/III clones from a source
//! fragment (§2.4 taxonomy).
//!
//! Used to embed Q&A snippets into synthetic deployed contracts the way
//! copy-pasting developers do: verbatim with layout changes (Type I), with
//! renamed identifiers (Type II), or with statements added around the
//! copied core (Type III).

use rand::rngs::StdRng;
use rand::Rng;
use solidity::token::Keyword;
use std::collections::HashMap;

/// Clone types of Roy and Cordy (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CloneType {
    /// Layout/comment changes only.
    TypeI,
    /// Renamed identifiers and changed literals, plus Type I changes.
    TypeII,
    /// Added/removed statements, plus Type II changes.
    TypeIII,
}

/// Names that must survive renaming: language keywords plus EVM globals
/// and members.
fn is_protected(word: &str) -> bool {
    Keyword::from_str(word).is_some()
        || solidity::token::is_elementary_type(word)
        || matches!(
            word,
            "msg" | "sender"
                | "value"
                | "data"
                | "sig"
                | "gas"
                | "tx"
                | "origin"
                | "block"
                | "timestamp"
                | "number"
                | "difficulty"
                | "coinbase"
                | "gaslimit"
                | "blockhash"
                | "now"
                | "this"
                | "super"
                | "abi"
                | "require"
                | "assert"
                | "revert"
                | "transfer"
                | "send"
                | "call"
                | "delegatecall"
                | "callcode"
                | "staticcall"
                | "selfdestruct"
                | "suicide"
                | "keccak256"
                | "sha3"
                | "sha256"
                | "ecrecover"
                | "addmod"
                | "mulmod"
                | "gasleft"
                | "length"
                | "push"
                | "pop"
                | "balance"
                | "_"
        )
}

/// Apply a Type I mutation: comments and whitespace churn; the token
/// stream is untouched.
pub fn type_i(source: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for line in source.lines() {
        // Random indentation change.
        let indent = " ".repeat(rng.gen_range(0..5));
        out.push_str(&indent);
        out.push_str(line.trim_start());
        // Occasional trailing comment.
        if rng.gen_bool(0.2) {
            out.push_str("  // copied");
        }
        out.push('\n');
        // Occasional blank or comment line.
        if rng.gen_bool(0.1) {
            out.push_str("// ---\n");
        }
    }
    out
}

/// Collect renameable identifiers of a fragment in order of appearance.
fn renameable_identifiers(source: &str) -> Vec<String> {
    let Ok(tokens) = solidity::lexer::lex(source) else {
        return Vec::new();
    };
    let mut seen: Vec<String> = Vec::new();
    for token in tokens {
        if let solidity::token::TokenKind::Ident(word) = token.kind {
            if !is_protected(&word) && !seen.iter().any(|s| word == *s) {
                seen.push(word.to_string());
            }
        }
    }
    seen
}

/// Replace identifiers consistently using a word-boundary-aware rewrite.
fn rename_all(source: &str, renames: &HashMap<String, String>) -> String {
    let mut out = String::new();
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if word.is_empty() {
            return;
        }
        match renames.get(word.as_str()) {
            Some(replacement) => out.push_str(replacement),
            None => out.push_str(word),
        }
        word.clear();
    };
    for c in source.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
            word.push(c);
        } else {
            flush(&mut word, &mut out);
            out.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}

/// Apply a Type II mutation: consistent identifier renaming and changed
/// literal values (the Roy–Cordy definition), plus the Type I churn.
pub fn type_ii(source: &str, rng: &mut StdRng) -> String {
    let identifiers = renameable_identifiers(source);
    let mut renames = HashMap::new();
    let suffixes = ["_", "2", "X", "New", "V2", "Impl"];
    for ident in identifiers {
        if rng.gen_bool(0.7) {
            let suffix = suffixes[rng.gen_range(0..suffixes.len())];
            renames.insert(ident.clone(), format!("{ident}{suffix}"));
        }
    }
    // Literal changes: adapting developers tune constants (fees, caps,
    // round numbers) without touching the logic.
    if let Ok(tokens) = solidity::lexer::lex(source) {
        for token in tokens {
            if let solidity::token::TokenKind::Number(n) = token.kind {
                if n.starts_with("0x") || n.contains('.') || n.contains('e') {
                    continue;
                }
                if let Ok(value) = n.parse::<u64>() {
                    if value > 1 && rng.gen_bool(0.5) {
                        let tweaked = value.saturating_add(rng.gen_range(1..=9));
                        renames.entry(n.to_string()).or_insert(tweaked.to_string());
                    }
                }
            }
        }
    }
    let renamed = rename_all(source, &renames);
    type_i(&renamed, rng)
}

/// Benign statements inserted by Type III mutations.
const FILLER_STATEMENTS: &[&str] = &[
    "uint ts = block.timestamp;",
    "emit Copied(msg.sender);",
    "counter += 1;",
    "lastCaller = msg.sender;",
    "require(true);",
];

/// Apply a Type III mutation: insert statements at block boundaries (and
/// the Type II changes).
pub fn type_iii(source: &str, rng: &mut StdRng) -> String {
    let renamed = type_ii(source, rng);
    let mut out = String::new();
    for line in renamed.lines() {
        out.push_str(line);
        out.push('\n');
        // Insert filler after opening braces of function bodies.
        if line.trim_end().ends_with('{') && line.contains("function") && rng.gen_bool(0.6) {
            let filler = FILLER_STATEMENTS[rng.gen_range(0..FILLER_STATEMENTS.len())];
            out.push_str("    ");
            out.push_str(filler);
            out.push('\n');
        }
    }
    out
}

/// Apply a mutation of the given clone type.
pub fn mutate(source: &str, clone_type: CloneType, rng: &mut StdRng) -> String {
    match clone_type {
        CloneType::TypeI => type_i(source, rng),
        CloneType::TypeII => type_ii(source, rng),
        CloneType::TypeIII => type_iii(source, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const SRC: &str = "contract Bank {\n\
        mapping(address => uint) balances;\n\
        function withdraw(uint amount) public {\n\
            require(balances[msg.sender] >= amount);\n\
            balances[msg.sender] -= amount;\n\
            msg.sender.transfer(amount);\n\
        }\n\
    }";

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn type_i_preserves_token_stream() {
        let mutated = type_i(SRC, &mut rng());
        let original_tokens: Vec<String> = solidity::lexer::lex(SRC)
            .unwrap()
            .into_iter()
            .map(|t| t.kind.text().into_owned())
            .collect();
        let mutated_tokens: Vec<String> = solidity::lexer::lex(&mutated)
            .unwrap()
            .into_iter()
            .map(|t| t.kind.text().into_owned())
            .collect();
        assert_eq!(original_tokens, mutated_tokens);
    }

    #[test]
    fn type_ii_renames_consistently_and_parses() {
        let mutated = type_ii(SRC, &mut rng());
        assert!(solidity::parse_snippet(&mutated).is_ok(), "{mutated}");
        // Builtins survive.
        assert!(mutated.contains("msg.sender"));
        assert!(mutated.contains("require"));
    }

    #[test]
    fn type_iii_adds_statements_and_parses() {
        let mutated = type_iii(SRC, &mut rng());
        assert!(solidity::parse_snippet(&mutated).is_ok(), "{mutated}");
        let orig_lines = SRC.lines().count();
        assert!(mutated.lines().count() >= orig_lines);
    }

    #[test]
    fn mutations_remain_ccd_clones() {
        use ccd::{CcdParams, CloneDetector};
        let mut rng = rng();
        let mut detector = CloneDetector::new(CcdParams::best());
        detector.insert_source(1, &type_i(SRC, &mut rng));
        detector.insert_source(2, &type_ii(SRC, &mut rng));
        detector.insert_source(3, &type_iii(SRC, &mut rng));
        let query = CloneDetector::fingerprint_source(SRC).unwrap();
        let matched: Vec<u64> = detector.matches(&query).iter().map(|m| m.doc).collect();
        assert!(matched.contains(&1), "Type I clone must match: {matched:?}");
        assert!(matched.contains(&2), "Type II clone must match: {matched:?}");
        assert!(matched.contains(&3), "Type III clone must match: {matched:?}");
    }

    #[test]
    fn protected_names_are_never_renamed() {
        for word in ["msg", "sender", "require", "transfer", "uint", "contract"] {
            assert!(is_protected(word), "{word}");
        }
        assert!(!is_protected("balances"));
        assert!(!is_protected("withdraw"));
    }

    #[test]
    fn mutation_is_deterministic() {
        let a = type_iii(SRC, &mut rng());
        let b = type_iii(SRC, &mut rng());
        assert_eq!(a, b);
    }
}
